"""Workload generators: the paper's random reads plus extension traces."""

from .random_reads import (
    PAPER_DEGRADED_TRIALS,
    PAPER_MAX_READ_ELEMENTS,
    PAPER_NORMAL_TRIALS,
    DegradedTrial,
    RandomDegradedWorkload,
    RandomReadWorkload,
)
from .trace import FileSizeWorkload, SequentialScanWorkload, ZipfReadWorkload

__all__ = [
    "RandomReadWorkload",
    "RandomDegradedWorkload",
    "DegradedTrial",
    "PAPER_NORMAL_TRIALS",
    "PAPER_DEGRADED_TRIALS",
    "PAPER_MAX_READ_ELEMENTS",
    "SequentialScanWorkload",
    "ZipfReadWorkload",
    "FileSizeWorkload",
]
