"""Extension workloads beyond the paper's uniform-random reads.

The paper motivates multi-element reads with real file sizes ("MP3 files
... a few megabytes to dozens of megabytes", §III-A); these generators let
the ablation benches probe that regime directly:

* :class:`SequentialScanWorkload` — a full sequential sweep in fixed-size
  requests (backup/ingest style);
* :class:`ZipfReadWorkload` — skewed start points (hot objects);
* :class:`FileSizeWorkload` — read sizes drawn from a log-normal "file
  size" distribution, whole files read at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..engine.requests import ReadRequest

__all__ = ["SequentialScanWorkload", "ZipfReadWorkload", "FileSizeWorkload"]


@dataclass(frozen=True)
class SequentialScanWorkload:
    """Scan the whole address space in contiguous ``request_size`` chunks."""

    address_space: int
    request_size: int

    def __post_init__(self) -> None:
        if self.request_size <= 0:
            raise ValueError(f"request size must be > 0, got {self.request_size}")
        if self.address_space < self.request_size:
            raise ValueError("address space smaller than one request")

    def requests(self) -> Iterator[ReadRequest]:
        """Yield back-to-back requests covering the space once."""
        start = 0
        while start + self.request_size <= self.address_space:
            yield ReadRequest(start=start, count=self.request_size)
            start += self.request_size

    def __iter__(self) -> Iterator[ReadRequest]:
        return self.requests()


@dataclass(frozen=True)
class ZipfReadWorkload:
    """Random reads whose start points follow a Zipf(s) popularity law.

    Start points cluster near the beginning of the space, modelling a hot
    prefix of objects; sizes stay uniform like the paper's workload.
    """

    address_space: int
    trials: int
    zipf_s: float = 1.2
    min_size: int = 1
    max_size: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.zipf_s <= 1.0:
            raise ValueError(f"zipf exponent must be > 1, got {self.zipf_s}")
        if not 1 <= self.min_size <= self.max_size:
            raise ValueError("need 1 <= min_size <= max_size")
        if self.address_space < self.max_size:
            raise ValueError("address space smaller than max read size")
        if self.trials <= 0:
            raise ValueError("trials must be > 0")

    def requests(self) -> Iterator[ReadRequest]:
        """Yield the skewed request sequence."""
        rng = np.random.default_rng(self.seed)
        for _ in range(self.trials):
            size = int(rng.integers(self.min_size, self.max_size + 1))
            limit = self.address_space - size
            start = int(rng.zipf(self.zipf_s)) - 1
            start = min(start, limit)
            yield ReadRequest(start=start, count=size)

    def __iter__(self) -> Iterator[ReadRequest]:
        return self.requests()


@dataclass(frozen=True)
class FileSizeWorkload:
    """Whole-file reads with log-normal file sizes (in elements).

    Defaults approximate the paper's motivating example: 1 MiB elements and
    files of a few MiB to a few tens of MiB.
    """

    address_space: int
    trials: int
    median_elements: float = 6.0
    sigma: float = 0.8
    max_elements: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.median_elements <= 0 or self.sigma <= 0:
            raise ValueError("log-normal parameters must be positive")
        if self.max_elements < 1:
            raise ValueError("max_elements must be >= 1")
        if self.address_space < self.max_elements:
            raise ValueError("address space smaller than max file size")
        if self.trials <= 0:
            raise ValueError("trials must be > 0")

    def requests(self) -> Iterator[ReadRequest]:
        """Yield whole-file read requests."""
        rng = np.random.default_rng(self.seed)
        mu = float(np.log(self.median_elements))
        for _ in range(self.trials):
            size = int(np.clip(round(rng.lognormal(mu, self.sigma)), 1, self.max_elements))
            start = int(rng.integers(0, self.address_space - size + 1))
            yield ReadRequest(start=start, count=size)

    def __iter__(self) -> Iterator[ReadRequest]:
        return self.requests()
