"""The paper's random-read workloads (§VI-B, §VI-C).

Normal reads: "randomly generate the start point and the read size, where
the start point may be an arbitrary data element and the range of read
size is 1 to 20 data elements" — 2000 trials.

Degraded reads: additionally "the erased disk may be an arbitrary disk" —
5000 trials.

Workloads are deterministic given a seed, and identical request sequences
are replayed against every placement form so comparisons are paired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..engine.requests import ReadRequest

__all__ = [
    "PAPER_NORMAL_TRIALS",
    "PAPER_DEGRADED_TRIALS",
    "PAPER_MAX_READ_ELEMENTS",
    "RandomReadWorkload",
    "DegradedTrial",
    "RandomDegradedWorkload",
]

#: trial counts and read-size bound used by the paper.
PAPER_NORMAL_TRIALS = 2000
PAPER_DEGRADED_TRIALS = 5000
PAPER_MAX_READ_ELEMENTS = 20


@dataclass(frozen=True)
class RandomReadWorkload:
    """Uniform random contiguous reads over a logical element space.

    Parameters
    ----------
    address_space:
        Number of logical data elements the workload may touch.  Requests
        are clamped to fit, so every request is fully inside the space.
    trials:
        Number of requests generated.
    min_size / max_size:
        Read-size bounds in elements (inclusive), paper default 1..20.
    seed:
        RNG seed; same seed -> same request sequence.
    """

    address_space: int
    trials: int = PAPER_NORMAL_TRIALS
    min_size: int = 1
    max_size: int = PAPER_MAX_READ_ELEMENTS
    seed: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.min_size <= self.max_size:
            raise ValueError(
                f"need 1 <= min_size <= max_size, got {self.min_size}..{self.max_size}"
            )
        if self.address_space < self.max_size:
            raise ValueError(
                f"address space {self.address_space} smaller than max read "
                f"size {self.max_size}"
            )
        if self.trials <= 0:
            raise ValueError(f"trials must be > 0, got {self.trials}")

    def requests(self) -> Iterator[ReadRequest]:
        """Yield the request sequence."""
        rng = np.random.default_rng(self.seed)
        for _ in range(self.trials):
            size = int(rng.integers(self.min_size, self.max_size + 1))
            start = int(rng.integers(0, self.address_space - size + 1))
            yield ReadRequest(start=start, count=size)

    def __iter__(self) -> Iterator[ReadRequest]:
        return self.requests()


@dataclass(frozen=True)
class DegradedTrial:
    """One degraded-read trial: a request plus the disk that is down."""

    request: ReadRequest
    failed_disk: int


@dataclass(frozen=True)
class RandomDegradedWorkload:
    """Random reads with a uniformly random failed disk per trial.

    The failed disk is resampled every trial, as in the paper ("the
    erasure disk may be an arbitrary disk").
    """

    address_space: int
    num_disks: int
    trials: int = PAPER_DEGRADED_TRIALS
    min_size: int = 1
    max_size: int = PAPER_MAX_READ_ELEMENTS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_disks <= 1:
            raise ValueError(f"need at least 2 disks, got {self.num_disks}")
        if not 1 <= self.min_size <= self.max_size:
            raise ValueError(
                f"need 1 <= min_size <= max_size, got {self.min_size}..{self.max_size}"
            )
        if self.address_space < self.max_size:
            raise ValueError(
                f"address space {self.address_space} smaller than max read "
                f"size {self.max_size}"
            )
        if self.trials <= 0:
            raise ValueError(f"trials must be > 0, got {self.trials}")

    def trials_iter(self) -> Iterator[DegradedTrial]:
        """Yield the trial sequence."""
        rng = np.random.default_rng(self.seed)
        for _ in range(self.trials):
            size = int(rng.integers(self.min_size, self.max_size + 1))
            start = int(rng.integers(0, self.address_space - size + 1))
            failed = int(rng.integers(0, self.num_disks))
            yield DegradedTrial(ReadRequest(start=start, count=size), failed)

    def __iter__(self) -> Iterator[DegradedTrial]:
        return self.trials_iter()
