"""EC-FRM-Code: a candidate erasure code re-deployed on the EC-FRM layout.

:class:`FRMCode` takes any single-row candidate code (RS, LRC, Cauchy RS —
anything implementing :class:`repro.codes.ErasureCode`) and operates at the
scope of one EC-FRM *stripe*: an ``n/r x n`` grid whose groups are encoded
and decoded independently with the candidate's own rules (paper §IV-B
Step 2, §IV-D).

Payload convention: a stripe's data is a ``(data_elements_per_stripe,
element_size)`` uint8 array in logical (row-major) order; the encoded
stripe is a ``(rows, n, element_size)`` uint8 grid, one slot per (row,
column/disk) position.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..codes.base import ErasureCode
from .grouping import FRMGeometry, GridPosition

__all__ = ["FRMCode"]


class FRMCode:
    """A candidate code transformed by the EC-FRM framework.

    Parameters
    ----------
    candidate:
        Any single-row systematic erasure code.  Its ``(n, k)`` determine
        the stripe geometry; its encode/decode/repair rules are applied
        per group.

    Notes
    -----
    EC-FRM preserves the candidate's fault tolerance, storage overhead and
    applicability to arbitrary disk counts (paper §IV-C, §V-B): each group
    places exactly one element on every disk, so ``f`` concurrent disk
    failures erase exactly ``f`` elements of every group — a pattern the
    candidate tolerates iff it tolerates ``f`` element erasures per row.
    """

    def __init__(self, candidate: ErasureCode) -> None:
        self.candidate = candidate
        self.geometry = FRMGeometry(candidate.n, candidate.k)
        # Constructive proof of the layout invariants at build time: a
        # malformed grouping would silently corrupt placement downstream.
        self.geometry.verify()

    # ------------------------------------------------------------------
    # derived properties (paper §V-B: merits carried over)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Registry-style name, e.g. ``"ec-frm-rs"``."""
        return f"ec-frm-{self.candidate.name}"

    @property
    def n(self) -> int:
        """Number of disks (stripe columns) — same as the candidate's n."""
        return self.candidate.n

    @property
    def k(self) -> int:
        """Data elements per candidate row."""
        return self.candidate.k

    @property
    def fault_tolerance(self) -> int:
        """Concurrent *disk* failures tolerated — the candidate's (Lemma 1)."""
        return self.candidate.fault_tolerance

    @property
    def storage_overhead(self) -> float:
        """Raw-to-usable ratio, identical to the candidate's ``n/k``."""
        return self.candidate.storage_overhead

    def describe(self) -> str:
        """Human-readable one-line description."""
        g = self.geometry
        return (
            f"EC-FRM[{self.candidate.describe()}] stripe={g.rows}x{g.n} "
            f"groups={g.num_groups} r={g.r}"
        )

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode_stripe(self, data: np.ndarray) -> np.ndarray:
        """Encode one stripe of logical data into the full EC-FRM grid.

        Parameters
        ----------
        data:
            ``(data_elements_per_stripe, element_size)`` uint8 array, in
            logical row-major order.

        Returns
        -------
        ``(rows, n, element_size)`` uint8 grid with all parities filled.
        """
        g = self.geometry
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != g.data_elements_per_stripe:
            raise ValueError(
                f"expected ({g.data_elements_per_stripe}, element_size) data, "
                f"got shape {data.shape}"
            )
        element_size = data.shape[1]
        grid = np.zeros((g.rows, g.n, element_size), dtype=np.uint8)
        grid[: g.data_rows] = data.reshape(g.data_rows, g.n, element_size)
        for i in range(g.num_groups):
            # Group i's data is exactly the contiguous logical run
            # [i*k, (i+1)*k) — Eq. (1) — so no gather is needed.
            group_data = data[i * g.k : (i + 1) * g.k]
            parity = self.candidate.encode(group_data)
            for e, pos in enumerate(g.group_parity(i)):
                grid[pos.row, pos.col] = parity[e]
        return grid

    # ------------------------------------------------------------------
    # decoding / reconstruction (paper §IV-D)
    # ------------------------------------------------------------------
    def decode_columns(
        self, grid: np.ndarray, failed_columns: Iterable[int]
    ) -> np.ndarray:
        """Rebuild every element lost to whole-column (disk) failures.

        Parameters
        ----------
        grid:
            ``(rows, n, element_size)`` array whose failed columns hold
            stale/garbage payloads (they are ignored and overwritten).
        failed_columns:
            Disk indices that failed.

        Returns
        -------
        A new fully-reconstructed grid.

        Raises
        ------
        DecodeFailure
            If more columns failed than the candidate tolerates.
        """
        g = self.geometry
        failed = sorted({int(c) for c in failed_columns})
        for c in failed:
            if not 0 <= c < g.n:
                raise ValueError(f"column {c} out of range [0, {g.n})")
        grid = np.asarray(grid, dtype=np.uint8)
        if grid.ndim != 3 or grid.shape[:2] != (g.rows, g.n):
            raise ValueError(f"expected grid of shape ({g.rows}, {g.n}, S), got {grid.shape}")
        if not failed:
            return grid.copy()

        element_size = grid.shape[2]
        out = grid.copy()
        failed_set = set(failed)
        for i in range(g.num_groups):
            elems = g.group_elements(i)
            erased = [e for e, pos in enumerate(elems) if pos.col in failed_set]
            available = {
                e: grid[pos.row, pos.col]
                for e, pos in enumerate(elems)
                if pos.col not in failed_set
            }
            recovered = self.candidate.decode(available, erased, element_size)
            for e in erased:
                pos = elems[e]
                out[pos.row, pos.col] = recovered[e]
        return out

    def reconstruct_positions(
        self,
        available: Mapping[GridPosition, np.ndarray],
        wanted: Sequence[GridPosition],
        element_size: int,
    ) -> dict[GridPosition, np.ndarray]:
        """Rebuild specific grid slots from whatever slots are supplied.

        Groups are independent, so each wanted slot is decoded inside its
        own group using only the available payloads of that group.
        """
        g = self.geometry
        by_group: dict[int, list[GridPosition]] = {}
        for pos in wanted:
            i, _ = g.group_of(pos)
            by_group.setdefault(i, []).append(pos)

        out: dict[GridPosition, np.ndarray] = {}
        for i, positions in by_group.items():
            elems = g.group_elements(i)
            index_of = {pos: e for e, pos in enumerate(elems)}
            erased = [index_of[p] for p in positions]
            have = {
                index_of[p]: buf
                for p, buf in available.items()
                if p in index_of and index_of[p] not in erased
            }
            recovered = self.candidate.decode(have, erased, element_size)
            for p in positions:
                out[p] = recovered[index_of[p]]
        return out

    def repair_plan_for_slot(
        self, pos: GridPosition, have: frozenset[GridPosition] = frozenset()
    ) -> frozenset[GridPosition]:
        """Helper grid slots sufficient to rebuild the single slot ``pos``.

        Delegates to the candidate's :meth:`repair_plan` within the slot's
        group, translating candidate element indices to grid positions.
        ``have`` lists slots the caller will already hold (preferred as
        helpers to minimise extra reads on degraded reads).
        """
        g = self.geometry
        i, e = g.group_of(pos)
        elems = g.group_elements(i)
        index_of = {p: idx for idx, p in enumerate(elems)}
        have_indices = frozenset(
            index_of[p] for p in have if p in index_of and index_of[p] != e
        )
        plan = self.candidate.repair_plan(e, have_indices)
        return frozenset(elems[idx] for idx in plan)

    def can_decode_columns(self, failed_columns: Iterable[int]) -> bool:
        """True if losing the given disks is decodable.

        Because every group loses exactly one element per failed column,
        this reduces to a *single* candidate-level query per distinct
        erased-index pattern; for most candidates the pattern is the same
        size for every group, so one representative check per group
        suffices (cheap: ``n/r`` checks).
        """
        g = self.geometry
        failed_set = {int(c) for c in failed_columns}
        for c in failed_set:
            if not 0 <= c < g.n:
                raise ValueError(f"column {c} out of range [0, {g.n})")
        for i in range(g.num_groups):
            erased = [
                e for e, pos in enumerate(g.group_elements(i)) if pos.col in failed_set
            ]
            if not self.candidate.can_decode(erased):
                return False
        return True
