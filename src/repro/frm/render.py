"""ASCII rendering of EC-FRM stripe layouts.

Produces the grid pictures the paper draws (Figures 4 and 5): each slot is
labelled with its group and candidate-element identity, columns are disks.
Used by ``repro.harness.paperfigs`` and the ``repro-ecfrm layout`` CLI.
"""

from __future__ import annotations

from .grouping import FRMGeometry, GridPosition

__all__ = ["render_geometry", "render_group_membership", "slot_label"]


def slot_label(geometry: FRMGeometry, pos: GridPosition, *, style: str = "group") -> str:
    """Label a slot.

    ``style="group"`` labels by group identity: ``D3`` / ``P3`` for a data /
    parity element of group 3 (matching the paper's per-group icons).
    ``style="grid"`` labels by grid coordinates the way the paper names
    elements: ``d0,7`` or ``p4,1``.
    """
    i, e = geometry.group_of(pos)
    if style == "group":
        kind = "D" if e < geometry.k else "P"
        return f"{kind}{i}"
    if style == "grid":
        kind = "d" if pos.row < geometry.data_rows else "p"
        return f"{kind}{pos.row},{pos.col}"
    raise ValueError(f"unknown label style {style!r}")


def render_geometry(geometry: FRMGeometry, *, style: str = "group") -> str:
    """Render the full stripe grid as an ASCII table.

    Columns are disks; the horizontal rule separates data rows from parity
    rows, mirroring the paper's Figure 4.
    """
    width = max(
        len(slot_label(geometry, GridPosition(r, c), style=style))
        for r in range(geometry.rows)
        for c in range(geometry.n)
    )
    width = max(width, len(f"disk{geometry.n - 1}"))
    header = " | ".join(f"disk{c}".rjust(width) for c in range(geometry.n))
    rule = "-+-".join("-" * width for _ in range(geometry.n))
    lines = [header, rule]
    for r in range(geometry.rows):
        cells = [
            slot_label(geometry, GridPosition(r, c), style=style).rjust(width)
            for c in range(geometry.n)
        ]
        lines.append(" | ".join(cells))
        if r == geometry.data_rows - 1:
            lines.append(rule)
    return "\n".join(lines)


def render_group_membership(geometry: FRMGeometry, group: int) -> str:
    """One-line set notation for a group, in the paper's element names.

    Example for the (10,6) candidate, group 1::

        G1 = {d0,6, d0,7, d0,8, d0,9, d1,0, d1,1, p3,2, p3,3, p4,4, p4,5}
    """
    names = [
        slot_label(geometry, pos, style="grid")
        for pos in geometry.group_elements(group)
    ]
    return f"G{group} = {{{', '.join(names)}}}"
