"""Group identification for EC-FRM stripes — paper §IV-B, Equations (1)-(4).

A candidate code is reduced to its two-tuple ``(n, k)``: ``n`` elements per
candidate row, ``k`` of them data (a ``(6,2,2)`` LRC is the ``(10, 6)``
candidate).  With ``r = gcd(n, k)`` an EC-FRM stripe is an ``n/r`` row by
``n`` column grid:

* the first ``k/r`` rows hold data elements, laid **row-major** — logical
  data element ``t`` of the stripe sits at ``(t div n, t mod n)``;
* the remaining ``(n-k)/r`` rows hold parity elements;
* the grid partitions into ``n/r`` *groups* ``G_i``, each a logical
  candidate-code row: group ``i`` owns data elements with linear indices
  ``i*k .. i*k + k - 1`` (Eq. 1) and parity slots at row ``k/r + j``,
  columns ``<i*k + k + j*r + s>_n`` for ``s in [0, r)``,
  ``j in [0, (n-k)/r)`` (Eq. 2).

.. note::
   The paper's printed Eq. (2) contains ``j*i`` where the construction
   requires ``j*r``; the corrected term reproduces every worked example in
   the paper (``G_1``/``G_2``/``G_3`` of the (6,2,2) EC-FRM-LRC and the
   Figure-4 layout), whereas ``j*i`` contradicts them.  See
   ``tests/frm/test_grouping.py::TestPaperExamples``.

The decisive invariant (proved constructively in :func:`FRMGeometry.verify`)
is that each group has **exactly one element in every column**, so a column
(= disk) failure erases exactly one element per group and the candidate
code's fault tolerance carries over (paper Lemma 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Iterator

__all__ = ["GridPosition", "FRMGeometry"]


@dataclass(frozen=True, order=True)
class GridPosition:
    """A slot in the EC-FRM stripe grid: ``row`` in ``[0, n/r)``, ``col`` = disk."""

    row: int
    col: int


@dataclass(frozen=True)
class FRMGeometry:
    """Geometry and group structure of an EC-FRM stripe for candidate ``(n, k)``.

    Parameters
    ----------
    n:
        Total elements per candidate row.
    k:
        Data elements per candidate row; ``0 < k < n``.
    """

    n: int
    k: int

    def __post_init__(self) -> None:
        if not 0 < self.k < self.n:
            raise ValueError(f"candidate code needs 0 < k < n, got (n={self.n}, k={self.k})")

    # ------------------------------------------------------------------
    # derived scalars
    # ------------------------------------------------------------------
    @property
    def r(self) -> int:
        """``gcd(n, k)`` — the paper's parameter ``r``."""
        return gcd(self.n, self.k)

    @property
    def rows(self) -> int:
        """Rows per EC-FRM stripe: ``n / r``."""
        return self.n // self.r

    @property
    def data_rows(self) -> int:
        """Leading rows holding data: ``k / r``."""
        return self.k // self.r

    @property
    def parity_rows(self) -> int:
        """Trailing rows holding parity: ``(n - k) / r``."""
        return (self.n - self.k) // self.r

    @property
    def num_groups(self) -> int:
        """Groups per stripe: ``n / r`` (same count as rows)."""
        return self.n // self.r

    @property
    def data_elements_per_stripe(self) -> int:
        """Data elements per stripe: ``(k/r) * n == num_groups * k``."""
        return self.data_rows * self.n

    @property
    def parity_elements_per_stripe(self) -> int:
        """Parity elements per stripe."""
        return self.parity_rows * self.n

    @property
    def elements_per_stripe(self) -> int:
        """All elements per stripe: ``(n/r) * n``."""
        return self.rows * self.n

    # ------------------------------------------------------------------
    # Eq. (1): data elements of each group
    # ------------------------------------------------------------------
    def data_position(self, t: int) -> GridPosition:
        """Grid slot of the stripe-local logical data element ``t``.

        Data is laid row-major across all ``n`` columns: consecutive
        logical elements land on consecutive disks — the property that
        spreads any contiguous read over all ``n`` disks.
        """
        if not 0 <= t < self.data_elements_per_stripe:
            raise ValueError(
                f"data index {t} out of range [0, {self.data_elements_per_stripe})"
            )
        return GridPosition(t // self.n, t % self.n)

    def data_linear_index(self, pos: GridPosition) -> int:
        """Inverse of :meth:`data_position`."""
        if not (0 <= pos.row < self.data_rows and 0 <= pos.col < self.n):
            raise ValueError(f"{pos} is not a data slot")
        return pos.row * self.n + pos.col

    def group_data(self, i: int) -> list[GridPosition]:
        """Eq. (1): the ``k`` data slots of group ``i``, in candidate order."""
        self._check_group(i)
        return [self.data_position(i * self.k + offset) for offset in range(self.k)]

    # ------------------------------------------------------------------
    # Eq. (2)/(3): parity elements of each group
    # ------------------------------------------------------------------
    def group_parity_run(self, i: int, j: int) -> list[GridPosition]:
        """Eq. (2): ``P_{i,j}`` — the ``r`` parity slots of group ``i`` in
        parity row ``j`` (grid row ``k/r + j``)."""
        self._check_group(i)
        if not 0 <= j < self.parity_rows:
            raise ValueError(f"parity row {j} out of range [0, {self.parity_rows})")
        row = self.data_rows + j
        base = i * self.k + self.k + j * self.r
        return [GridPosition(row, (base + s) % self.n) for s in range(self.r)]

    def group_parity(self, i: int) -> list[GridPosition]:
        """Eq. (3): ``P_i`` — all ``n - k`` parity slots of group ``i``,
        ordered by parity row then by run offset (candidate parity order)."""
        return [
            pos
            for j in range(self.parity_rows)
            for pos in self.group_parity_run(i, j)
        ]

    # ------------------------------------------------------------------
    # Eq. (4): complete groups, and the inverse slot -> group map
    # ------------------------------------------------------------------
    def group_elements(self, i: int) -> list[GridPosition]:
        """Eq. (4): ``G_i = D_i U P_i`` ordered by candidate element index.

        Index ``e`` of the returned list is candidate-code element ``e``:
        ``e < k`` are data, ``e >= k`` parity.
        """
        return self.group_data(i) + self.group_parity(i)

    def groups(self) -> Iterator[list[GridPosition]]:
        """Iterate all groups in order ``G_0 .. G_{n/r - 1}``."""
        for i in range(self.num_groups):
            yield self.group_elements(i)

    def group_of(self, pos: GridPosition) -> tuple[int, int]:
        """``(group index, candidate element index)`` owning grid slot ``pos``."""
        table = self._slot_table()
        try:
            return table[pos]
        except KeyError:
            raise ValueError(f"{pos} is not a slot of the {self.rows}x{self.n} stripe") from None

    def group_columns(self, i: int) -> tuple[list[int], list[int]]:
        """``(data columns, parity columns)`` of group ``i`` — both
        contiguous runs modulo ``n`` (paper §IV-B observation)."""
        self._check_group(i)
        data_cols = [(i * self.k + e) % self.n for e in range(self.k)]
        parity_cols = [(i * self.k + self.k + e) % self.n for e in range(self.n - self.k)]
        return data_cols, parity_cols

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Assert the structural invariants of the construction.

        1. groups partition the grid slots exactly;
        2. every group has exactly one element per column;
        3. parity slots of distinct groups never collide;
        4. data slots cover rows ``[0, k/r)``, parity rows ``[k/r, n/r)``.

        Raises AssertionError with a diagnostic message on violation.
        """
        seen: dict[GridPosition, tuple[int, int]] = {}
        for i in range(self.num_groups):
            cols_seen: set[int] = set()
            elems = self.group_elements(i)
            if len(elems) != self.n:
                raise AssertionError(f"group {i} has {len(elems)} elements, expected {self.n}")
            for e, pos in enumerate(elems):
                if pos in seen:
                    raise AssertionError(f"slot {pos} claimed by groups {seen[pos][0]} and {i}")
                seen[pos] = (i, e)
                if pos.col in cols_seen:
                    raise AssertionError(f"group {i} has two elements in column {pos.col}")
                cols_seen.add(pos.col)
                expected_region = pos.row < self.data_rows
                if expected_region != (e < self.k):
                    raise AssertionError(
                        f"group {i} element {e} at {pos} is in the wrong row region"
                    )
        if len(seen) != self.elements_per_stripe:
            raise AssertionError(
                f"groups cover {len(seen)} slots, stripe has {self.elements_per_stripe}"
            )

    # ------------------------------------------------------------------
    def _check_group(self, i: int) -> None:
        if not 0 <= i < self.num_groups:
            raise ValueError(f"group {i} out of range [0, {self.num_groups})")

    def _slot_table(self) -> dict[GridPosition, tuple[int, int]]:
        # Cached lazily on the instance; frozen dataclass, so stash via
        # object.__setattr__.  Size is rows*n <= a few hundred slots.
        cached = getattr(self, "_slots", None)
        if cached is None:
            cached = {
                pos: (i, e)
                for i in range(self.num_groups)
                for e, pos in enumerate(self.group_elements(i))
            }
            object.__setattr__(self, "_slots", cached)
        return cached
