"""EC-FRM: the paper's erasure coding framework (primary contribution).

* :mod:`repro.frm.grouping` — stripe geometry and group identification
  (paper Equations (1)-(4));
* :mod:`repro.frm.code` — :class:`FRMCode`, a candidate code re-deployed
  on the EC-FRM layout with per-group encode/decode;
* :mod:`repro.frm.render` — ASCII layout rendering (paper Figures 4/5).
"""

from .code import FRMCode
from .grouping import FRMGeometry, GridPosition
from .render import render_geometry, render_group_membership, slot_label

__all__ = [
    "FRMCode",
    "FRMGeometry",
    "GridPosition",
    "render_geometry",
    "render_group_membership",
    "slot_label",
]
