"""Single-disk recovery I/O minimization for XOR array codes.

The EC-FRM paper names two crucial metrics (§II-D): degraded reads — its
own subject — and *recovery from single failures*, citing Xiang et al.
(SIGMETRICS'10): recovering a failed RDP disk with a hybrid of row and
diagonal parity chains reads up to ~25% fewer blocks than the
conventional single-chain recovery, because chains chosen to overlap
share fetched blocks.  This module reproduces that optimization for any
0/1-coefficient grid code in the library (RDP, EVENODD, X-Code, WEAVER).

Model: each parity element defines one XOR *equation* (the parity plus
its data support).  A lost element is recoverable from any equation that
contains it and no other lost element.  A recovery plan picks one
equation per lost element; its cost is the number of *distinct* surviving
blocks fetched — overlapping equations amortize reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from ..codes.vertical import VerticalCode

__all__ = ["RecoveryPlan", "recovery_equations", "conventional_recovery_plan",
           "optimal_recovery_plan", "greedy_recovery_plan"]


@dataclass(frozen=True)
class RecoveryPlan:
    """A concrete single-disk recovery schedule.

    Attributes
    ----------
    failed_disk:
        The disk being rebuilt.
    choices:
        For each lost element, the helper set chosen (surviving element
        indices whose XOR rebuilds it).
    blocks_read:
        Union of all helper sets — the distinct surviving elements
        fetched from disks.
    """

    failed_disk: int
    choices: dict[int, frozenset[int]]
    blocks_read: frozenset[int]

    @property
    def io_count(self) -> int:
        """Number of distinct element reads the rebuild performs."""
        return len(self.blocks_read)

    def per_disk_loads(self, code: VerticalCode) -> dict[int, int]:
        """Reads per surviving disk under this plan."""
        loads: dict[int, int] = {}
        for e in self.blocks_read:
            d = code.disk_of_element(e)
            loads[d] = loads.get(d, 0) + 1
        return loads


def recovery_equations(code: VerticalCode) -> list[frozenset[int]]:
    """The code's XOR equations in *element space*.

    Codes may declare their natural structural equations via an
    ``xor_equations()`` method (RDP's diagonal equations reference the
    row-parity *element*, which is what makes hybrid recovery cheap);
    otherwise one equation per parity element is derived from the
    generator: {parity index} | {data support}.  Requires 0/1
    coefficients (XOR codes); raises for general GF coefficients.
    """
    declared = getattr(code, "xor_equations", None)
    if declared is not None:
        return [frozenset(eq) for eq in declared()]
    gen = code.generator
    if not set(np.unique(gen)) <= {0, 1}:
        raise ValueError(
            f"{code.describe()} has non-binary coefficients; equation-based "
            "recovery applies to XOR codes only"
        )
    equations = []
    for q in range(code.k, code.n):
        support = frozenset(int(j) for j in np.nonzero(gen[q])[0])
        equations.append(support | {q})
    return equations


def _candidates_per_lost(
    code: VerticalCode, lost: list[int]
) -> dict[int, list[frozenset[int]]]:
    lost_set = set(lost)
    equations = recovery_equations(code)
    candidates: dict[int, list[frozenset[int]]] = {e: [] for e in lost}
    for eq in equations:
        hit = eq & lost_set
        if len(hit) == 1:
            e = next(iter(hit))
            candidates[e].append(eq - {e})
    for e, options in candidates.items():
        if not options:
            raise ValueError(
                f"element {e} has no single-equation recovery with disk "
                f"{code.disk_of_element(e)} down"
            )
    return candidates


def conventional_recovery_plan(code: VerticalCode, failed_disk: int) -> RecoveryPlan:
    """Baseline: each lost element repaired by its *first* equation.

    For RDP/EVENODD this is the classic all-row-parity rebuild for data
    disks (the equations are emitted row-parity first), matching the
    conventional scheme Xiang et al. improve on.
    """
    lost = code.elements_on_disk(failed_disk)
    candidates = _candidates_per_lost(code, lost)
    choices = {e: candidates[e][0] for e in lost}
    blocks = frozenset().union(*choices.values()) if choices else frozenset()
    return RecoveryPlan(failed_disk=failed_disk, choices=choices, blocks_read=blocks)


def optimal_recovery_plan(
    code: VerticalCode, failed_disk: int, *, exhaustive_limit: int = 1 << 14
) -> RecoveryPlan:
    """Minimum-I/O recovery plan.

    Exhaustively searches the cross-product of per-element equation
    choices when it fits in ``exhaustive_limit`` combinations, otherwise
    falls back to :func:`greedy_recovery_plan` with hill-climbing.
    """
    lost = code.elements_on_disk(failed_disk)
    candidates = _candidates_per_lost(code, lost)
    combos = 1
    for options in candidates.values():
        combos *= len(options)
        if combos > exhaustive_limit:
            return greedy_recovery_plan(code, failed_disk)

    best_choices = None
    best_cost = None
    keys = list(candidates)
    for picks in product(*(candidates[e] for e in keys)):
        blocks = frozenset().union(*picks)
        if best_cost is None or len(blocks) < best_cost:
            best_cost = len(blocks)
            best_choices = dict(zip(keys, picks))
    assert best_choices is not None
    return RecoveryPlan(
        failed_disk=failed_disk,
        choices=best_choices,
        blocks_read=frozenset().union(*best_choices.values()),
    )


def greedy_recovery_plan(code: VerticalCode, failed_disk: int) -> RecoveryPlan:
    """Greedy + hill-climbing approximation of the optimal plan.

    Start from the conventional plan, then repeatedly re-choose the single
    element whose switch most reduces the distinct-block count, until no
    switch helps.  Matches the exhaustive optimum on every RDP/EVENODD
    instance small enough to verify (see tests).
    """
    lost = code.elements_on_disk(failed_disk)
    candidates = _candidates_per_lost(code, lost)
    choices = {e: candidates[e][0] for e in lost}

    def cost(ch: dict[int, frozenset[int]]) -> int:
        return len(frozenset().union(*ch.values())) if ch else 0

    current = cost(choices)
    improved = True
    while improved:
        improved = False
        for e in lost:
            for option in candidates[e]:
                if option == choices[e]:
                    continue
                trial = dict(choices)
                trial[e] = option
                c = cost(trial)
                if c < current:
                    choices = trial
                    current = c
                    improved = True
    return RecoveryPlan(
        failed_disk=failed_disk,
        choices=choices,
        blocks_read=frozenset().union(*choices.values()),
    )
