"""The recovery orchestrator: failure -> spare -> online rebuild -> healthy.

This closes the loop the paper's §II-D only *calculates*: EC-FRM spreads
rebuild helper reads over all survivors, so rebuild is faster for the
same reason reads are — but a calculation repairs nothing.  The pieces:

:class:`DiskRebuild` drives one failed disk's reconstruction onto a
bound spare, incrementally in row-windows, through the same crash-safe
WAL (:class:`~repro.migrate.journal.MigrationJournal`) the migration
mover uses:

1. **stage** — each window's verified *data* payloads are fetched
   through :meth:`BlockStore.fetch_row_data` (repairing faulted elements
   on the way) and journaled before any slot is touched;
2. **reconstruct** — the window's lost elements are rewritten on the
   spare: data straight from the staged payloads, parity re-encoded from
   data (deterministic, so the bytes are identical);
3. **commit** — a commit record marks the window durable; plan-cache
   entries covering the window are dropped.

A crash at any point (the ``crash_after`` hooks cover all three stages)
is recovered by :func:`resume_disk_rebuild`: committed windows are
trusted, the pending staged window is replayed idempotently, and the
rebuild continues — converging on the same final state as an
uninterrupted run.

Rebuilt elements are readable *immediately*, and not just after their
window commits: binding the spare (:meth:`SimDisk.restore(wipe=True)`)
makes the disk alive-but-empty, so a degraded read of a not-yet-rebuilt
slot demotes it to an erasure, reconstructs through the code, and
self-heals it in place — the foreground read path and the rebuild
executor write the same bytes through the same
:meth:`~repro.store.blockstore.BlockStore.put_element` point, so their
interleaving is idempotent by construction.

**Heal priority**: an optional per-row heat map orders windows hottest
first, so under a Zipf workload the stripes that dominate foreground
traffic stop paying the degraded-read tax earliest.

**Overlapping failures**: a second disk failing mid-rebuild makes some
windows temporarily undecodable; those park (``DecodeFailure`` from the
fetch) and are retried after the survivors change — a transient outage
restores on the injector's op clock, which the rebuild's own I/O ticks.
Only when retry rounds stop making progress is the typed
:class:`DataLossError` raised, naming the unrecoverable rows.

The *spare itself* dying mid-rebuild is not data loss: windows park
(checked after their fetches, before their stage record, so the WAL
never holds two uncommitted stages) and, if the spare stays dead through
the retry rounds, :class:`SpareFailedError` tells the orchestrator to
abandon the attempt — the dead spare stays consumed, the disk re-queues,
and a fresh spare (when the pool has one) starts a new rebuild.

:class:`RecoveryOrchestrator` supervises the whole plane: it polls a
:class:`~repro.recovery.detector.FailureDetector`, binds spares from a
:class:`~repro.recovery.spares.SparePool` (staying gracefully degraded
when the pool is dry), runs one :class:`DiskRebuild` at a time under a
:class:`~repro.recovery.throttle.RepairThrottle`, and publishes the
``recovery.`` metrics namespace.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..codes.base import DecodeFailure
from ..migrate.journal import MigrationJournal, PendingStage
from ..obs import NULL_TRACER, Tracer
from .detector import DetectorConfig, FailureDetector
from .spares import SparePool, SpareExhaustedError
from .throttle import RepairThrottle

__all__ = [
    "REBUILD_CRASH_POINTS",
    "RecoveryCrash",
    "RecoveryError",
    "SpareFailedError",
    "DataLossError",
    "DiskRebuild",
    "resume_disk_rebuild",
    "RecoveryOrchestrator",
]

#: valid ``crash_after`` hook points of one rebuild window, in WAL order.
REBUILD_CRASH_POINTS = ("stage", "reconstruct", "commit")

#: journal context discriminator (the WAL format is shared with
#: migration and cluster rebalance; the kind keeps resumes honest).
JOURNAL_KIND = "disk-rebuild"


class RecoveryError(RuntimeError):
    """Recovery plane misuse (wrong journal, wrong disk state, ...)."""


class RecoveryCrash(RuntimeError):
    """Simulated process crash at a rebuild WAL stage (testing hook).

    The in-memory executor is dead after this; the journal and the disks
    survive.  Recover with :func:`resume_disk_rebuild`.
    """


class SpareFailedError(RecoveryError):
    """The bound spare itself died mid-rebuild and stayed dead.

    No data is lost — the failed disk's contents remain reconstructible
    from the survivors — but this executor can make no further progress:
    the bay needs a *fresh* spare.  The orchestrator reacts by abandoning
    the rebuild (the dead spare stays consumed) and re-queueing the disk.
    """


class _SpareDown(Exception):
    """Internal: the rebuild target disk is down at window-apply time.

    Raised *before* the window is staged (so the WAL never accumulates a
    second uncommitted stage record) and converted to a parked window by
    :meth:`DiskRebuild.step` — a transient outage on the spare restores
    on the injector's op clock, which the retry rounds' fetches tick.
    """


class DataLossError(RuntimeError):
    """Stripe ranges are genuinely unrecoverable under current failures.

    Raised only after parked-window retries stop making progress — a
    transient second failure parks windows without ever raising this.
    ``rows`` names the affected candidate rows.
    """

    def __init__(self, message: str, rows: list[int]) -> None:
        super().__init__(message)
        self.rows = list(rows)


class DiskRebuild:
    """Crash-safe, throttled rebuild of one failed disk onto a spare.

    Parameters
    ----------
    store:
        The live :class:`~repro.store.blockstore.BlockStore`.
    failed_disk:
        Disk to rebuild.  Must be failed at construction (fresh start);
        the constructor binds the spare by restoring the disk wiped.
    journal:
        Journal (or path) for the rebuild WAL.  Fresh starts need a
        fresh journal; crashed rebuilds resume via
        :func:`resume_disk_rebuild`.
    cache:
        Optional plan cache serving reads over the store; entries
        covering each window are invalidated at commit (a degraded plan
        cached before the window committed would keep paying the
        reconstruction tax — invalidation here is a performance fix, and
        after the final window it is what lets plans stop degrading).
    throttle:
        Optional :class:`RepairThrottle`; ``None`` runs unthrottled.
    unit_rows:
        Rows per window.
    heat:
        Optional ``row -> score`` map; windows are rebuilt in descending
        total-heat order (ties by window index).  The order is persisted
        in the journal context so a resume follows the same permutation.
    tracer / registry:
        Observability; default to the store's.
    crash_after / crash_at_window:
        Testing hooks, see :data:`REBUILD_CRASH_POINTS`.  The window
        index refers to the *visit order*, not the natural index.
    """

    def __init__(
        self,
        store,
        failed_disk: int,
        *,
        journal: MigrationJournal | str | Path,
        cache=None,
        throttle: RepairThrottle | None = None,
        unit_rows: int = 4,
        heat: dict[int, float] | None = None,
        tracer: Tracer | None = None,
        registry=None,
        crash_after: str | None = None,
        crash_at_window: int = 0,
        max_barren_rounds: int = 3,
        _resume_committed: set[int] | None = None,
        _resume_order: list[int] | None = None,
        _resume_rows: int | None = None,
        _resume_staged: str | None = None,
    ) -> None:
        if crash_after is not None and crash_after not in REBUILD_CRASH_POINTS:
            raise ValueError(
                f"crash_after must be one of {REBUILD_CRASH_POINTS}, "
                f"got {crash_after!r}"
            )
        if unit_rows <= 0:
            raise ValueError(f"unit_rows must be > 0, got {unit_rows}")
        if max_barren_rounds < 1:
            raise ValueError(
                f"max_barren_rounds must be >= 1, got {max_barren_rounds}"
            )
        if not 0 <= failed_disk < len(store.array):
            raise ValueError(f"disk {failed_disk} out of range")
        self.store = store
        self.failed_disk = failed_disk
        self.journal = (
            journal
            if isinstance(journal, MigrationJournal)
            else MigrationJournal(journal)
        )
        self.cache = cache
        self.throttle = throttle
        self.unit_rows = unit_rows
        self.tracer = tracer if tracer is not None else getattr(store, "tracer", NULL_TRACER)
        self.registry = registry if registry is not None else getattr(store, "registry", None)
        self.crash_after = crash_after
        self.crash_at_window = crash_at_window
        self.max_barren_rounds = max_barren_rounds

        # What each stage record holds, persisted in the WAL context so a
        # resume replays it the same way:
        #   "row-data"      — the k verified data payloads of every row
        #                     (lost elements re-derived at apply time);
        #   "lost-elements" — only the reconstructed lost payloads, fetched
        #                     through the minimum-transfer repair planner.
        # Topology-attached stores default to lost-elements so rebuild
        # traffic follows the same rack-aware plans as degraded reads.
        if _resume_staged is not None:
            if _resume_staged not in ("row-data", "lost-elements"):
                raise RecoveryError(
                    f"unknown staged payload mode {_resume_staged!r} in journal"
                )
            self.staged_mode = _resume_staged
        else:
            self.staged_mode = (
                "lost-elements"
                if getattr(store, "topology", None) is not None
                else "row-data"
            )

        # a resume rebuilds the journal's *planned* rows: rows appended
        # after the plan record landed on a live (bound-spare) array and
        # never need reconstruction, and recomputing the window count
        # from a grown store would break the persisted order permutation.
        self.rows = store.rows_written if _resume_rows is None else _resume_rows
        self.num_windows = -(-self.rows // unit_rows) if self.rows else 0
        if _resume_order is not None:
            self.order = list(_resume_order)
        else:
            self.order = self._heat_order(heat)
        if sorted(self.order) != list(range(self.num_windows)):
            raise RecoveryError(
                f"window order {self.order} is not a permutation of "
                f"0..{self.num_windows - 1}"
            )

        self.done: set[int] = set()
        self._parked: set[int] = set()
        self.rows_rebuilt = 0
        self.elements_rebuilt = 0
        self.bytes_repaired = 0
        self.bytes_staged = 0
        self.write_intents = 0
        self.parked_events = 0
        self.spare_down_events = 0
        self.retry_rounds = 0
        self.resumes = 0
        self.cache_invalidations = 0
        self._barren_rounds = 0
        self._round_progress = 1  # allow the first retry round

        if _resume_committed is None:
            if not store.array[failed_disk].failed:
                raise RecoveryError(
                    f"disk {failed_disk} has not failed; nothing to rebuild"
                )
            if self.journal.exists():
                raise RecoveryError(
                    f"journal {self.journal.path} already exists; "
                    "use resume_disk_rebuild()"
                )
            self.journal.write_plan(self._context())
            # bind the spare: the bay comes back alive and empty, so
            # degraded reads can self-heal not-yet-rebuilt slots from here
            store.array[failed_disk].restore(wipe=True)
        else:
            self.done.update(_resume_committed)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _heat_order(self, heat: dict[int, float] | None) -> list[int]:
        windows = list(range(self.num_windows))
        if not heat:
            return windows
        def score(w: int) -> float:
            return sum(heat.get(r, 0.0) for r in self._window_rows(w))
        return sorted(windows, key=lambda w: (-score(w), w))

    def _window_rows(self, window: int) -> range:
        start = window * self.unit_rows
        return range(start, min(self.rows, start + self.unit_rows))

    def _window_cost(self, window: int) -> int:
        """Physical element operations: ``k`` reads + lost writes per row
        (repairs on faulted rows cost extra, deliberately not pre-charged)."""
        k, n = self.store.code.k, self.store.code.n
        per_row = k + max(1, n - k)  # >= 1 lost element per row, all forms
        return len(self._window_rows(window)) * per_row

    def _context(self) -> dict:
        return {
            "kind": JOURNAL_KIND,
            "failed_disk": self.failed_disk,
            "rows": self.rows,
            "unit_rows": self.unit_rows,
            "windows": self.num_windows,
            "element_size": self.store.element_size,
            "order": list(self.order),
            "staged": self.staged_mode,
        }

    def _lost_elements(self, row: int) -> list[int]:
        """Element indices of ``row`` living on the rebuilt disk, ascending."""
        placement = self.store.placement
        return [
            e
            for e in range(self.store.code.n)
            if placement.locate_row_element(row, e).disk == self.failed_disk
        ]

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """True once every window has a commit record."""
        return len(self.done) >= self.num_windows

    @property
    def windows_committed(self) -> int:
        return len(self.done)

    @property
    def progress_ratio(self) -> float:
        if self.num_windows == 0:
            return 1.0
        return len(self.done) / self.num_windows

    @property
    def parked_windows(self) -> list[int]:
        """Windows currently parked as temporarily unreadable."""
        return sorted(self._parked)

    def parked_rows(self) -> list[int]:
        """Candidate rows covered by parked windows, ascending."""
        return sorted(r for w in self._parked for r in self._window_rows(w))

    def _next_pending(self) -> int | None:
        for w in self.order:
            if w not in self.done and w not in self._parked:
                return w
        return None

    # ------------------------------------------------------------------
    # the rebuild loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run one throttled quantum; returns True while work remains.

        Deposits the throttle's tokens; if the bucket covers the next
        window's cost, rebuilds it (stage -> reconstruct -> commit ->
        invalidate), else records a stall.  A window whose stripes are
        temporarily undecodable (overlapping failure) parks and is
        retried after the rest of the schedule — repeated barren retry
        rounds raise :class:`DataLossError`.
        """
        if self.complete:
            return False
        window = self._next_pending()
        if window is None:
            # everything left is parked: begin a retry round
            if self._round_progress == 0:
                self._barren_rounds += 1
                if self._barren_rounds >= self.max_barren_rounds:
                    rows = self.parked_rows()
                    if self.store.array[self.failed_disk].failed:
                        # the bound spare is the thing that is dead — the
                        # parked rows stay reconstructible; this executor
                        # just cannot land them anywhere
                        raise SpareFailedError(
                            f"disk {self.failed_disk}: bound spare died "
                            f"mid-rebuild and stayed dead for "
                            f"{self._barren_rounds} retry rounds; "
                            f"{len(rows)} rows pending — bind a fresh spare"
                        )
                    raise DataLossError(
                        f"disk {self.failed_disk}: rows {rows} unrecoverable "
                        f"after {self._barren_rounds} barren retry rounds "
                        f"(failed disks now: {self.store.array.failed_disks})",
                        rows,
                    )
            else:
                self._barren_rounds = 0
            self._round_progress = 0
            self.retry_rounds += 1
            self._parked.clear()
            window = self._next_pending()
            assert window is not None
        cost = self._window_cost(window)
        if self.throttle is not None:
            self.throttle.refill()
            # a window bigger than the bucket must still be payable
            if not self.throttle.spend(min(cost, self.throttle.max_budget)):
                return True
        try:
            self._rebuild_window(window)
            self._round_progress += 1
        except (DecodeFailure, _SpareDown):
            self._parked.add(window)
            self.parked_events += 1
        return not self.complete

    def run(self, max_steps: int | None = None) -> int:
        """Drive :meth:`step` until complete; returns steps taken.

        Raises :class:`DataLossError` if parked windows stop converging.
        ``max_steps`` bounds the loop (RuntimeError on overrun) so a
        misconfigured throttle cannot spin forever.
        """
        steps = 0
        while True:
            steps += 1
            if not self.step():
                return steps
            if max_steps is not None and steps >= max_steps:
                raise RecoveryError(
                    f"rebuild of disk {self.failed_disk} incomplete after "
                    f"{steps} steps ({self.windows_committed}/{self.num_windows}"
                    " windows)"
                )

    def _rebuild_window(self, window: int) -> None:
        rows = self._window_rows(window)
        with self.tracer.span(
            "rebuild", disk=self.failed_disk, window=window, rows=len(rows)
        ):
            # stage: verified payloads (faulted elements repaired on the
            # way; a not-yet-rebuilt slot on the spare self-heals here).
            # In lost-elements mode only the reconstructed targets are
            # staged, fetched through the min-transfer repair planner.
            if self.staged_mode == "lost-elements":
                payloads = []
                for row in rows:
                    repaired = self.store.fetch_repair_payloads(
                        row, self._lost_elements(row)
                    )
                    payloads.append([repaired[e] for e in sorted(repaired)])
            else:
                payloads = [self.store.fetch_row_data(row) for row in rows]
            if self.store.array[self.failed_disk].failed:
                # the bound spare died during the fetches.  Faults fire
                # on batch entry and writes never tick the clock, so
                # checking here — after the last fetch, before the stage
                # record — is race-free: a window that does get staged is
                # guaranteed an up spare for every put, keeping
                # put_element's dropped-write intent path out of the
                # rebuild entirely and the WAL free of a second
                # uncommitted stage.
                self.spare_down_events += 1
                raise _SpareDown(window)
            self.bytes_staged += sum(len(p) for row in payloads for p in row)
            self.journal.write_stage(window, list(rows), payloads)
            self._maybe_crash("stage", window)
            self._apply_window(window, rows, payloads)
            self.journal.write_commit(window)
            self._maybe_crash("commit", window)
            self._commit_window(window, rows)

    def _apply_window(
        self,
        window: int,
        rows,
        payloads,
        *,
        crash_enabled: bool = True,
    ) -> None:
        """Reconstruct the window's lost elements on the spare (idempotent)."""
        k, s = self.store.code.k, self.store.element_size
        placement = self.store.placement
        crash_row = len(rows) // 2
        visit = self.order.index(window)
        for i, row in enumerate(rows):
            if (
                crash_enabled
                and self.crash_after == "reconstruct"
                and visit == self.crash_at_window
                and i == crash_row
            ):
                raise RecoveryCrash(
                    f"simulated crash mid-reconstruct of window {window} "
                    f"(row {row})"
                )
            lost = self._lost_elements(row)
            if not lost:
                continue
            if self.staged_mode == "lost-elements":
                # the staged record *is* the lost payloads, in lost order
                targets = list(zip(lost, payloads[i]))
            else:
                data = np.stack(
                    [np.frombuffer(p, dtype=np.uint8) for p in payloads[i]]
                )
                parity = (
                    self.store.code.encode(data) if any(e >= k for e in lost) else None
                )
                targets = [
                    (e, data[e] if e < k else parity[e - k]) for e in lost
                ]
            for e, payload in targets:
                addr = placement.locate_row_element(row, e)
                if self.store.put_element(addr, payload):
                    self.bytes_repaired += s
                else:
                    self.write_intents += 1
                self.elements_rebuilt += 1
            self.rows_rebuilt += 1

    def _commit_window(self, window: int, rows) -> None:
        self.done.add(window)
        if self.cache is not None:
            k = self.store.code.k
            self.cache_invalidations += self.cache.invalidate_elements(
                rows[0] * k, (rows[-1] + 1) * k, placement=self.store.placement
            )

    def _maybe_crash(self, point: str, window: int) -> None:
        if (
            self.crash_after == point
            and self.order.index(window) == self.crash_at_window
        ):
            raise RecoveryCrash(
                f"simulated crash after {point} of window {window}"
            )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _replay_pending(self, pending: PendingStage) -> None:
        """Re-apply a staged-but-uncommitted window from the journal.

        Idempotent: every write lands the same payload at the same
        address, whether the crash hit before, during, or after the
        original apply.
        """
        with self.tracer.span(
            "rebuild", disk=self.failed_disk, window=pending.window, replay=True
        ):
            self._apply_window(
                pending.window, pending.rows, pending.payloads, crash_enabled=False
            )
            self.journal.write_commit(pending.window)
            self._commit_window(pending.window, pending.rows)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """Nested-dict view for the ``recovery.rebuild.*`` namespace."""
        return {
            "rebuild": {
                "failed_disk": self.failed_disk,
                "windows_committed": self.windows_committed,
                "windows_total": self.num_windows,
                "progress_ratio": self.progress_ratio,
                "rows_rebuilt": self.rows_rebuilt,
                "elements_rebuilt": self.elements_rebuilt,
                "bytes_repaired": self.bytes_repaired,
                "bytes_staged": self.bytes_staged,
                "write_intents": self.write_intents,
                "parked_windows": self.parked_windows,
                "parked_events": self.parked_events,
                "spare_down_events": self.spare_down_events,
                "retry_rounds": self.retry_rounds,
                "resumes": self.resumes,
                "cache_invalidations": self.cache_invalidations,
                "complete": int(self.complete),
            }
        }


def resume_disk_rebuild(
    store,
    journal: MigrationJournal | str | Path,
    *,
    cache=None,
    throttle: RepairThrottle | None = None,
    tracer: Tracer | None = None,
    registry=None,
    crash_after: str | None = None,
    crash_at_window: int = 0,
) -> DiskRebuild:
    """Recover a crashed disk rebuild from its journal.

    Trusts committed windows, replays the pending staged window (if any)
    *before* returning — so no caller can observe a half-reconstructed
    window as the executor's responsibility — and returns a
    :class:`DiskRebuild` ready to :meth:`~DiskRebuild.step` /
    :meth:`~DiskRebuild.run` the remaining schedule.  Also re-binds the
    spare if the crash left the disk failed (a crash *between*
    confirmation and binding).
    """
    journal = (
        journal if isinstance(journal, MigrationJournal) else MigrationJournal(journal)
    )
    state = journal.load()
    if not state.started:
        raise RecoveryError(f"journal {journal.path} has no plan record")
    ctx = state.context
    if ctx.get("kind") != JOURNAL_KIND:
        raise RecoveryError(
            f"journal {journal.path} is a {ctx.get('kind', 'migration')!r} "
            f"journal, not {JOURNAL_KIND!r}"
        )
    if store.element_size != ctx["element_size"]:
        raise RecoveryError(
            f"store element size {store.element_size} does not match the "
            f"journal's {ctx['element_size']}"
        )
    if store.rows_written < ctx["rows"]:
        raise RecoveryError(
            f"store has {store.rows_written} rows, journal planned {ctx['rows']}"
        )
    failed_disk = int(ctx["failed_disk"])
    if store.array[failed_disk].failed:
        store.array[failed_disk].restore(wipe=True)
    rb = DiskRebuild(
        store,
        failed_disk,
        journal=journal,
        cache=cache,
        throttle=throttle,
        unit_rows=int(ctx["unit_rows"]),
        tracer=tracer,
        registry=registry,
        crash_after=crash_after,
        crash_at_window=crash_at_window,
        _resume_committed=set(state.committed),
        _resume_order=[int(w) for w in ctx["order"]],
        _resume_rows=int(ctx["rows"]),
        _resume_staged=str(ctx.get("staged", "row-data")),
    )
    if rb.num_windows != ctx["windows"]:
        raise RecoveryError(
            "rebuilt schedule geometry disagrees with the journal's plan record"
        )
    rb.resumes += 1
    if cache is not None:
        # entries for windows whose commit landed but whose invalidation
        # did not must go; resume is rare, sweep the whole planned range.
        rb.cache_invalidations += cache.invalidate_elements(
            0, ctx["rows"] * store.code.k, placement=store.placement
        )
    if state.pending is not None:
        rb._replay_pending(state.pending)
    return rb


class RecoveryOrchestrator:
    """Autonomous supervisor: detect failures, bind spares, rebuild online.

    Parameters
    ----------
    store:
        The live store whose array is supervised.
    journal_dir:
        Directory for rebuild WALs (one journal per rebuild attempt).
    spares:
        :class:`SparePool` or an int inventory size (default 1).
    detector:
        :class:`FailureDetector` to drive; built over the store's array
        (with ``detector_config``) when omitted.
    throttle:
        Shared :class:`RepairThrottle` for every rebuild (default: a
        fresh one with stock knobs).
    cache / tracer / registry:
        Passed to each :class:`DiskRebuild`; registry also receives the
        ``recovery`` namespace collector and the foreground-impact
        histogram.
    unit_rows / heat / steps_per_tick:
        Rebuild granularity, heal-priority map, and how many throttled
        rebuild quanta one :meth:`tick` runs.
    """

    def __init__(
        self,
        store,
        *,
        journal_dir: str | Path,
        spares: SparePool | int = 1,
        detector: FailureDetector | None = None,
        detector_config: DetectorConfig | None = None,
        straggler=None,
        throttle: RepairThrottle | None = None,
        cache=None,
        tracer: Tracer | None = None,
        registry=None,
        unit_rows: int = 4,
        heat: dict[int, float] | None = None,
        steps_per_tick: int = 1,
    ) -> None:
        if steps_per_tick < 1:
            raise ValueError(f"steps_per_tick must be >= 1, got {steps_per_tick}")
        self.store = store
        self.journal_dir = Path(journal_dir)
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.spares = spares if isinstance(spares, SparePool) else SparePool(spares)
        self.detector = detector or FailureDetector(
            store.array, straggler=straggler, config=detector_config
        )
        self.throttle = throttle if throttle is not None else RepairThrottle()
        self.cache = cache
        self.tracer = tracer if tracer is not None else getattr(store, "tracer", NULL_TRACER)
        self.registry = registry if registry is not None else getattr(store, "registry", None)
        self.unit_rows = unit_rows
        self.heat = heat
        self.steps_per_tick = steps_per_tick

        self.active: DiskRebuild | None = None
        self._active_disk: int | None = None
        self._active_journal: Path | None = None
        self._queue: list[int] = []
        self._journal_seq = 0

        self.ticks = 0
        self.rebuilds_started = 0
        self.rebuilds_completed = 0
        self.rebuilds_abandoned = 0
        self.spare_waits = 0
        self.data_loss_events = 0
        self._impact_hist = None
        if self.registry is not None:
            self.registry.register_collector("recovery", self.stats_snapshot)
            self.detector.register_metrics(self.registry)
            self._impact_hist = self.registry.histogram(
                "recovery.foreground_impact_ratio"
            )

    # ------------------------------------------------------------------
    @property
    def rebuilding_disk(self) -> int | None:
        """Disk currently under rebuild, or None when idle."""
        return self._active_disk

    @property
    def queued_disks(self) -> list[int]:
        """Confirmed failures awaiting a rebuild slot or a spare."""
        return list(self._queue)

    @property
    def idle(self) -> bool:
        """True when nothing is rebuilding, queued, or pending confirmation."""
        return (
            self.active is None
            and not self._queue
            and not self.detector.pending_failures()
        )

    # ------------------------------------------------------------------
    # the supervision loop
    # ------------------------------------------------------------------
    def tick(self) -> bool:
        """One supervision heartbeat; returns True while work remains.

        Polls the detector, enqueues newly confirmed failures, starts the
        next rebuild when idle (skipping it gracefully while the spare
        pool is dry), and runs ``steps_per_tick`` throttled rebuild
        quanta.  :class:`DataLossError` from a stuck rebuild propagates
        after being counted — losing data silently is not an option.
        """
        self.ticks += 1
        for disk in self.detector.poll():
            if disk != self._active_disk and disk not in self._queue:
                self._queue.append(disk)
        if self.active is None and self._queue:
            self._start_next()
        if self.active is not None:
            for _ in range(self.steps_per_tick):
                try:
                    more = self.active.step()
                except SpareFailedError:
                    # the bound spare died mid-rebuild: abandon, re-queue
                    # the disk, and let the next tick bind a fresh spare
                    # (or stay degraded-but-live if the pool is dry)
                    self._abandon_active()
                    break
                except DataLossError:
                    self.data_loss_events += 1
                    raise
                if not more:
                    self._finish_active()
                    break
        return not self.idle

    def run_until_idle(self, max_ticks: int = 10_000) -> int:
        """Tick until the plane is idle; returns ticks taken.

        Stops early (without raising) if the only remaining work is
        queued disks with no spare to bind — the system stays degraded
        but live, which is the contract.
        """
        ticks = 0
        while ticks < max_ticks:
            ticks += 1
            if not self.tick():
                return ticks
            if (
                self.active is None
                and self._queue
                and self.spares.available <= 0
            ):
                return ticks  # degraded steady-state: out of spares
        raise RecoveryError(
            f"recovery plane still busy after {max_ticks} ticks "
            f"(active={self._active_disk}, queue={self._queue})"
        )

    def _start_next(self) -> None:
        disk = self._queue[0]
        if not self.store.array[disk].failed:
            # restored out from under us after confirmation (flap past
            # the damping window): contents are intact, no rebuild needed
            self._queue.pop(0)
            self.detector.mark_healthy(disk)
            return
        try:
            self.spares.bind(disk)
        except SpareExhaustedError:
            self.spare_waits += 1
            return  # stay degraded; retried every tick
        self._journal_seq += 1
        journal_path = self.journal_dir / f"rebuild-d{disk}-{self._journal_seq}.wal"
        self.active = DiskRebuild(
            self.store,
            disk,
            journal=journal_path,
            cache=self.cache,
            throttle=self.throttle,
            unit_rows=self.unit_rows,
            heat=self.heat,
            tracer=self.tracer,
            registry=self.registry,
        )
        self._active_disk = disk
        self._active_journal = journal_path
        self._queue.pop(0)
        self.detector.mark_rebuilding(disk)
        self.rebuilds_started += 1
        if self.active.complete:  # empty store: nothing to rebuild
            self._finish_active()

    def _finish_active(self) -> None:
        assert self._active_disk is not None and self.active is not None
        disk = self._active_disk
        if self.store.array[disk].failed or self.active.write_intents > 0:
            # every window committed, but the disk is not actually whole:
            # the spare died (or dropped writes) in a gap the executor's
            # own checks could not see.  Declaring this disk healthy
            # would silently leave redundancy unrestored.
            self._abandon_active()
            return
        # the spare is now permanently installed as the disk: unbind it
        # without refunding the shelf, so a later failure of the same bay
        # can bind a fresh spare instead of tripping over a stale binding
        self.spares.complete(disk)
        self.detector.mark_healthy(disk)
        self.rebuilds_completed += 1
        self.active = None
        self._active_disk = None
        self._active_journal = None

    def _abandon_active(self) -> None:
        """Give up on the in-flight rebuild: its bound spare is dead.

        The dead spare stays consumed (:meth:`SparePool.complete` — the
        drive is gone either way), the detector returns the disk to
        ``failed``, and the disk re-queues at the front so the next tick
        retries with a fresh spare; with the pool dry the system stays
        degraded-but-live, which is the contract.  The abandoned WAL is
        left behind — the next attempt opens a new journal sequence.
        """
        assert self._active_disk is not None
        disk = self._active_disk
        self.spares.complete(disk)
        self.detector.mark_failed(disk)
        self._queue.insert(0, disk)
        self.rebuilds_abandoned += 1
        self.active = None
        self._active_disk = None
        self._active_journal = None

    def resume_active(self) -> DiskRebuild:
        """Recover the in-flight rebuild after a :class:`RecoveryCrash`.

        Re-opens the active journal through :func:`resume_disk_rebuild`
        (replaying the pending window) and re-installs the executor, so
        the next :meth:`tick` continues where the crash hit.
        """
        if self._active_journal is None or self._active_disk is None:
            raise RecoveryError("no crashed rebuild to resume")
        self.active = resume_disk_rebuild(
            self.store,
            self._active_journal,
            cache=self.cache,
            throttle=self.throttle,
            tracer=self.tracer,
            registry=self.registry,
        )
        return self.active

    # ------------------------------------------------------------------
    # repair QoS feedback
    # ------------------------------------------------------------------
    def observe_foreground(self, p99_s: float, clean_p99_s: float) -> float:
        """Report a foreground-tail sample into the throttle's AIMD loop.

        Returns the observed p99 ratio; also lands in the
        ``recovery.foreground_impact_ratio`` histogram.
        """
        ratio = self.throttle.observe_foreground(p99_s, clean_p99_s)
        if self._impact_hist is not None:
            self._impact_hist.observe(ratio)
        return ratio

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """The orchestrator's share of the ``recovery.*`` namespace."""
        out = {
            "ticks": self.ticks,
            "rebuilds_started": self.rebuilds_started,
            "rebuilds_completed": self.rebuilds_completed,
            "rebuilds_abandoned": self.rebuilds_abandoned,
            "spare_waits": self.spare_waits,
            "data_loss_events": self.data_loss_events,
            "rebuilding_disk": self._active_disk,
            "queued_disks": list(self._queue),
            "spares": self.spares.stats_snapshot(),
            "throttle": self.throttle.stats_snapshot(),
        }
        if self.active is not None:
            out.update(self.active.stats_snapshot())
        return out
