"""Hot-spare inventory for the recovery orchestrator.

A confirmed disk failure needs a replacement drive before rebuild can
start.  :class:`SparePool` models the datacenter-side inventory: a fixed
stock of identical spares, consumed one per rebuild.  In the simulator
the physical "swap" is :meth:`SimDisk.restore(wipe=True) <repro.disks.
disk.SimDisk.restore>` — the failed spindle's bay comes back alive and
empty — so the pool only tracks *entitlement*: whether a spare is
available to bind, which failed disk consumed which spare, and how often
the pool ran dry.  Running dry is not an error state for the system —
the store keeps serving degraded reads indefinitely — but the orchestrator
surfaces it loudly (``spare_waits`` metric, :class:`SpareExhaustedError`
at bind time) because a pool at zero means the *next* failure starts
eating into the code's erasure budget.
"""

from __future__ import annotations

__all__ = ["SpareExhaustedError", "SparePool"]


class SpareExhaustedError(RuntimeError):
    """No spare left to bind; the disk stays failed (degraded reads only)."""


class SparePool:
    """A finite stock of hot spares.

    Parameters
    ----------
    count:
        Initial spare inventory (>= 0; a zero pool makes every failure a
        spare-exhaustion scenario).
    """

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"spare count must be >= 0, got {count}")
        self.total = count
        self._next_id = 0
        #: failed disk id -> spare id currently bound to it.
        self.bound: dict[int, int] = {}
        self.consumed = 0
        self.exhausted_binds = 0
        self.restocked = 0

    @property
    def available(self) -> int:
        """Spares still on the shelf."""
        return self.total - self.consumed

    def bind(self, disk: int) -> int:
        """Consume one spare for ``disk``; returns the spare's id.

        Raises
        ------
        SpareExhaustedError
            If the pool is empty.  The caller leaves the disk degraded
            and may retry after :meth:`restock`.
        ValueError
            If ``disk`` already holds a bound spare.
        """
        if disk in self.bound:
            raise ValueError(f"disk {disk} already has spare {self.bound[disk]} bound")
        if self.available <= 0:
            self.exhausted_binds += 1
            raise SpareExhaustedError(
                f"no spare available for disk {disk} "
                f"({self.consumed}/{self.total} consumed)"
            )
        spare_id = self._next_id
        self._next_id += 1
        self.consumed += 1
        self.bound[disk] = spare_id
        return spare_id

    def complete(self, disk: int) -> None:
        """Unbind ``disk``'s spare without refunding it.

        The terminal unbind for both rebuild outcomes: a *finished*
        rebuild permanently installs the spare as the disk (the shelf
        stays one lighter), and an *abandoned* rebuild whose bound spare
        itself died consumed the drive just as surely.  Either way the
        binding must go, or the same bay failing again later could never
        :meth:`bind` a fresh spare.
        """
        if disk not in self.bound:
            raise ValueError(f"disk {disk} has no bound spare")
        del self.bound[disk]

    def release(self, disk: int) -> None:
        """Return ``disk``'s spare to the shelf (rebuild cancelled with
        the spare still good — e.g. the original disk restored intact
        before any reconstruction I/O was spent)."""
        if disk not in self.bound:
            raise ValueError(f"disk {disk} has no bound spare")
        del self.bound[disk]
        self.consumed -= 1

    def restock(self, count: int) -> None:
        """Add ``count`` fresh spares to the inventory."""
        if count < 0:
            raise ValueError(f"restock count must be >= 0, got {count}")
        self.total += count
        self.restocked += count

    def stats_snapshot(self) -> dict:
        """Plain-dict view for the ``recovery.spares.*`` namespace."""
        return {
            "total": self.total,
            "available": self.available,
            "consumed": self.consumed,
            "bound": {str(d): s for d, s in sorted(self.bound.items())},
            "exhausted_binds": self.exhausted_binds,
            "restocked": self.restocked,
        }
