"""Repair QoS: token-bucket budget with AIMD foreground protection.

Rebuild I/O competes with foreground reads for the same spindles
(Rashmi et al., PAPERS.md: recovery traffic is a first-order tenant of
the cluster, not an offline batch job).  :class:`RepairThrottle` bounds
that competition two ways:

* a **token bucket** over physical element operations — each repair
  quantum deposits ``budget_per_step`` tokens and a rebuild window only
  runs once the bucket covers its cost (the same discipline the
  migration mover uses, so repair and migration are throttled in the
  same currency);
* an **AIMD controller** keyed to the foreground tail — the caller
  periodically reports the foreground p99 against the clean baseline
  (:meth:`observe_foreground`); when the ratio exceeds ``target_ratio``
  the budget is cut multiplicatively (back off hard, immediately), and
  while it stays under, the budget recovers additively (probe gently).
  That is TCP's congestion story applied to repair bandwidth, and it is
  what turns the graceful-degradation contract — foreground p99 ≤
  ``target_ratio`` × clean while rebuilding — from an aspiration into a
  control loop.
"""

from __future__ import annotations

__all__ = ["RepairThrottle"]


class RepairThrottle:
    """Token bucket + AIMD budget controller for repair I/O.

    Parameters
    ----------
    budget_per_step:
        Initial token deposit per repair quantum, in physical element
        operations.
    min_budget / max_budget:
        AIMD clamp.  ``min_budget`` keeps rebuild from stalling forever
        (starving repair trades a bounded slowdown now for a second
        failure window later); ``max_budget`` bounds the burst.
    target_ratio:
        Foreground p99 / clean-baseline p99 above which the controller
        backs off.  The default 1.5 is the repo's rebuild QoS contract.
    increase:
        Additive budget recovery per under-target observation.
    decrease:
        Multiplicative factor applied per over-target observation.
    """

    def __init__(
        self,
        budget_per_step: int = 64,
        *,
        min_budget: int = 8,
        max_budget: int = 4096,
        target_ratio: float = 1.5,
        increase: int = 8,
        decrease: float = 0.5,
    ) -> None:
        if budget_per_step <= 0:
            raise ValueError(f"budget_per_step must be > 0, got {budget_per_step}")
        if not 0 < min_budget <= max_budget:
            raise ValueError(
                f"need 0 < min_budget <= max_budget, got {min_budget}/{max_budget}"
            )
        if not min_budget <= budget_per_step <= max_budget:
            raise ValueError(
                f"budget_per_step {budget_per_step} outside "
                f"[{min_budget}, {max_budget}]"
            )
        if target_ratio <= 1.0:
            raise ValueError(f"target_ratio must be > 1, got {target_ratio}")
        if increase <= 0:
            raise ValueError(f"increase must be > 0, got {increase}")
        if not 0.0 < decrease < 1.0:
            raise ValueError(f"decrease must be in (0, 1), got {decrease}")
        self.budget_per_step = budget_per_step
        self.min_budget = min_budget
        self.max_budget = max_budget
        self.target_ratio = target_ratio
        self.increase = increase
        self.decrease = decrease
        self._tokens = 0
        self.spent = 0
        self.stalls = 0
        self.backoffs = 0
        self.recoveries = 0
        self.last_ratio: float | None = None

    # ------------------------------------------------------------------
    # token bucket
    # ------------------------------------------------------------------
    def refill(self) -> None:
        """Deposit one quantum's tokens (capped at one max-budget burst)."""
        self._tokens = min(self._tokens + self.budget_per_step, self.max_budget)

    def spend(self, cost: int) -> bool:
        """Try to pay ``cost`` tokens; False (and a stall) if short."""
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        if self._tokens < cost:
            self.stalls += 1
            return False
        self._tokens -= cost
        self.spent += cost
        return True

    # ------------------------------------------------------------------
    # AIMD controller
    # ------------------------------------------------------------------
    def observe_foreground(self, p99_s: float, clean_p99_s: float) -> float:
        """Fold one foreground-tail observation into the budget.

        Returns the observed ratio.  A non-positive baseline is ignored
        (ratio 1.0): no baseline, no adjustment.
        """
        if clean_p99_s <= 0.0 or p99_s < 0.0:
            return 1.0
        ratio = p99_s / clean_p99_s
        self.last_ratio = ratio
        if ratio > self.target_ratio:
            self.budget_per_step = max(
                self.min_budget, int(self.budget_per_step * self.decrease)
            )
            self.backoffs += 1
        else:
            self.budget_per_step = min(
                self.max_budget, self.budget_per_step + self.increase
            )
            self.recoveries += 1
        return ratio

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """Plain-dict view for the ``recovery.throttle.*`` namespace."""
        return {
            "budget_per_step": self.budget_per_step,
            "tokens": self._tokens,
            "spent": self.spent,
            "stalls": self.stalls,
            "backoffs": self.backoffs,
            "recoveries": self.recoveries,
            "target_ratio": self.target_ratio,
            "last_ratio": self.last_ratio,
        }
