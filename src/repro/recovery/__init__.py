"""Recovery: single-failure repair planning and the online recovery plane.

* :mod:`repro.recovery.single` — minimum-I/O single-disk rebuild plans
  for XOR array codes, reproducing the hybrid row/diagonal recovery of
  Xiang et al. (SIGMETRICS'10) that the paper cites (§II-D's second
  metric, as an offline calculation);
* :mod:`repro.recovery.detector` — the failure detector: per-disk state
  machine ``healthy -> suspected -> failed -> rebuilding -> healthy``
  with flap damping and soft-suspicion decay;
* :mod:`repro.recovery.spares` — hot-spare inventory;
* :mod:`repro.recovery.throttle` — repair QoS: token-bucket budget with
  AIMD foreground-tail protection;
* :mod:`repro.recovery.orchestrator` — the autonomous loop: confirmed
  failure -> bind spare -> crash-safe windowed online rebuild (WAL
  stage/reconstruct/commit, resumable) -> redundancy restored.
"""

from .detector import DetectorConfig, DiskState, FailureDetector
from .orchestrator import (
    REBUILD_CRASH_POINTS,
    DataLossError,
    DiskRebuild,
    RecoveryCrash,
    RecoveryError,
    RecoveryOrchestrator,
    SpareFailedError,
    resume_disk_rebuild,
)
from .single import (
    RecoveryPlan,
    conventional_recovery_plan,
    greedy_recovery_plan,
    optimal_recovery_plan,
    recovery_equations,
)
from .spares import SpareExhaustedError, SparePool
from .throttle import RepairThrottle

__all__ = [
    "RecoveryPlan",
    "recovery_equations",
    "conventional_recovery_plan",
    "optimal_recovery_plan",
    "greedy_recovery_plan",
    "DiskState",
    "DetectorConfig",
    "FailureDetector",
    "SparePool",
    "SpareExhaustedError",
    "RepairThrottle",
    "REBUILD_CRASH_POINTS",
    "RecoveryCrash",
    "RecoveryError",
    "SpareFailedError",
    "DataLossError",
    "DiskRebuild",
    "resume_disk_rebuild",
    "RecoveryOrchestrator",
]
