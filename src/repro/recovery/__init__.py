"""Single-failure recovery optimization (paper §II-D's second metric).

* :mod:`repro.recovery.single` — minimum-I/O single-disk rebuild plans
  for XOR array codes, reproducing the hybrid row/diagonal recovery of
  Xiang et al. (SIGMETRICS'10) that the paper cites.
"""

from .single import (
    RecoveryPlan,
    conventional_recovery_plan,
    greedy_recovery_plan,
    optimal_recovery_plan,
    recovery_equations,
)

__all__ = [
    "RecoveryPlan",
    "recovery_equations",
    "conventional_recovery_plan",
    "optimal_recovery_plan",
    "greedy_recovery_plan",
]
