"""Failure detection: turn raw fault signals into rebuild decisions.

The simulator's fault signals already exist — crashed disks
(:attr:`SimDisk.failed`), silent slowdowns (:meth:`DiskArray.slowdowns`
and the EWMA :class:`~repro.faults.stragglers.StragglerDetector`), and
read-side integrity demotions (CRC mismatches, unreadable slots).  What
is missing is *judgement*: a transient outage (``FaultKind.
TRANSIENT_OUTAGE``) looks exactly like a crash for a few operations, and
kicking off a full disk rebuild for every controller reset would turn
the repair plane into its own denial-of-service.  :class:`FailureDetector`
adds that judgement as a per-disk state machine::

    healthy ──suspect──> suspected ──confirm──> failed ──spare──> rebuilding
       ^                     │                                        │
       └──────flap/decay─────┘<────────────────── healthy <───────────┘

* a disk observed down moves to ``suspected`` immediately and is only
  *confirmed* failed after ``confirm_after`` consecutive down polls —
  flap damping: outages shorter than the confirmation window bounce back
  to ``healthy`` (counted in :attr:`flaps`) and never trigger a rebuild;
* soft signals (checksum/latent-error demotions via :meth:`record_error`,
  straggler flags, slowdown factors) suspect a *live* disk without ever
  confirming it — suspicion decays after ``decay_after`` clean polls, and
  the orchestrator surfaces suspects through :meth:`wants_scrub` so a
  targeted scrub can settle the question;
* ``failed -> rebuilding -> healthy`` transitions are driven explicitly
  by the recovery orchestrator (:meth:`mark_rebuilding` /
  :meth:`mark_healthy`) — the detector never guesses about a disk the
  repair plane owns.

Every transition is counted; :meth:`stats_snapshot` feeds the
``recovery`` metrics namespace.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..disks.array import DiskArray

__all__ = ["DiskState", "DetectorConfig", "FailureDetector"]


class DiskState(Enum):
    """Per-disk health states of the detector's state machine."""

    HEALTHY = "healthy"
    SUSPECTED = "suspected"
    FAILED = "failed"
    REBUILDING = "rebuilding"


@dataclass(frozen=True)
class DetectorConfig:
    """Suspicion thresholds and damping knobs.

    Attributes
    ----------
    confirm_after:
        Consecutive down polls before a suspected disk is *confirmed*
        failed.  ``1`` confirms on first sight (no flap damping);
        the default ``2`` absorbs one-poll blips.
    error_threshold:
        Soft integrity errors (:meth:`FailureDetector.record_error`)
        before a live disk is suspected.
    slowdown_threshold:
        Service-time multiplier (:meth:`DiskArray.slowdowns`) at or above
        which a live disk is suspected.
    decay_after:
        Consecutive clean polls before a soft suspicion clears and the
        disk's error count resets.
    """

    confirm_after: int = 2
    error_threshold: int = 3
    slowdown_threshold: float = 2.0
    decay_after: int = 4

    def __post_init__(self) -> None:
        if self.confirm_after < 1:
            raise ValueError(f"confirm_after must be >= 1, got {self.confirm_after}")
        if self.error_threshold < 1:
            raise ValueError(
                f"error_threshold must be >= 1, got {self.error_threshold}"
            )
        if self.slowdown_threshold <= 1.0:
            raise ValueError(
                f"slowdown_threshold must be > 1, got {self.slowdown_threshold}"
            )
        if self.decay_after < 1:
            raise ValueError(f"decay_after must be >= 1, got {self.decay_after}")


class FailureDetector:
    """Health monitor over one :class:`DiskArray`.

    Parameters
    ----------
    array:
        The monitored array.
    straggler:
        Optional :class:`~repro.faults.stragglers.StragglerDetector`
        whose flags feed soft suspicion (the pipeline already maintains
        one for hedging; sharing it costs nothing).
    config:
        Thresholds; defaults to :class:`DetectorConfig()`.
    registry:
        Optional metrics registry; when given, the detector publishes
        itself into the ``recovery`` namespace.
    """

    def __init__(
        self,
        array: DiskArray,
        *,
        straggler=None,
        config: DetectorConfig | None = None,
        registry=None,
    ) -> None:
        self.array = array
        self.straggler = straggler
        self.config = config or DetectorConfig()
        self._state: dict[int, DiskState] = {
            d: DiskState.HEALTHY for d in range(len(array))
        }
        self._down_streak: dict[int, int] = {d: 0 for d in range(len(array))}
        self._clean_streak: dict[int, int] = {d: 0 for d in range(len(array))}
        self._errors: dict[int, int] = {d: 0 for d in range(len(array))}
        #: error count as of the previous poll — a poll only counts as
        #: dirty when *new* errors arrived, so suspicion can decay.
        self._last_errors: dict[int, int] = {d: 0 for d in range(len(array))}
        self.polls = 0
        self.flaps = 0
        self.errors_recorded = 0
        self.transitions: dict[str, int] = {}
        if registry is not None:
            self.register_metrics(registry)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def register_metrics(self, registry) -> "FailureDetector":
        """Publish detector state into the ``recovery`` namespace."""
        registry.register_collector("recovery", self.stats_snapshot)
        return self

    def stats_snapshot(self) -> dict:
        """Nested-dict view for the ``recovery.detector.*`` namespace."""
        return {
            "detector": {
                "polls": self.polls,
                "flaps": self.flaps,
                "errors_recorded": self.errors_recorded,
                "states": {
                    str(d): s.value for d, s in sorted(self._state.items())
                },
                "transitions": dict(sorted(self.transitions.items())),
            }
        }

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def state(self, disk: int) -> DiskState:
        """Current state of ``disk``."""
        return self._state[disk]

    def states(self) -> dict[int, DiskState]:
        """All per-disk states (copy)."""
        return dict(self._state)

    def _transition(self, disk: int, to: DiskState) -> None:
        frm = self._state[disk]
        if frm is to:
            return
        self._state[disk] = to
        key = f"{frm.value}->{to.value}"
        self.transitions[key] = self.transitions.get(key, 0) + 1

    def record_error(self, disk: int, reason: str) -> None:
        """Feed one soft integrity signal (``"corrupt"`` / ``"latent"``).

        The store's read path detects these; the caller (orchestrator or
        service glue) forwards them here.  Errors alone never confirm a
        failure — they suspect the disk until a scrub or ``decay_after``
        clean polls settle it.
        """
        if not 0 <= disk < len(self.array):
            return
        self._errors[disk] += 1
        self.errors_recorded += 1

    def poll(self) -> list[int]:
        """Sample every signal once; returns newly *confirmed* failures.

        One poll = one detector heartbeat.  Confirmed disks transition to
        :attr:`DiskState.FAILED` exactly once and are returned exactly
        once; the orchestrator takes it from there.
        """
        self.polls += 1
        cfg = self.config
        slowdowns = self.array.slowdowns()
        confirmed: list[int] = []
        for d in range(len(self.array)):
            st = self._state[d]
            if st is DiskState.REBUILDING:
                continue  # the repair plane owns this disk
            if self.array[d].failed:
                self._clean_streak[d] = 0
                self._down_streak[d] += 1
                if st is DiskState.HEALTHY:
                    self._transition(d, DiskState.SUSPECTED)
                    st = DiskState.SUSPECTED
                if (
                    st is DiskState.SUSPECTED
                    and self._down_streak[d] >= cfg.confirm_after
                ):
                    self._transition(d, DiskState.FAILED)
                    confirmed.append(d)
                continue
            # disk is up
            if self._down_streak[d] > 0:
                # came back before confirmation: a flap, not a failure
                self._down_streak[d] = 0
                if st is DiskState.SUSPECTED:
                    self.flaps += 1
                    self._transition(d, DiskState.HEALTHY)
                    st = DiskState.HEALTHY
                elif st is DiskState.FAILED:
                    # restored out from under us (scripted RESTORE after
                    # confirmation); treat as healed, no rebuild needed
                    self.flaps += 1
                    self._transition(d, DiskState.HEALTHY)
                    st = DiskState.HEALTHY
            fresh_errors = self._errors[d] > self._last_errors[d]
            self._last_errors[d] = self._errors[d]
            suspect = (
                (fresh_errors and self._errors[d] >= cfg.error_threshold)
                or slowdowns.get(d, 1.0) >= cfg.slowdown_threshold
                or (self.straggler is not None and self.straggler.is_straggling(d))
            )
            if suspect:
                self._clean_streak[d] = 0
                if st is DiskState.HEALTHY:
                    self._transition(d, DiskState.SUSPECTED)
            elif st is DiskState.SUSPECTED:
                self._clean_streak[d] += 1
                if self._clean_streak[d] >= cfg.decay_after:
                    self._errors[d] = 0
                    self._last_errors[d] = 0
                    self._transition(d, DiskState.HEALTHY)
        return confirmed

    def pending_failures(self) -> list[int]:
        """Disks observed down but not yet handed to the repair plane.

        Suspected-down disks (awaiting confirmation) plus confirmed
        failures; the orchestrator must keep ticking while any exist.
        """
        return sorted(
            d
            for d, s in self._state.items()
            if s is DiskState.FAILED
            or (s is DiskState.SUSPECTED and self._down_streak[d] > 0)
        )

    def wants_scrub(self) -> list[int]:
        """Live disks currently under soft suspicion, ascending.

        The orchestrator points incremental scrubs here: a clean scrub
        plus ``decay_after`` clean polls returns the disk to healthy, a
        dirty one feeds :meth:`record_error` until confirmation.
        """
        return sorted(
            d
            for d, s in self._state.items()
            if s is DiskState.SUSPECTED and not self.array[d].failed
        )

    # ------------------------------------------------------------------
    # orchestrator hooks
    # ------------------------------------------------------------------
    def mark_rebuilding(self, disk: int) -> None:
        """The orchestrator bound a spare and started rebuilding ``disk``."""
        if self._state[disk] is not DiskState.FAILED:
            raise ValueError(
                f"disk {disk} is {self._state[disk].value}, not failed; "
                "cannot start a rebuild"
            )
        self._transition(disk, DiskState.REBUILDING)

    def mark_failed(self, disk: int) -> None:
        """The orchestrator abandoned the disk's rebuild: the bound spare
        died mid-rebuild, so the bay is back to a confirmed failure
        awaiting a fresh spare.  Seeding the down-streak at the
        confirmation threshold keeps :meth:`pending_failures` and the
        restored-out-from-under-us branch of :meth:`poll` consistent with
        a disk that really has been observed down."""
        if self._state[disk] is not DiskState.REBUILDING:
            raise ValueError(
                f"disk {disk} is {self._state[disk].value}, not rebuilding; "
                "cannot fail its rebuild"
            )
        self._down_streak[disk] = self.config.confirm_after
        self._clean_streak[disk] = 0
        self._transition(disk, DiskState.FAILED)

    def mark_healthy(self, disk: int) -> None:
        """The orchestrator finished (or abandoned) the disk's rebuild."""
        self._down_streak[disk] = 0
        self._clean_streak[disk] = 0
        self._errors[disk] = 0
        self._last_errors[disk] = 0
        self._transition(disk, DiskState.HEALTHY)
