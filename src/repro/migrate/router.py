"""Dual-layout read routing during an online migration.

While a volume migrates, some candidate rows already live at their target
addresses and the rest still sit in the source layout.
:class:`MigrationRouter` is a real :class:`~repro.layout.base.Placement`
that forwards each ``(row, element)`` lookup to the owning side, so every
consumer of the placement interface — the normal and degraded planners,
the plan cache, the scrubber, disk rebuild, flush of new rows — resolves
an element's *current* physical address without knowing a migration is in
flight.

The forwarding table is per-window (the mover's atomic commit unit, see
:mod:`repro.migrate.plan`): a window is either fully source- or fully
target-routed, never split, so every routed row satisfies the Lemma-1
one-element-per-disk invariant of whichever placement serves it.  Once
the migration completes, rows beyond the planned range also route to the
target — the volume then behaves exactly like one created natively in
the target form, new appends included.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..layout.base import Address, Placement

__all__ = ["MigrationError", "RouterCounters", "MigrationRouter"]


class MigrationError(RuntimeError):
    """The migration cannot proceed (invariant violation, bad state)."""


@dataclass
class RouterCounters:
    """Forwarding statistics: where lookups were routed.

    Lookups happen at plan-build time, so cached plans do not re-count;
    the numbers measure routing *decisions*, not element fetches.
    """

    routed_source: int = 0
    routed_target: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view for metrics export."""
        return {
            "routed_source": self.routed_source,
            "routed_target": self.routed_target,
        }


class MigrationRouter(Placement):
    """Placement that forwards lookups between a source and target layout.

    Parameters
    ----------
    source / target:
        Placements built for the same code instance.
    unit_rows:
        Rows per migration window (from the :class:`MigrationPlan`).
    planned_rows:
        Rows covered by the migration schedule.  Rows beyond it keep the
        source form until the migration completes, after which they route
        to the target (fresh windows are empty under either layout, so
        new appends land natively in the target form).
    """

    name = "migrating"

    def __init__(
        self,
        source: Placement,
        target: Placement,
        *,
        unit_rows: int,
        planned_rows: int,
    ) -> None:
        if source.code is not target.code:
            raise ValueError("source and target placements must share one code")
        if unit_rows <= 0:
            raise ValueError(f"unit_rows must be > 0, got {unit_rows}")
        if planned_rows < 0:
            raise ValueError(f"planned_rows must be >= 0, got {planned_rows}")
        super().__init__(source.code)
        self.source = source
        self.target = target
        self.unit_rows = unit_rows
        self.planned_rows = planned_rows
        self.planned_windows = -(-planned_rows // unit_rows) if planned_rows else 0
        self.counters = RouterCounters()
        self._migrated: set[int] = set()
        # The name feeds placement_signature(), the plan-cache key: it must
        # stay *stable* across the whole migration — entries are instead
        # dropped per committed window by the mover, through the cache's
        # element-range invalidation.
        self.name = f"migrating({source.name}->{target.name})"

    # ------------------------------------------------------------------
    # forwarding state
    # ------------------------------------------------------------------
    @property
    def migrated_windows(self) -> frozenset[int]:
        """Windows already committed to the target layout."""
        return frozenset(self._migrated)

    @property
    def windows_done(self) -> int:
        """Committed window count."""
        return len(self._migrated)

    @property
    def complete(self) -> bool:
        """True once every planned window routes to the target."""
        return len(self._migrated) >= self.planned_windows

    @property
    def progress_ratio(self) -> float:
        """Committed fraction of the planned schedule (1.0 when empty)."""
        if self.planned_windows == 0:
            return 1.0
        return len(self._migrated) / self.planned_windows

    def window_of_row(self, row: int) -> int:
        """Window that owns candidate ``row``."""
        if row < 0:
            raise ValueError(f"row must be >= 0, got {row}")
        return row // self.unit_rows

    def mark_migrated(self, window: int) -> None:
        """Commit ``window`` to the target side (idempotent)."""
        if not 0 <= window < self.planned_windows:
            raise ValueError(
                f"window {window} out of range [0, {self.planned_windows})"
            )
        self._migrated.add(window)

    def routes_to_target(self, row: int) -> bool:
        """True if candidate ``row`` currently resolves to target addresses.

        Rows beyond the planned range cannot exist while the migration is
        active: the plan covers every row flushed at start time, and new
        appends are frozen until completion — an appended row's target
        addresses could land inside a slot band still holding un-migrated
        source data.  Such lookups raise :class:`MigrationError`.  After
        completion they resolve to the target, so fresh appends land
        natively in the target form.
        """
        window = self.window_of_row(row)
        if window in self._migrated:
            return True
        if row >= self.planned_rows:
            if self.complete:
                return True
            raise MigrationError(
                f"row {row} is beyond the migration plan ({self.planned_rows} "
                "rows); appends are frozen while a migration is active"
            )
        return False

    # ------------------------------------------------------------------
    # placement interface
    # ------------------------------------------------------------------
    def locate_row_element(self, row: int, element: int) -> Address:
        if self.routes_to_target(row):
            self.counters.routed_target += 1
            return self.target.locate_row_element(row, element)
        self.counters.routed_source += 1
        return self.source.locate_row_element(row, element)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def verify_invariant(self, rows: int | None = None) -> bool:
        """Check Lemma 1 under the *current* routing: every candidate row
        resolves to exactly one element per disk.

        Called by the mover at every journal checkpoint.  Bypasses the
        forwarding counters so observability never perturbs its own
        numbers.  Returns True on success; False identifies a violated
        row (the mover escalates).
        """
        limit = self.planned_rows if rows is None else rows
        n = self.code.n
        for row in range(limit):
            side = self.target if self.routes_to_target(row) else self.source
            disks = {side.locate_row_element(row, e).disk for e in range(n)}
            if len(disks) != n:
                return False
        return True

    def describe(self) -> str:
        """One-line description including migration progress."""
        return (
            f"{self.name}[{self.code.describe()}] "
            f"{self.windows_done}/{self.planned_windows} windows migrated"
        )
