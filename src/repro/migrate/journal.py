"""Crash-safe migration journal: write-ahead move records + checkpoints.

The mover's durability contract is the classic WAL discipline:

1. **stage** — before touching any physical slot of a window, the window's
   verified *data* payloads are appended to the journal (parity is not
   journaled: it is re-encoded from data at apply time, deterministically
   and placement-independently, so the bytes are identical);
2. **apply** — the window's elements are rewritten at their target-layout
   addresses (in place, safe by the plan's slot-band closure);
3. **commit** — a commit record marks the window durable in the target
   form.

A crash between (1) and (3) leaves the window's slot band in a mixed
layout, but the staged payloads make replay trivial: re-apply every write
from the journal (idempotent — rewriting a slot simply refreshes its
content and checksum) and commit.  A crash before (1) loses nothing; a
crash after (3) needs no replay.  :meth:`MigrationJournal.load` tolerates
a torn final line (the crash happened mid-append) by discarding it, which
the WAL ordering makes safe: a torn *stage* record means no slot of that
window was touched yet.

Records are JSONL — one JSON object per line, ``type`` field dispatching
— with payloads base64-encoded.  The first record is always ``plan``,
carrying enough context (forms, rows, element size, code params, seed) for
the CLI to rebuild the store and resume without any other state.
"""

from __future__ import annotations

import base64
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["JournalError", "PendingStage", "JournalState", "MigrationJournal"]


class JournalError(RuntimeError):
    """The journal is malformed beyond the tolerated torn tail."""


@dataclass(frozen=True)
class PendingStage:
    """A staged-but-uncommitted window awaiting (re-)apply.

    ``payloads[i][e]`` is data element ``e`` of ``rows[i]``.
    """

    window: int
    rows: tuple[int, ...]
    payloads: tuple[tuple[bytes, ...], ...]


@dataclass
class JournalState:
    """Everything :meth:`MigrationJournal.load` recovers."""

    context: dict | None = None
    committed: set[int] = field(default_factory=set)
    #: every staged window, committed or not — the full WAL of moves,
    #: enough to re-derive the target layout from a source-form store
    #: (the CLI's cross-process resume path).
    staged: dict[int, PendingStage] = field(default_factory=dict)
    pending: PendingStage | None = None
    checkpoints: list[dict] = field(default_factory=list)
    #: records parsed (diagnostics); torn tail lines are not counted.
    records: int = 0

    @property
    def started(self) -> bool:
        """True once a plan record exists."""
        return self.context is not None

    @property
    def windows_total(self) -> int:
        """Planned window count (0 before the plan record)."""
        return int(self.context.get("windows", 0)) if self.context else 0

    @property
    def complete(self) -> bool:
        """True when every planned window has a commit record."""
        return self.started and len(self.committed) >= self.windows_total


class MigrationJournal:
    """Append-only JSONL journal at ``path``.

    Appends are flushed and fsynced per record — the journal *is* the
    crash-consistency story, so a record either fully exists or is a torn
    tail that :meth:`load` discards.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        """True if the journal file exists on disk."""
        return self.path.exists()

    # ------------------------------------------------------------------
    # append side
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def write_plan(self, context: dict) -> None:
        """Record the migration plan context (must be the first record)."""
        self._append({"type": "plan", "context": context})

    def write_stage(
        self, window: int, rows: list[int], payloads: list[list[bytes]]
    ) -> None:
        """Stage a window's data payloads ahead of any physical write."""
        self._append(
            {
                "type": "stage",
                "window": window,
                "rows": list(rows),
                "data": [
                    [base64.b64encode(p).decode("ascii") for p in row]
                    for row in payloads
                ],
            }
        )

    def write_commit(self, window: int) -> None:
        """Mark a fully applied window durable in the target form."""
        self._append({"type": "commit", "window": window})

    def write_checkpoint(self, payload: dict) -> None:
        """Record a progress/invariant checkpoint."""
        self._append({"type": "checkpoint", **payload})

    # ------------------------------------------------------------------
    # recovery side
    # ------------------------------------------------------------------
    def load(self) -> JournalState:
        """Replay the journal into a :class:`JournalState`.

        Tolerates exactly one torn line at the tail (crash mid-append);
        malformed lines elsewhere raise :class:`JournalError`.
        """
        state = JournalState()
        if not self.path.exists():
            return state
        with open(self.path, "r", encoding="utf-8") as fh:
            raw = fh.read()
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        staged = state.staged
        for i, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn tail from a crash mid-append
                raise JournalError(f"malformed journal line {i + 1}: {line[:80]!r}")
            state.records += 1
            rtype = record.get("type")
            if rtype == "plan":
                if state.context is not None:
                    raise JournalError("duplicate plan record")
                state.context = record["context"]
            elif rtype == "stage":
                staged[record["window"]] = PendingStage(
                    window=record["window"],
                    rows=tuple(record["rows"]),
                    payloads=tuple(
                        tuple(base64.b64decode(p) for p in row)
                        for row in record["data"]
                    ),
                )
            elif rtype == "commit":
                state.committed.add(record["window"])
            elif rtype == "checkpoint":
                state.checkpoints.append(
                    {k: v for k, v in record.items() if k != "type"}
                )
            else:
                raise JournalError(f"unknown record type {rtype!r} at line {i + 1}")
        # the pending window is the latest staged record with no commit
        uncommitted = [w for w in staged if w not in state.committed]
        if uncommitted:
            if len(uncommitted) > 1:
                raise JournalError(
                    f"multiple uncommitted staged windows {sorted(uncommitted)}; "
                    "the mover stages one window at a time"
                )
            state.pending = staged[uncommitted[0]]
        return state
