"""Online layout migration: convert live volumes between placement forms.

The paper frames EC-FRM as a layout *transformation* (Eq. (1)-(4),
Lemma 1); this subsystem makes the transformation executable on a volume
that already holds data, without taking reads offline:

* :mod:`~repro.migrate.plan` — the move schedule: windowed, closure- and
  Lemma-1-verified before a single byte moves;
* :mod:`~repro.migrate.router` — a dual-layout placement that resolves
  every element to its current physical address mid-migration;
* :mod:`~repro.migrate.journal` — write-ahead move records + checkpoints
  for crash-safe resume;
* :mod:`~repro.migrate.mover` — the throttled background engine driving
  stage → apply → commit per window, charged to disk stats like any
  other I/O.

Typical use::

    mig = Migrator(store, "ec-frm", journal="migration.jsonl",
                   cache=service.cache, budget_per_step=200)
    while mig.step():
        ...   # foreground reads interleave here
    # after a crash:
    mig = resume_migration(store, "migration.jsonl", cache=service.cache)
    mig.run()
"""

from .journal import JournalError, JournalState, MigrationJournal, PendingStage
from .mover import CRASH_POINTS, MigrationCrash, Migrator, resume_migration
from .plan import MigrationPlan, MigrationPlanError, natural_unit_rows, plan_migration
from .router import MigrationError, MigrationRouter, RouterCounters

__all__ = [
    "CRASH_POINTS",
    "JournalError",
    "JournalState",
    "MigrationCrash",
    "MigrationError",
    "MigrationJournal",
    "MigrationPlan",
    "MigrationPlanError",
    "MigrationRouter",
    "Migrator",
    "PendingStage",
    "RouterCounters",
    "natural_unit_rows",
    "plan_migration",
    "resume_migration",
]
