"""Throttled, crash-safe background mover: the migration engine proper.

:class:`Migrator` converts a live :class:`~repro.store.blockstore.
BlockStore` from its current placement to a target placement window by
window, while the store keeps serving byte-correct reads:

* the store's placement is swapped to a :class:`~repro.migrate.router.
  MigrationRouter` up front, so every read resolves each element's
  *current* physical address;
* each window follows the WAL discipline of :mod:`repro.migrate.journal`
  — stage (verified data payloads, repairing any faulted elements on the
  way), apply (re-encode parity, rewrite at target addresses), commit;
* window applies are atomic with respect to foreground reads: reads
  interleave *between* :meth:`Migrator.step` calls, never inside one —
  the same contract a real system gets from blocking reads to an
  in-flight extent.  After a crash, :func:`resume_migration` replays the
  pending window from the journal *before* returning the handle, so no
  read can observe a half-rewritten window (WAL recovery runs at mount
  time, ahead of I/O);
* after each commit, plan-cache entries covering the window's elements
  are dropped (:meth:`~repro.engine.plancache.PlanCache.
  invalidate_elements`): the rewritten slots carry fresh checksums, so a
  stale plan would fetch bytes that *pass* verification yet belong to a
  different element — invalidation is a correctness requirement here,
  not an optimization;
* throttling is a token bucket over physical element operations: each
  step deposits ``budget_per_step`` tokens and a window only runs once
  the bucket covers its cost (``rows × (k reads + n writes)``), else the
  step records a throttle stall and yields.  All I/O flows through
  ``DiskArray.execute_batch`` / ``write_slot``, so migration work is
  charged to :class:`~repro.disks.disk.DiskStats` and ticks the
  :class:`~repro.faults.FaultInjector` clock exactly like foreground
  traffic.

Crash testing hooks: ``crash_after`` raises :class:`MigrationCrash` at a
chosen WAL stage of ``crash_at_window`` — after staging (no slot
touched), mid-apply (mixed-layout band), or after the commit record
(router/cache state lost) — covering all three recovery cases.
"""

from __future__ import annotations

import numpy as np

from ..engine.plancache import PlanCache
from ..layout import Placement, make_placement
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from .journal import MigrationJournal, PendingStage
from .plan import MigrationPlan, plan_migration
from .router import MigrationError, MigrationRouter

__all__ = ["MigrationCrash", "MigrationError", "Migrator", "resume_migration"]

#: valid ``crash_after`` hook points, in WAL order.
CRASH_POINTS = ("stage", "mid-write", "commit")


class MigrationCrash(RuntimeError):
    """Simulated process crash at a WAL stage (testing hook).

    The in-memory mover is dead after this; the journal and the disks
    survive.  Recover with :func:`resume_migration`.
    """


class Migrator:
    """Online layout migration of one store, driven by :meth:`step`.

    Parameters
    ----------
    store:
        The live store to migrate.  Its current placement becomes the
        migration source; it must not already be mid-migration.
    target:
        Target form name (``standard`` / ``rotated`` / ``ec-frm``) or a
        ready-made placement built for the store's code.
    journal:
        Journal (or path) for crash-safe move records.  A fresh start
        requires a fresh journal; resuming goes through
        :func:`resume_migration`.
    cache:
        Plan cache serving reads over this store (e.g.
        ``ReadService.cache``); entries covering each migrated window are
        invalidated at commit.  ``None`` if no cache is in play.
    registry:
        Metrics registry; when given, a ``migration`` namespace collector
        is registered.  Defaults to the store's registry.
    tracer:
        Span tracer (``migrate`` spans).  Defaults to the store's tracer.
    budget_per_step:
        Token-bucket deposit per :meth:`step`, in physical element
        operations.  ``None`` means unthrottled (a window per step).
    checkpoint_every:
        Commit count between journal checkpoints (the final commit always
        checkpoints).  Each checkpoint verifies the Lemma-1 invariant
        under the current routing and records the result.
    crash_after / crash_at_window:
        Testing hooks, see module docstring.
    """

    def __init__(
        self,
        store,
        target: str | Placement = "ec-frm",
        *,
        journal: MigrationJournal | str,
        cache: PlanCache | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        budget_per_step: int | None = None,
        checkpoint_every: int = 4,
        crash_after: str | None = None,
        crash_at_window: int = 0,
        context_extra: dict | None = None,
        _resume_committed: set[int] | None = None,
    ) -> None:
        if isinstance(store.placement, MigrationRouter):
            raise MigrationError(
                "store is already mid-migration; use resume_migration()"
            )
        if crash_after is not None and crash_after not in CRASH_POINTS:
            raise ValueError(
                f"crash_after must be one of {CRASH_POINTS}, got {crash_after!r}"
            )
        if checkpoint_every <= 0:
            raise ValueError(f"checkpoint_every must be > 0, got {checkpoint_every}")
        if budget_per_step is not None and budget_per_step <= 0:
            raise ValueError(
                f"budget_per_step must be > 0, got {budget_per_step}"
            )
        self.store = store
        self.source = store.placement
        self.target = (
            target
            if isinstance(target, Placement)
            else make_placement(target, store.code)
        )
        if self.target.code is not store.code:
            raise MigrationError("target placement was built for a different code")
        self.journal = (
            journal if isinstance(journal, MigrationJournal) else MigrationJournal(journal)
        )
        self.cache = cache
        self.tracer = tracer if tracer is not None else getattr(store, "tracer", NULL_TRACER)
        self.registry = registry if registry is not None else getattr(store, "registry", None)
        self.budget_per_step = budget_per_step
        self.checkpoint_every = checkpoint_every
        self.crash_after = crash_after
        self.crash_at_window = crash_at_window
        self.context_extra = dict(context_extra or {})

        self.plan: MigrationPlan = plan_migration(
            self.source, self.target, store.rows_written
        )
        self.router = MigrationRouter(
            self.source,
            self.target,
            unit_rows=self.plan.unit_rows,
            planned_rows=self.plan.rows,
        )

        # throttle + observability state
        self._tokens = 0
        self.rows_moved = 0
        self.elements_moved = 0
        self.bytes_moved = 0
        self.bytes_staged = 0
        self.throttle_stalls = 0
        self.resumes = 0
        self.write_intents = 0
        self.cache_invalidations = 0
        self.checkpoints = 0
        self.invariant_ok = True
        self._finalized = False

        if _resume_committed is None:
            if self.journal.exists():
                raise MigrationError(
                    f"journal {self.journal.path} already exists; "
                    "use resume_migration()"
                )
            self.journal.write_plan(self._context())
        else:
            for w in sorted(_resume_committed):
                self.router.mark_migrated(w)
                self.rows_moved += len(self.plan.window_rows(w))

        # route reads through the migration table from here on
        store.placement = self.router
        if self.registry is not None:
            self.registry.register_collector("migration", self.stats_snapshot)

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """True once every planned window is committed."""
        return self.router.complete

    @property
    def windows_done(self) -> int:
        """Committed window count."""
        return self.router.windows_done

    @property
    def progress_ratio(self) -> float:
        """Committed fraction of the schedule."""
        return self.router.progress_ratio

    def _context(self) -> dict:
        """Plan context persisted in the journal's first record.

        ``context_extra`` rides along (e.g. the CLI stores its code spec
        and data seed so ``migrate resume`` can rebuild the store)."""
        return {
            "source": self.source.name,
            "target": self.target.name,
            "code": self.store.code.describe(),
            "rows": self.plan.rows,
            "unit_rows": self.plan.unit_rows,
            "windows": self.plan.num_windows,
            "element_size": self.store.element_size,
            **self.context_extra,
        }

    def _next_window(self) -> int | None:
        for w in range(self.plan.num_windows):
            if w not in self.router.migrated_windows:
                return w
        return None

    def _window_cost(self, window: int) -> int:
        """Physical element operations one window costs: ``k`` reads plus
        ``n`` writes per row (repairs on faulted rows cost extra, which
        the throttle deliberately does not pre-charge)."""
        rows = self.plan.window_rows(window)
        return len(rows) * (self.store.code.k + self.store.code.n)

    # ------------------------------------------------------------------
    # the move loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run one throttled quantum; returns True while work remains.

        Deposits ``budget_per_step`` tokens; if the bucket covers the next
        window's cost, migrates it (stage → apply → commit → invalidate),
        else records a throttle stall.  Foreground reads interleave
        between steps.
        """
        if self.complete:
            self._finalize()
            return False
        window = self._next_window()
        assert window is not None
        cost = self._window_cost(window)
        if self.budget_per_step is not None:
            self._tokens += self.budget_per_step
            if self._tokens < cost:
                self.throttle_stalls += 1
                return True
            self._tokens -= cost
        self._migrate_window(window)
        if self.complete:
            self._finalize()
        return not self.complete

    def run(self) -> int:
        """Drive :meth:`step` to completion; returns steps taken."""
        steps = 0
        while True:
            steps += 1
            if not self.step():
                return steps

    def _migrate_window(self, window: int) -> None:
        rows = self.plan.window_rows(window)
        with self.tracer.span("migrate", window=window, rows=len(rows)):
            # stage: verified data payloads, via the router's source side
            # (repairing faulted elements through the normal machinery)
            payloads = [self.store.fetch_row_data(row) for row in rows]
            self.bytes_staged += sum(len(p) for row in payloads for p in row)
            self.journal.write_stage(window, list(rows), payloads)
            self._maybe_crash("stage", window)
            self._apply_window(window, rows, payloads)
            self.journal.write_commit(window)
            self._maybe_crash("commit", window)
            self._commit_window(window, rows)

    def _apply_window(
        self,
        window: int,
        rows: range | tuple[int, ...],
        payloads,
        *,
        crash_enabled: bool = True,
    ) -> None:
        """Rewrite a staged window at its target addresses (idempotent)."""
        k, n, s = self.store.code.k, self.store.code.n, self.store.element_size
        crash_row = len(rows) // 2
        for i, row in enumerate(rows):
            if (
                crash_enabled
                and self.crash_after == "mid-write"
                and window == self.crash_at_window
                and i == crash_row
            ):
                raise MigrationCrash(
                    f"simulated crash mid-apply of window {window} (row {row})"
                )
            data = np.stack(
                [np.frombuffer(p, dtype=np.uint8) for p in payloads[i]]
            )
            parity = self.store.code.encode(data)
            for e in range(n):
                addr = self.target.locate_row_element(row, e)
                payload = data[e] if e < k else parity[e - k]
                if not self.store.put_element(addr, payload):
                    self.write_intents += 1
                self.elements_moved += 1
                self.bytes_moved += s
            self.rows_moved += 1

    def _commit_window(self, window: int, rows) -> None:
        """Flip routing to the target side and drop stale cached plans."""
        self.router.mark_migrated(window)
        if self.cache is not None:
            k = self.store.code.k
            dropped = self.cache.invalidate_elements(
                rows[0] * k, (rows[-1] + 1) * k, placement=self.router
            )
            self.cache_invalidations += dropped
        if (
            self.windows_done % self.checkpoint_every == 0
            or self.complete
        ):
            self.checkpoint()

    def _maybe_crash(self, point: str, window: int) -> None:
        if self.crash_after == point and window == self.crash_at_window:
            raise MigrationCrash(
                f"simulated crash after {point} of window {window}"
            )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _replay_pending(self, pending: PendingStage) -> None:
        """Re-apply a staged-but-uncommitted window from the journal.

        Idempotent by construction: every write lands the same payload at
        the same address, refreshing content and checksum, whether the
        crash happened before, during, or after the original apply.
        """
        rows = pending.rows
        with self.tracer.span("migrate", window=pending.window, replay=True):
            self._apply_window(
                pending.window, rows, pending.payloads, crash_enabled=False
            )
            self.journal.write_commit(pending.window)
            self._commit_window(pending.window, rows)

    # ------------------------------------------------------------------
    # finalization & observability
    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        """Swap the store onto the native target placement once done.

        The router already routes every row (planned and beyond) to the
        target, so this is an identity change of addressing — it restores
        the native placement signature so post-migration stores are
        indistinguishable from natively created ones (plan-cache entries
        included).
        """
        if self._finalized:
            return
        if not self.router.verify_invariant():
            self.invariant_ok = False
            raise MigrationError(
                "post-migration invariant check failed; refusing to finalize"
            )
        self.store.placement = self.target
        self._finalized = True

    def checkpoint(self) -> dict:
        """Verify the Lemma-1 invariant under current routing and journal
        the result.  Returns the checkpoint payload."""
        ok = self.router.verify_invariant()
        self.invariant_ok = self.invariant_ok and ok
        payload = {
            "windows_done": self.windows_done,
            "windows_total": self.plan.num_windows,
            "progress": self.progress_ratio,
            "invariant_ok": ok,
            "rows_moved": self.rows_moved,
            "elements_moved": self.elements_moved,
        }
        self.journal.write_checkpoint(payload)
        self.checkpoints += 1
        if not ok:
            raise MigrationError(
                f"Lemma-1 invariant violated at window {self.windows_done}"
            )
        return payload

    def stats_snapshot(self) -> dict:
        """The ``migration.*`` metrics namespace."""
        routed = self.router.counters
        return {
            "windows_done": self.windows_done,
            "windows_total": self.plan.num_windows,
            "progress_ratio": self.progress_ratio,
            "rows_moved": self.rows_moved,
            "elements_moved": self.elements_moved,
            "bytes_moved": self.bytes_moved,
            "bytes_staged": self.bytes_staged,
            "throttle_stalls": self.throttle_stalls,
            "resumes": self.resumes,
            "write_intents": self.write_intents,
            "cache_invalidations": self.cache_invalidations,
            "checkpoints": self.checkpoints,
            "invariant_ok": int(self.invariant_ok),
            "routed_source": routed.routed_source,
            "routed_target": routed.routed_target,
            "bytes_forwarded": routed.routed_target * self.store.element_size,
            "complete": int(self.complete),
        }


def resume_migration(
    store,
    journal: MigrationJournal | str,
    *,
    cache: PlanCache | None = None,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    budget_per_step: int | None = None,
    checkpoint_every: int = 4,
    crash_after: str | None = None,
    crash_at_window: int = 0,
    restage: bool = False,
) -> Migrator:
    """Recover a crashed migration from its journal.

    Rebuilds the router from the journal's committed windows, replays the
    pending staged window (if any) *before* returning — so the store never
    serves a read from a half-rewritten band — and returns a
    :class:`Migrator` ready to :meth:`~Migrator.step`/:meth:`~Migrator.
    run` the remaining windows.

    With ``restage=False`` (in-process recovery: the disks survived the
    crash), ``store`` must hold the partially migrated content the
    journal describes.  With ``restage=True`` (cross-process recovery:
    the CLI rebuilds a pristine *source-form* store from the recorded
    context), every committed window is re-applied from its staged
    payloads first, re-deriving the exact partially-migrated disk state
    the journal promises — possible because the journal is a complete
    WAL of every move.
    """
    journal = (
        journal if isinstance(journal, MigrationJournal) else MigrationJournal(journal)
    )
    state = journal.load()
    if not state.started:
        raise MigrationError(f"journal {journal.path} has no plan record")
    ctx = state.context
    if isinstance(store.placement, MigrationRouter):
        # crashed in-process: drop the dead router, recover from source
        store.placement = store.placement.source
    if store.placement.name != ctx["source"]:
        raise MigrationError(
            f"store placement {store.placement.name!r} does not match the "
            f"journal's source form {ctx['source']!r}"
        )
    if store.element_size != ctx["element_size"]:
        raise MigrationError(
            f"store element size {store.element_size} does not match the "
            f"journal's {ctx['element_size']}"
        )
    if store.rows_written < ctx["rows"]:
        raise MigrationError(
            f"store has {store.rows_written} rows, journal planned {ctx['rows']}"
        )
    mig = Migrator(
        store,
        ctx["target"],
        journal=journal,
        cache=cache,
        registry=registry,
        tracer=tracer,
        budget_per_step=budget_per_step,
        checkpoint_every=checkpoint_every,
        crash_after=crash_after,
        crash_at_window=crash_at_window,
        _resume_committed=set() if restage else state.committed,
    )
    if mig.plan.rows != ctx["rows"] or mig.plan.unit_rows != ctx["unit_rows"]:
        raise MigrationError(
            "rebuilt plan geometry disagrees with the journal's plan record"
        )
    mig.resumes += 1
    if restage:
        for w in sorted(state.committed):
            st = state.staged.get(w)
            if st is None:
                raise MigrationError(
                    f"window {w} committed but its stage record is missing; "
                    "journal is not a complete WAL"
                )
            mig._apply_window(w, st.rows, st.payloads, crash_enabled=False)
            mig.router.mark_migrated(w)
    if cache is not None:
        # A cache that survived the "crash" (tests reuse the object; a real
        # restart would start cold) may hold entries for windows whose
        # commit record landed but whose invalidation did not.  Sweep the
        # whole planned range once — resume is rare, correctness is not.
        mig.cache_invalidations += cache.invalidate_elements(
            0, mig.plan.rows * store.code.k, placement=mig.router
        )
    if state.pending is not None:
        mig._replay_pending(state.pending)
    elif not mig.complete:
        mig.checkpoint()
    if mig.complete:
        mig._finalize()
    return mig
