"""Migration planning: a safe move schedule from one placement to another.

The paper presents EC-FRM as a *layout transformation*: the elements of
existing candidate-code rows are re-deployed onto the group-preserving
EC-FRM grid (Eq. (1)-(4)).  This module turns that transformation into an
executable *move schedule* for a volume that already holds data.

The schedule's atomic unit is a **window** of consecutive candidate rows.
The window size is the least common multiple of the two placements'
natural stripe periods (one row for the standard and rotated forms,
``n/r`` rows — one EC-FRM stripe — for the EC-FRM form), because that is
the granularity at which both placements address a *closed* slot range:
every element of the window's rows lives at a slot inside the window's
own slot band, under the source *and* the target placement.  Closure is
what makes the in-place move safe — staging a window and rewriting it in
the target layout can never clobber an element of another window.

:func:`plan_migration` verifies two properties per window before the
mover is allowed to run (:meth:`MigrationPlan.verify`):

1. **closure** — all source and target addresses of the window's rows
   fall inside the window's slot band ``[w*U, (w+1)*U)``;
2. **Lemma 1 at every step** — every candidate row has exactly one
   element per disk under the source and under the target placement.
   Because the mover commits whole windows and the router serves each
   row from exactly one side, *every intermediate migration state* is a
   per-row mix of two placements that each satisfy the invariant — so
   fault tolerance never dips mid-migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import lcm

from ..layout.base import Placement
from ..layout.frm import FRMPlacement

__all__ = ["MigrationPlanError", "MigrationPlan", "natural_unit_rows", "plan_migration"]


class MigrationPlanError(ValueError):
    """The requested placement pair admits no safe in-place move schedule."""


def natural_unit_rows(placement: Placement) -> int:
    """The placement's stripe period in candidate rows.

    The standard and rotated forms place each candidate row inside its own
    physical row (period 1); the EC-FRM form spreads ``n/r`` candidate
    rows (groups) over one ``n/r``-row stripe.
    """
    if isinstance(placement, FRMPlacement):
        return placement.geometry.num_groups
    return 1


@dataclass(frozen=True)
class MigrationPlan:
    """A verified window-by-window move schedule.

    Attributes
    ----------
    source / target:
        The placements being migrated between (same code, same disks).
    rows:
        Candidate rows covered by the schedule (rows appended after
        planning stay in the source form until a follow-up migration).
    unit_rows:
        Rows per migration window (see module docstring).
    """

    source: Placement
    target: Placement
    rows: int
    unit_rows: int

    @property
    def num_windows(self) -> int:
        """Windows in the schedule (the last one may be partial)."""
        return -(-self.rows // self.unit_rows) if self.rows else 0

    def window_rows(self, window: int) -> range:
        """Candidate rows of ``window`` (clipped at the schedule's end)."""
        if not 0 <= window < self.num_windows:
            raise ValueError(
                f"window {window} out of range [0, {self.num_windows})"
            )
        start = window * self.unit_rows
        return range(start, min(start + self.unit_rows, self.rows))

    def window_of_row(self, row: int) -> int:
        """Window that owns candidate ``row``."""
        if row < 0:
            raise ValueError(f"row must be >= 0, got {row}")
        return row // self.unit_rows

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Check closure and the Lemma-1 invariant for every window.

        Raises :class:`MigrationPlanError` with a diagnostic message on
        the first violation.  Cost is ``O(rows * n)`` per placement.
        """
        n = self.source.code.n
        for w in range(self.num_windows):
            rows = self.window_rows(w)
            lo, hi = w * self.unit_rows, (w + 1) * self.unit_rows
            for side, placement in (("source", self.source), ("target", self.target)):
                claimed: dict[tuple[int, int], tuple[int, int]] = {}
                for row in rows:
                    disks_seen: set[int] = set()
                    for e in range(n):
                        addr = placement.locate_row_element(row, e)
                        if not 0 <= addr.disk < placement.num_disks:
                            raise MigrationPlanError(
                                f"{side} row {row} element {e} on bad disk {addr.disk}"
                            )
                        if addr.disk in disks_seen:
                            raise MigrationPlanError(
                                f"{side} row {row} places two elements on disk "
                                f"{addr.disk}; Lemma-1 invariant violated"
                            )
                        disks_seen.add(addr.disk)
                        if not lo <= addr.slot < hi:
                            raise MigrationPlanError(
                                f"{side} row {row} element {e} at slot {addr.slot} "
                                f"escapes window {w}'s slot band [{lo}, {hi}); "
                                "in-place migration would clobber another window"
                            )
                        key = (addr.disk, addr.slot)
                        if key in claimed:
                            raise MigrationPlanError(
                                f"{side} address {key} claimed by rows "
                                f"{claimed[key]} and {(row, e)}"
                            )
                        claimed[key] = (row, e)


def plan_migration(source: Placement, target: Placement, rows: int) -> MigrationPlan:
    """Build and verify the move schedule ``source -> target`` over ``rows``.

    Parameters
    ----------
    source / target:
        Placements built for the *same* code instance.
    rows:
        Candidate rows currently flushed in the volume.

    Raises
    ------
    MigrationPlanError
        If the placements disagree on code/geometry, or any window fails
        closure or the Lemma-1 invariant.
    """
    if source.code is not target.code:
        raise MigrationPlanError(
            "source and target placements must share one code instance"
        )
    if source.num_disks != target.num_disks:  # pragma: no cover - same code
        raise MigrationPlanError("placements disagree on disk count")
    if rows < 0:
        raise MigrationPlanError(f"rows must be >= 0, got {rows}")
    unit = lcm(natural_unit_rows(source), natural_unit_rows(target))
    plan = MigrationPlan(source=source, target=target, rows=rows, unit_rows=unit)
    plan.verify()
    return plan
