"""The unified metrics surface: named metrics + one versioned snapshot.

Every component of the read path (service, plan cache, block store, disk
array, scrubber, fault injector) registers into one
:class:`MetricsRegistry`; :meth:`MetricsRegistry.snapshot` renders the
whole system as a single nested dict with namespaced sections::

    {
        "schema_version": 1,
        "service": {...},   # request/batch counters + latency breakdown
        "cache":   {...},   # plan-cache hit/miss/eviction counters
        "disks":   {...},   # per-disk stats, failures, slowdowns
        "health":  {...},   # integrity detections/repairs (+ scrub)
        "faults":  {...},   # injector audit counters (when attached)
    }

Components contribute two ways:

* **owned metrics** — ``registry.counter("disks.batches_executed")`` /
  ``registry.histogram("disks.batch_seconds")``: get-or-create by dotted
  name; the part before the first dot is the namespace.
* **collectors** — ``registry.register_collector("health",
  health.snapshot)``: a callable returning a dict, merged under the
  namespace at snapshot time.  Registration is idempotent per bound
  method, so a store and a service sharing one registry don't double
  register.

``schema_version`` is bumped *only* on breaking shape changes; the
contract tests pin the current value so a bump is always an explicit,
reviewed act.
"""

from __future__ import annotations

from typing import Any, Callable

from .hist import Counter, Histogram

__all__ = ["SCHEMA_VERSION", "MetricsRegistry", "flatten_snapshot"]

#: version of the snapshot schema produced by :meth:`MetricsRegistry.snapshot`
#: and :meth:`repro.engine.service.ReadService.metrics`.
SCHEMA_VERSION = 1


def _split_name(name: str) -> tuple[str, str]:
    if "." not in name:
        raise ValueError(
            f"metric name {name!r} needs a '<namespace>.<metric>' form"
        )
    ns, rest = name.split(".", 1)
    return ns, rest


class MetricsRegistry:
    """Hosts named counters/histograms and namespace collectors."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list[tuple[str, Callable[[], dict]]] = []
        self._collector_keys: set[tuple] = set()

    # ------------------------------------------------------------------
    # owned metrics
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter at dotted ``name``."""
        _split_name(name)
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name: str, **kwargs: Any) -> Histogram:
        """Get or create the histogram at dotted ``name`` (``kwargs`` are
        only applied on creation)."""
        _split_name(name)
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, **kwargs)
        return h

    # ------------------------------------------------------------------
    # collectors
    # ------------------------------------------------------------------
    def register_collector(
        self, namespace: str, fn: Callable[[], dict]
    ) -> None:
        """Merge ``fn()`` under ``namespace`` at every snapshot.

        Idempotent: registering the same bound method (or function) under
        the same namespace twice keeps a single entry.
        """
        if not namespace or "." in namespace:
            raise ValueError(f"invalid namespace {namespace!r}")
        key = (
            namespace,
            id(getattr(fn, "__self__", None)),
            getattr(fn, "__func__", fn),
        )
        if key in self._collector_keys:
            return
        self._collector_keys.add(key)
        self._collectors.append((namespace, fn))

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Dotted names of every owned counter and histogram, sorted."""
        return sorted([*self._counters, *self._histograms])

    def snapshot(self) -> dict[str, Any]:
        """Render the versioned, namespaced snapshot.

        Collectors run first (in registration order), then owned counters
        and histograms overlay their values, so an owned metric wins a
        name clash deterministically.
        """
        out: dict[str, Any] = {"schema_version": SCHEMA_VERSION}
        for namespace, fn in self._collectors:
            out.setdefault(namespace, {}).update(fn())
        for name, c in self._counters.items():
            ns, rest = _split_name(name)
            out.setdefault(ns, {})[rest] = c.value
        for name, h in self._histograms.items():
            ns, rest = _split_name(name)
            out.setdefault(ns, {})[rest] = h.summary()
        return out


def flatten_snapshot(
    snapshot: dict[str, Any], *, sep: str = "."
) -> dict[str, Any]:
    """Flatten a nested snapshot into dotted scalar keys.

    The one-release compatibility helper for consumers of the old flat
    ``metrics()`` dicts, and the basis of the Prometheus exposition.
    Lists are kept as values; nested dicts recurse.
    """
    flat: dict[str, Any] = {}

    def walk(prefix: str, node: Any) -> None:
        if isinstance(node, dict):
            for k, v in node.items():
                walk(f"{prefix}{sep}{k}" if prefix else str(k), v)
        else:
            flat[prefix] = node

    walk("", snapshot)
    return flat
