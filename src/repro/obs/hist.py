"""Log-bucketed histograms and named counters.

The observability layer needs tail quantiles (p50/p95/p99/p999) over
millions of per-request samples without keeping the samples: a
:class:`Histogram` folds each observation into a geometric bucket and
answers quantile queries from the bucket counts.  With the default growth
factor of 1.1 every reported quantile is within ~5% (relative) of the
exact sample quantile — tight enough to compare read-path stages, loose
enough to cost O(1) memory per stage.

:class:`Counter` is the matching monotonic counter.  Both carry dotted
names (``service.retries``, ``disks.batch_seconds``) so the
:class:`~repro.obs.registry.MetricsRegistry` can place them in the
namespaced snapshot.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["Counter", "Histogram"]


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0: counters only go up)."""
        if n < 0:
            raise ValueError(f"counters are monotonic; cannot add {n}")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """Geometric-bucket histogram with quantile estimation.

    Parameters
    ----------
    name:
        Dotted metric name (cosmetic; the registry keys on it).
    growth:
        Bucket boundary ratio.  Quantiles are exact to within a factor of
        ``sqrt(growth)`` — 1.1 gives <= ~4.9% relative error.
    min_value:
        Lower edge of the first bucket; observations below it (but > 0)
        land in underflow buckets with the same relative accuracy.

    Observations must be finite and >= 0; zeros are tracked exactly in a
    dedicated bucket so stage histograms can absorb zero-duration events.
    """

    __slots__ = (
        "name",
        "growth",
        "_lg",
        "_min",
        "_buckets",
        "_zeros",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(
        self, name: str = "", *, growth: float = 1.1, min_value: float = 1e-9
    ) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        self.name = name
        self.growth = growth
        self._lg = math.log(growth)
        self._min = min_value
        self._buckets: dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def __len__(self) -> int:
        return self.count

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Fold one observation into the buckets."""
        v = float(value)
        if not math.isfinite(v) or v < 0.0:
            raise ValueError(f"observations must be finite and >= 0, got {value}")
        self.count += 1
        self.total += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)
        if v == 0.0:
            self._zeros += 1
            return
        idx = math.floor(math.log(v / self._min) / self._lg)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations."""
        for v in values:
            self.observe(v)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (geometric bucket midpoint, clamped to
        the exact observed min/max)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("cannot take a quantile of an empty histogram")
        rank = q * (self.count - 1)
        seen = self._zeros
        if rank < seen or not self._buckets:
            return max(0.0, self.min)
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if rank < seen:
                mid = self._min * self.growth ** (idx + 0.5)
                return min(max(mid, self.min), self.max)
        return self.max

    def percentiles(self) -> dict[str, float]:
        """The standard latency quartet: p50/p95/p99/p999."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    def summary(self) -> dict[str, float | int]:
        """Plain-dict view for the metrics snapshot (safe when empty)."""
        if self.count == 0:
            return {
                "count": 0,
                "total": 0.0,
                "mean": 0.0,
                "min": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
                "p999": 0.0,
            }
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            **self.percentiles(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name!r}, count={self.count})"
