"""Observability: request tracing, latency histograms, unified metrics.

The measurement substrate of the repro (PAPERS.md: Rashmi et al. and the
online-EC SSD study both argue that *tails and per-stage breakdowns*, not
means, distinguish erasure-coded read paths):

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span`: per-request
  stage spans (``plan``, ``cache_lookup``, ``queue_wait``, ``disk_io``,
  ``decode``, ``heal``, ``retry``) with zero overhead when disabled;
* :mod:`repro.obs.hist` — log-bucketed :class:`Histogram` (p50/p95/p99/
  p999 without raw samples) and monotonic :class:`Counter`;
* :mod:`repro.obs.registry` — :class:`MetricsRegistry` and the versioned
  namespaced snapshot schema (``schema_version``, ``service.*``,
  ``cache.*``, ``disks.*``, ``health.*``, ``faults.*``);
* :mod:`repro.obs.export` — JSONL trace dump, Prometheus-style text
  exposition, and the per-stage latency-breakdown table.

This package sits at the bottom of the layer stack: it imports nothing
from the rest of :mod:`repro`, so every layer (disks, engine, store,
faults, harness, CLI) may depend on it.
"""

from .export import (
    latency_breakdown,
    render_latency_breakdown,
    spans_to_jsonl,
    to_prometheus,
    write_trace_jsonl,
)
from .hist import Counter, Histogram
from .registry import SCHEMA_VERSION, MetricsRegistry, flatten_snapshot
from .trace import NULL_TRACER, STAGES, Span, Tracer

__all__ = [
    "STAGES",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "flatten_snapshot",
    "spans_to_jsonl",
    "write_trace_jsonl",
    "to_prometheus",
    "latency_breakdown",
    "render_latency_breakdown",
]
