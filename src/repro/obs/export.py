"""Exporters for traces and metric snapshots.

Three output formats, one per audience:

* :func:`write_trace_jsonl` / :func:`spans_to_jsonl` — the raw span
  stream, one JSON object per line, for offline tooling;
* :func:`to_prometheus` — text exposition of a snapshot (gauge per
  scalar, flattened dotted names), for scrape-style collection;
* :func:`latency_breakdown` / :func:`render_latency_breakdown` — the
  per-stage latency table (p50/p95/p99 per stage plus a consistency
  block tying the wall stages back to total request wall time), the
  table EXPERIMENTS.md analyses.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterable

from .registry import SCHEMA_VERSION, flatten_snapshot
from .trace import Span, Tracer

__all__ = [
    "spans_to_jsonl",
    "write_trace_jsonl",
    "to_prometheus",
    "latency_breakdown",
    "render_latency_breakdown",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Serialize spans as JSON lines (trailing newline included)."""
    lines = [json.dumps(s.to_dict(), sort_keys=True) for s in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Dump a tracer's spans to ``path`` as JSONL; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(spans_to_jsonl(tracer.spans))
    return p


# ----------------------------------------------------------------------
# Prometheus-style text exposition
# ----------------------------------------------------------------------
def to_prometheus(snapshot: dict[str, Any], *, prefix: str = "ecfrm") -> str:
    """Render a metrics snapshot in the Prometheus text format.

    Every numeric leaf of the (nested) snapshot becomes one gauge sample
    named ``<prefix>_<dotted_path_with_underscores>``.  Booleans export
    as 0/1; strings and lists are skipped (they are labels in spirit, and
    this exposition stays label-free for simplicity).
    """
    lines: list[str] = []
    for key, value in sorted(flatten_snapshot(snapshot).items()):
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            continue
        name = _NAME_RE.sub("_", f"{prefix}_{key}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# latency breakdown
# ----------------------------------------------------------------------
def latency_breakdown(tracer: Tracer) -> dict[str, Any]:
    """The per-stage latency-breakdown document.

    ``stages`` holds one summary per stage (count/total/mean/min/max/
    p50/p95/p99/p999 plus its clock).  ``consistency`` relates the wall
    stages to the total request wall time: their summed totals can never
    exceed it (stages nest inside requests), and the coverage ratio says
    how much request time the instrumentation attributes to a stage —
    the acceptance check for "per-stage times are consistent with batch
    wall-clock".  Sim-clock stages (``queue_wait``) are excluded from the
    wall sum; they live on the simulated clock.
    """
    stages = tracer.breakdown()
    wall_total = sum(
        s["total"] for s in stages.values() if s["clock"] == "wall"
    )
    req_total = tracer.requests_total_s()
    return {
        "schema_version": SCHEMA_VERSION,
        "stages": stages,
        "requests": {
            "count": tracer.request_count(),
            "total_wall_s": req_total,
        },
        "consistency": {
            "stage_wall_total_s": wall_total,
            "request_wall_total_s": req_total,
            "coverage": wall_total / req_total if req_total > 0 else 0.0,
        },
    }


def render_latency_breakdown(stages: dict[str, dict]) -> str:
    """Fixed-width table of per-stage latencies (milliseconds).

    Accepts the ``stages`` mapping of :func:`latency_breakdown` (or
    :meth:`Tracer.breakdown` output directly).  Stages are ordered by
    total time descending — the top line is where the time goes.
    """
    if not stages:
        return "(no spans recorded)"
    header = (
        f"{'stage':<13s} {'clock':<5s} {'count':>7s} "
        f"{'p50 ms':>9s} {'p95 ms':>9s} {'p99 ms':>9s} {'total ms':>10s}"
    )
    lines = [header]
    for name, s in sorted(
        stages.items(), key=lambda kv: kv[1]["total"], reverse=True
    ):
        lines.append(
            f"{name:<13s} {s['clock']:<5s} {s['count']:>7d} "
            f"{s['p50'] * 1e3:>9.3f} {s['p95'] * 1e3:>9.3f} "
            f"{s['p99'] * 1e3:>9.3f} {s['total'] * 1e3:>10.2f}"
        )
    return "\n".join(lines)
