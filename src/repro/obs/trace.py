"""Per-request span tracing for the read path.

A :class:`Tracer` records *spans* — named, timed stages of a request —
so a run can answer "where does degraded-read time go?" instead of only
reporting end-of-run aggregates.  The read path emits the stages

``plan``, ``cache_lookup``, ``queue_wait``, ``disk_io``,
``net_transfer``, ``decode``, ``heal``, ``retry``, ``hedge``

plus one ``request``-kind parent span per submitted range.  Spans carry a
``clock`` marker: ``"wall"`` spans are measured on the tracer's monotonic
clock (CPU time actually spent in planning, fetching, decoding), while
``"sim"`` spans carry durations taken from the simulated disk model
(queue wait at the modelled queue depth).  The two must never be summed
together; :meth:`Tracer.breakdown` keeps them apart.

Disabled tracing is free by construction: every instrumentation site does
one ``enabled`` check and receives a shared no-op context manager, so the
payload and accounting planes are bit-identical with tracing on or off —
``tests/obs/test_trace_equivalence.py`` pins that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["STAGES", "Span", "Tracer", "NULL_TRACER"]

#: the read-path stage vocabulary, in pipeline order.
STAGES = (
    "tier_lookup",
    "plan",
    "cache_lookup",
    "queue_wait",
    "disk_io",
    "net_transfer",
    "decode",
    "heal",
    "retry",
    "hedge",
)


@dataclass(frozen=True)
class Span:
    """One finished span.

    ``trace_id`` groups the stages of one request (None for spans emitted
    outside any request — e.g. scrub I/O).  ``parent``/``parent_kind``
    identify the enclosing span so nested work (a heal's internal disk
    fetches) can be excluded from top-level breakdowns.
    """

    name: str
    kind: str  # "request" | "stage"
    start_s: float
    duration_s: float
    clock: str = "wall"  # "wall" | "sim"
    trace_id: int | None = None
    parent: str | None = None
    parent_kind: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready record (the JSONL trace dump format)."""
        out: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "clock": self.clock,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.parent is not None:
            out["parent"] = self.parent
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class _NullSpan:
    """Shared no-op context manager handed out when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """No-op attribute setter (mirrors :meth:`_ActiveSpan.set`)."""


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """A span being timed; append to the tracer on exit."""

    __slots__ = ("_tracer", "name", "kind", "attrs", "_t0", "trace_id",
                 "parent", "parent_kind")

    def __init__(self, tracer: "Tracer", name: str, kind: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.kind = kind
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. simulated service
        time, access counts)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        tr = self._tracer
        stack = tr._stack
        if stack:
            top = stack[-1]
            self.parent, self.parent_kind = top.name, top.kind
            self.trace_id = top.trace_id
        else:
            self.parent = self.parent_kind = None
            self.trace_id = None
        if self.kind == "request":
            tr._next_trace += 1
            self.trace_id = tr._next_trace
        stack.append(self)
        self._t0 = tr._clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        tr = self._tracer
        t1 = tr._clock()
        tr._stack.pop()
        tr.spans.append(
            Span(
                name=self.name,
                kind=self.kind,
                start_s=self._t0,
                duration_s=t1 - self._t0,
                clock="wall",
                trace_id=self.trace_id,
                parent=self.parent,
                parent_kind=self.parent_kind,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Records request/stage spans; free when disabled.

    Parameters
    ----------
    enabled:
        When False every instrumentation site gets a shared no-op context
        manager and nothing is recorded.
    clock:
        Monotonic time source for wall spans; injectable for deterministic
        tests.  Defaults to :func:`time.perf_counter`.
    """

    def __init__(
        self, enabled: bool = True, *, clock: Callable[[], float] | None = None
    ) -> None:
        self.enabled = enabled
        self._clock = clock if clock is not None else time.perf_counter
        self.spans: list[Span] = []
        self._stack: list[_ActiveSpan] = []
        self._next_trace = 0

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def request(self, name: str = "read", **attrs: Any):
        """Open a request-kind parent span (context manager)."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, "request", attrs)

    def span(self, name: str, **attrs: Any):
        """Open a stage span (context manager) under the current request."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, "stage", attrs)

    def record(
        self, name: str, duration_s: float, *, clock: str = "sim", **attrs: Any
    ) -> None:
        """Append a span with an externally supplied duration.

        This is how simulated-clock stages (``queue_wait``) enter the
        trace: the closed-loop model computed the duration; there is no
        wall interval to measure.
        """
        if not self.enabled:
            return
        parent = parent_kind = None
        trace_id = None
        if self._stack:
            top = self._stack[-1]
            parent, parent_kind, trace_id = top.name, top.kind, top.trace_id
        self.spans.append(
            Span(
                name=name,
                kind="stage",
                start_s=self._clock(),
                duration_s=float(duration_s),
                clock=clock,
                trace_id=trace_id,
                parent=parent,
                parent_kind=parent_kind,
                attrs=attrs,
            )
        )

    def point(self, name: str, **attrs: Any) -> None:
        """Append a zero-duration wall event (e.g. a retry marker)."""
        self.record(name, 0.0, clock="wall", **attrs)

    def reset(self) -> None:
        """Drop recorded spans (the trace-id counter keeps running)."""
        self.spans.clear()

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def breakdown(self, *, top_level_only: bool = True) -> dict[str, dict]:
        """Per-stage latency summaries from the recorded spans.

        Returns ``{stage: {count, total, mean, min, max, p50, p95, p99,
        p999, clock}}``.  With ``top_level_only`` (default) spans nested
        inside another *stage* (a heal's internal disk fetches) are
        excluded, so the wall stages of one request sum to at most the
        request's own duration.
        """
        from .hist import Histogram  # local: keep import-time cost off the hot path

        hists: dict[str, Histogram] = {}
        clocks: dict[str, str] = {}
        for s in self.spans:
            if s.kind != "stage":
                continue
            if top_level_only and s.parent_kind == "stage":
                continue
            hists.setdefault(s.name, Histogram(s.name)).observe(s.duration_s)
            clocks.setdefault(s.name, s.clock)
        return {
            name: {**h.summary(), "clock": clocks[name]}
            for name, h in sorted(hists.items())
        }

    def requests_total_s(self) -> float:
        """Summed wall duration of all request-kind spans."""
        return sum(s.duration_s for s in self.spans if s.kind == "request")

    def request_count(self) -> int:
        """Number of finished request-kind spans."""
        return sum(1 for s in self.spans if s.kind == "request")


#: the shared disabled tracer — safe to use as a default everywhere.
NULL_TRACER = Tracer(enabled=False)
