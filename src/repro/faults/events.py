"""Fault events and schedules: the injection DSL.

A fault schedule is a list of :class:`FaultEvent` rows, each saying *what*
goes wrong, *where*, and *when* — "when" measured in array operations
(one operation = one :meth:`DiskArray.execute_batch` call), so schedules
are deterministic regardless of wall clock, payload sizes, or Python
version.  Schedules are either **scripted** (hand-written event lists,
the reproducible regression vector) or **probabilistic** (drawn from a
seeded RNG by :meth:`FaultSchedule.random`, the soak-test vector — same
seed, same schedule, forever).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule"]


class FaultKind(Enum):
    """The failure classes the injector can drive."""

    #: permanent disk failure; contents unreachable until rebuilt.
    CRASH = "crash"
    #: disk goes away and comes back with data intact after
    #: ``duration_ops`` operations (controller reset, cable pull).
    TRANSIENT_OUTAGE = "transient-outage"
    #: bring a disk back without wiping (the outage end; usually emitted
    #: automatically by the injector, but scriptable directly).
    RESTORE = "restore"
    #: one slot becomes unreadable until rewritten (latent sector error).
    LATENT_SECTOR = "latent-sector"
    #: one slot's payload is silently overwritten with garbage (bit rot).
    BIT_ROT = "bit-rot"
    #: the disk's every service time is multiplied by ``factor``.
    STRAGGLER = "straggler"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    at_op:
        Operation count at which the event fires (1 = before the first
        batch executes after attach).
    kind:
        The failure class.
    disk:
        Target disk id.
    slot:
        Target slot for :attr:`FaultKind.LATENT_SECTOR` / ``BIT_ROT``;
        ``None`` lets the injector pick a random *occupied* slot from its
        seeded RNG.
    factor:
        Straggler service-time multiplier (``STRAGGLER`` only).
    duration_ops:
        Outage length in operations (``TRANSIENT_OUTAGE`` only); the
        matching ``RESTORE`` fires ``duration_ops`` operations later.
    """

    at_op: int
    kind: FaultKind
    disk: int
    slot: int | None = None
    factor: float = 2.0
    duration_ops: int = 4

    def __post_init__(self) -> None:
        if self.at_op < 1:
            raise ValueError(f"at_op must be >= 1, got {self.at_op}")
        if self.disk < 0:
            raise ValueError(f"disk must be >= 0, got {self.disk}")
        if self.slot is not None and self.slot < 0:
            raise ValueError(f"slot must be >= 0, got {self.slot}")
        if self.factor <= 0:
            raise ValueError(f"factor must be > 0, got {self.factor}")
        if self.duration_ops < 1:
            raise ValueError(f"duration_ops must be >= 1, got {self.duration_ops}")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered set of fault events."""

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.at_op))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    @classmethod
    def scripted(cls, events: list[FaultEvent] | tuple[FaultEvent, ...]) -> "FaultSchedule":
        """Build a schedule from an explicit event list."""
        return cls(tuple(events))

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        ops: int,
        num_disks: int,
        crash_prob: float = 0.0,
        outage_prob: float = 0.0,
        latent_prob: float = 0.0,
        bitrot_prob: float = 0.0,
        straggler_prob: float = 0.0,
        max_disk_failures: int = 1,
        max_slot_faults: int | None = None,
        straggler_factor: float = 3.0,
        outage_ops: int = 4,
    ) -> "FaultSchedule":
        """Draw a probabilistic schedule from a seeded RNG.

        Each operation tick ``1..ops`` draws one Bernoulli per fault
        class; a hit schedules that fault on a uniformly random disk (slot
        selection is deferred to the injector, which knows occupancy).
        Whole-disk failures (crash + outage) are capped at
        ``max_disk_failures`` *and* spread over distinct disks, so a
        schedule never exceeds the code's fault tolerance by construction
        — pass the code's tolerance as the cap.  ``max_slot_faults``
        optionally caps latent + bit-rot events the same way: a row can
        accumulate at most one erasure per slot fault plus one per failed
        disk, so ``max_disk_failures + max_slot_faults <= tolerance``
        keeps *every* row decodable regardless of where the slots land.

        The same ``seed`` and parameters always produce the identical
        schedule (the determinism contract CI's fault matrix relies on).
        """
        if ops < 1:
            raise ValueError(f"ops must be >= 1, got {ops}")
        if num_disks < 1:
            raise ValueError(f"num_disks must be >= 1, got {num_disks}")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        failures_left = max_disk_failures
        slots_left = max_slot_faults if max_slot_faults is not None else -1
        failed_disks: set[int] = set()
        per_kind = (
            (FaultKind.CRASH, crash_prob),
            (FaultKind.TRANSIENT_OUTAGE, outage_prob),
            (FaultKind.LATENT_SECTOR, latent_prob),
            (FaultKind.BIT_ROT, bitrot_prob),
            (FaultKind.STRAGGLER, straggler_prob),
        )
        for op in range(1, ops + 1):
            for kind, prob in per_kind:
                if prob <= 0.0 or rng.random() >= prob:
                    continue
                disk = int(rng.integers(0, num_disks))
                if kind in (FaultKind.CRASH, FaultKind.TRANSIENT_OUTAGE):
                    if failures_left <= 0 or disk in failed_disks:
                        continue
                    failures_left -= 1
                    failed_disks.add(disk)
                elif kind in (FaultKind.LATENT_SECTOR, FaultKind.BIT_ROT):
                    if slots_left == 0:
                        continue
                    slots_left -= 1
                events.append(
                    FaultEvent(
                        at_op=op,
                        kind=kind,
                        disk=disk,
                        factor=straggler_factor,
                        duration_ops=outage_ops,
                    )
                )
        return cls(tuple(events))
