"""Online straggler detection from observed service times.

The injector's :attr:`~repro.faults.events.FaultKind.STRAGGLER` events
multiply a disk's service time silently — nothing in the array flags the
disk as slow, exactly like a real drive with a dying head or a noisy
neighbour.  :class:`StragglerDetector` recovers the signal the way a
frontend would: it compares each sub-read's *observed* service time
against the disk model's *nominal* prediction for the same access batch
and keeps a per-disk EWMA of the ratio.  A disk whose smoothed ratio
exceeds the threshold is flagged, and the open-loop pipeline
(:mod:`repro.engine.pipeline`) uses the flag to launch reconstruction
hedges before the usual hedge deadline.

The detector is model-relative, so a disk that is slow because its batch
is large is *not* flagged — only one that is slow relative to what the
elevator model says the batch should cost.
"""

from __future__ import annotations

__all__ = ["StragglerDetector"]


class StragglerDetector:
    """Per-disk EWMA of observed/nominal service-time ratios.

    Parameters
    ----------
    threshold:
        Smoothed ratio above which a disk counts as straggling.
    min_samples:
        Observations required before a disk may be flagged (a single
        unlucky batch must not trigger hedging storms).
    alpha:
        EWMA smoothing factor; higher reacts faster, lower is steadier.
    """

    def __init__(
        self,
        *,
        threshold: float = 2.0,
        min_samples: int = 4,
        alpha: float = 0.3,
    ) -> None:
        if threshold <= 1.0:
            raise ValueError(f"threshold must be > 1, got {threshold}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.threshold = threshold
        self.min_samples = min_samples
        self.alpha = alpha
        self._ewma: dict[int, float] = {}
        self._samples: dict[int, int] = {}

    def observe(self, disk: int, nominal_s: float, actual_s: float) -> None:
        """Fold one completed sub-read into the disk's smoothed ratio."""
        if nominal_s <= 0.0:
            return
        ratio = actual_s / nominal_s
        prev = self._ewma.get(disk)
        if prev is None:
            self._ewma[disk] = ratio
        else:
            self._ewma[disk] = prev + self.alpha * (ratio - prev)
        self._samples[disk] = self._samples.get(disk, 0) + 1

    def ratio(self, disk: int) -> float:
        """Current smoothed observed/nominal ratio (1.0 when unseen)."""
        return self._ewma.get(disk, 1.0)

    def samples(self, disk: int) -> int:
        """Observations folded in for ``disk``."""
        return self._samples.get(disk, 0)

    def is_straggling(self, disk: int) -> bool:
        """Whether ``disk`` is currently flagged."""
        return (
            self._samples.get(disk, 0) >= self.min_samples
            and self._ewma.get(disk, 1.0) > self.threshold
        )

    def straggling(self) -> list[int]:
        """All currently flagged disks, ascending."""
        return sorted(d for d in self._ewma if self.is_straggling(d))

    def reset(self) -> None:
        """Forget every observation."""
        self._ewma.clear()
        self._samples.clear()

    def snapshot(self) -> dict:
        """Plain-dict view for metrics export."""
        return {
            "threshold": self.threshold,
            "flagged": self.straggling(),
            "ratios": {
                str(d): round(r, 4) for d, r in sorted(self._ewma.items())
            },
        }
