"""Deterministic fault injection against a :class:`DiskArray`.

The injector attaches to the array's ``on_batch_start`` seam, so its
operation clock ticks once per :meth:`DiskArray.execute_batch` call —
every store read, scrub row, or rebuild helper fetch advances it.  Faults
therefore land *mid-workload* (between the requests of one service batch,
or between planning and execution of a single request), which is exactly
the regime the self-healing read path has to survive.

Everything is deterministic: scripted schedules fire at fixed operation
counts, and the only randomness (picking an occupied slot when an event
does not name one, garbage bytes for bit rot) comes from the injector's
own seeded generator.
"""

from __future__ import annotations

import heapq
from itertools import count

from numpy import random as np_random

from ..disks.array import DiskArray
from .events import FaultEvent, FaultKind, FaultSchedule

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives a fault schedule against a disk array.

    Parameters
    ----------
    array:
        The target array.
    schedule:
        Initial fault schedule; more events can be added with :meth:`add`.
    seed:
        Seed for slot selection and bit-rot garbage.

    Usage::

        injector = FaultInjector(store.array, schedule, seed=7).attach()
        ...run workload...
        injector.detach()

    ``fired`` records ``(op_count, event)`` for every fault that actually
    landed, in firing order — the audit trail tests and the CLI print.
    """

    def __init__(
        self,
        array: DiskArray,
        schedule: FaultSchedule | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.array = array
        # single bound-method object, so attach/detach identity checks work
        self._hook = self.tick
        self._rng = np_random.default_rng(seed)
        self._seq = count()
        self._pending: list[tuple[int, int, FaultEvent]] = []
        self.op_count = 0
        self.fired: list[tuple[int, FaultEvent]] = []
        #: events that could not be applied (e.g. bit rot on an empty disk).
        self.skipped: list[tuple[int, FaultEvent]] = []
        for event in schedule or ():
            self.add(event)

    # ------------------------------------------------------------------
    def add(self, event: FaultEvent) -> None:
        """Schedule one more event (may be in the past; fires next tick)."""
        heapq.heappush(self._pending, (event.at_op, next(self._seq), event))

    @property
    def pending(self) -> int:
        """Events not yet fired."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def register_metrics(self, registry) -> "FaultInjector":
        """Publish the injector's audit counters as the ``faults``
        namespace of a :class:`repro.obs.MetricsRegistry`.

        Duck-typed (no obs import): the injector only needs
        ``register_collector``.  Returns self for chaining with
        :meth:`attach`.
        """
        registry.register_collector("faults", self.stats_snapshot)
        return self

    def stats_snapshot(self) -> dict:
        """Plain-dict audit view for the metrics snapshot."""
        by_kind: dict[str, int] = {}
        for _, event in self.fired:
            by_kind[event.kind.value] = by_kind.get(event.kind.value, 0) + 1
        return {
            "op_count": self.op_count,
            "events_fired": len(self.fired),
            "events_skipped": len(self.skipped),
            "events_pending": self.pending,
            "fired_by_kind": by_kind,
        }

    def attach(self) -> "FaultInjector":
        """Hook into the array's batch seam.  Returns self for chaining."""
        if self.array.on_batch_start not in (None, self._hook):
            raise RuntimeError("array already has a batch observer attached")
        self.array.on_batch_start = self._hook
        return self

    def detach(self) -> None:
        """Unhook from the array (pending events stop firing)."""
        if self.array.on_batch_start is self._hook:
            self.array.on_batch_start = None

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance the operation clock and fire every due event."""
        self.op_count += 1
        while self._pending and self._pending[0][0] <= self.op_count:
            _, _, event = heapq.heappop(self._pending)
            self._fire(event)

    def _fire(self, event: FaultEvent) -> None:
        if not 0 <= event.disk < len(self.array):
            self.skipped.append((self.op_count, event))
            return
        disk = self.array[event.disk]
        kind = event.kind
        if kind is FaultKind.CRASH:
            disk.fail()
        elif kind is FaultKind.TRANSIENT_OUTAGE:
            disk.fail()
            self.add(
                FaultEvent(
                    at_op=self.op_count + event.duration_ops,
                    kind=FaultKind.RESTORE,
                    disk=event.disk,
                )
            )
        elif kind is FaultKind.RESTORE:
            disk.restore(wipe=False)
        elif kind is FaultKind.STRAGGLER:
            disk.slowdown = event.factor
        elif kind is FaultKind.LATENT_SECTOR:
            slot = event.slot if event.slot is not None else self._pick_slot(disk)
            if slot is None:
                self.skipped.append((self.op_count, event))
                return
            disk.mark_unreadable(slot)
        elif kind is FaultKind.BIT_ROT:
            if disk.failed:
                self.skipped.append((self.op_count, event))
                return
            slot = event.slot if event.slot is not None else self._pick_slot(disk)
            if slot is None or not disk.has_slot(slot):
                self.skipped.append((self.op_count, event))
                return
            disk.corrupt_slot(slot, self._rng)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown fault kind {kind!r}")
        self.fired.append((self.op_count, event))

    def _pick_slot(self, disk) -> int | None:
        """A random occupied slot on ``disk`` (None if the disk is empty)."""
        occupied = disk.slot_ids()
        if not occupied:
            return None
        return int(occupied[int(self._rng.integers(0, len(occupied)))])
