"""Fault injection: deterministic failure schedules for the disk array.

Failures in erasure-coded clusters are continuous background events, not
exceptions (Rashmi et al., PAPERS.md); this package makes them first-class
in the simulator so the read path can be *tested* against them:

* :mod:`repro.faults.events` — the injection DSL: :class:`FaultKind`,
  :class:`FaultEvent`, and scripted / seeded-random :class:`FaultSchedule`;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which attaches to
  a :class:`~repro.disks.array.DiskArray` and fires events on a
  per-operation clock;
* :mod:`repro.faults.stragglers` — :class:`StragglerDetector`, which
  recovers silent slowdowns from observed service times and drives the
  pipeline's pre-deadline hedging.

The matching recovery machinery lives in the store (checksums + self-heal)
and the service (:meth:`repro.engine.service.ReadService.submit` retry
loop).
"""

from .events import FaultEvent, FaultKind, FaultSchedule
from .injector import FaultInjector
from .stragglers import StragglerDetector

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "StragglerDetector",
]
