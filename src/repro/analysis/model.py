"""Exact analytical model of read performance (no Monte Carlo).

The paper evaluates by sampling random requests; but under the chunk-store
disk model the per-request speed depends only on (a) the request size and
(b) the start *phase* relative to the placement's period — the disk
assignment of logical element ``t`` is periodic in ``t``.  Enumerating the
finite phase space therefore yields the exact expectation the Monte Carlo
experiment estimates, which gives the library a second, independent
implementation of every Figure 8/9 quantity:

* analytic predictions validate the simulator (tests require agreement
  within sampling noise);
* the closed forms explain the results: standard max load is exactly
  ``ceil(L/k)``, EC-FRM's exactly ``ceil(L/n)``, so the speed ratio on
  size-L reads is ``ceil(L/k)/ceil(L/n)`` — the whole paper in one line.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, lcm
from typing import Sequence

from ..disks.model import DiskModel
from ..engine.degraded import plan_degraded_read
from ..engine.planner import plan_normal_read
from ..engine.requests import ReadRequest
from ..layout.base import Placement

__all__ = [
    "placement_period",
    "exact_max_load_distribution",
    "expected_max_load",
    "predict_normal_speed",
    "predict_degraded_cost",
    "predict_degraded_speed",
    "speed_ratio_bound",
    "AnalyticPrediction",
]


def placement_period(placement: Placement) -> int:
    """Smallest ``P`` such that shifting a request by ``P`` logical
    elements shifts nothing (disk assignment pattern repeats).

    * standard: disk(t) = t mod k -> period k;
    * rotated(step s): disk(t) depends on (t mod k, row mod n) -> k*n;
    * EC-FRM: disk(t) = t mod n -> period lcm(k, n) covers row phase too.

    A safe common period is ``lcm(k, n) * n`` but the bound below is tight
    enough for all shipped placements and asserted in tests.
    """
    k, n = placement.k, placement.num_disks
    return lcm(k, n * k)


def exact_max_load_distribution(
    placement: Placement, size: int
) -> dict[int, float]:
    """Exact distribution of the most-loaded disk's access count for a
    normal read of ``size`` elements at a uniformly random start."""
    if size <= 0:
        raise ValueError(f"size must be > 0, got {size}")
    period = placement_period(placement)
    counts: dict[int, int] = {}
    for start in range(period):
        plan = plan_normal_read(placement, ReadRequest(start, size), 1)
        m = plan.max_disk_load
        counts[m] = counts.get(m, 0) + 1
    return {m: c / period for m, c in sorted(counts.items())}


def expected_max_load(placement: Placement, size: int) -> float:
    """Exact expected most-loaded-disk access count for a size-L read."""
    dist = exact_max_load_distribution(placement, size)
    return sum(m * p for m, p in dist.items())


@dataclass(frozen=True)
class AnalyticPrediction:
    """Exact expectations for a placement under the paper workload."""

    placement_name: str
    mean_speed_mib_s: float
    mean_max_load: float


def predict_normal_speed(
    placement: Placement,
    model: DiskModel,
    element_size: int,
    sizes: Sequence[int] = tuple(range(1, 21)),
) -> AnalyticPrediction:
    """Exact mean normal-read speed over uniformly weighted ``sizes``.

    Enumerates every (start phase, size) pair and times the plan with the
    same service model as the simulator — an exact average where the
    Monte Carlo harness samples.
    """
    period = placement_period(placement)
    total_speed = 0.0
    total_load = 0.0
    samples = 0
    for size in sizes:
        for start in range(period):
            plan = plan_normal_read(placement, ReadRequest(start, size), element_size)
            completion = max(
                model.service_time_s(batch)
                for batch in plan.per_disk_batches().values()
            )
            total_speed += plan.requested_bytes / completion
            total_load += plan.max_disk_load
            samples += 1
    return AnalyticPrediction(
        placement_name=placement.name,
        mean_speed_mib_s=total_speed / samples / (1024 * 1024),
        mean_max_load=total_load / samples,
    )


def predict_degraded_cost(
    placement: Placement,
    sizes: Sequence[int] = tuple(range(1, 21)),
) -> float:
    """Exact mean degraded read cost over (start phase, size, failed disk)."""
    period = placement_period(placement)
    n = placement.num_disks
    total = 0.0
    samples = 0
    for size in sizes:
        for start in range(period):
            for failed in range(n):
                plan = plan_degraded_read(placement, ReadRequest(start, size), failed, 1)
                total += plan.read_cost
                samples += 1
    return total / samples


def predict_degraded_speed(
    placement: Placement,
    model: DiskModel,
    element_size: int,
    sizes: Sequence[int] = tuple(range(1, 21)),
) -> AnalyticPrediction:
    """Exact mean degraded-read speed over (start phase, size, failed disk).

    The Monte-Carlo-free counterpart of
    :func:`repro.harness.experiment.run_degraded_read_experiment` — the
    figure 9(c)/(d) quantity by enumeration.
    """
    period = placement_period(placement)
    n = placement.num_disks
    total_speed = 0.0
    total_load = 0.0
    samples = 0
    for size in sizes:
        for start in range(period):
            for failed in range(n):
                plan = plan_degraded_read(
                    placement, ReadRequest(start, size), failed, element_size
                )
                completion = max(
                    model.service_time_s(batch)
                    for batch in plan.per_disk_batches().values()
                )
                total_speed += plan.requested_bytes / completion
                total_load += plan.max_disk_load
                samples += 1
    return AnalyticPrediction(
        placement_name=placement.name,
        mean_speed_mib_s=total_speed / samples / (1024 * 1024),
        mean_max_load=total_load / samples,
    )


def speed_ratio_bound(k: int, n: int, size: int) -> float:
    """Closed form: EC-FRM/standard speed ratio for a size-L read under
    the chunk-store model — ``ceil(L/k) / ceil(L/n)``.

    This is the entire paper's normal-read result in one expression: the
    gain is 1 for L <= k, peaks at L where ceil(L/k) jumps but ceil(L/n)
    has not, and tends to n/k for large L.
    """
    if not 0 < k < n or size <= 0:
        raise ValueError(f"need 0 < k < n and size > 0, got k={k} n={n} L={size}")
    return ceil(size / k) / ceil(size / n)
