"""Analytical (exact-enumeration) model of the paper's metrics.

A Monte-Carlo-free second implementation of the Figure 8/9 quantities,
used to cross-validate the simulator and to expose the closed-form
mechanics of the EC-FRM gain.
"""

from .updates import (
    full_stripe_write_cost,
    mean_update_penalty,
    update_cost_table,
    update_penalty,
)
from .model import (
    AnalyticPrediction,
    exact_max_load_distribution,
    expected_max_load,
    placement_period,
    predict_degraded_cost,
    predict_degraded_speed,
    predict_normal_speed,
    speed_ratio_bound,
)

__all__ = [
    "AnalyticPrediction",
    "placement_period",
    "exact_max_load_distribution",
    "expected_max_load",
    "predict_normal_speed",
    "predict_degraded_cost",
    "predict_degraded_speed",
    "speed_ratio_bound",
    "update_penalty",
    "mean_update_penalty",
    "full_stripe_write_cost",
    "update_cost_table",
]
