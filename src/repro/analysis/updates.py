"""Write/update cost analysis — why cloud stores write full stripes.

The paper dismisses write performance in two sentences (§I, §II-D):
cloud systems buffer appends and encode *full stripes*, so per-code write
differences vanish.  This module quantifies the claim it rests on: the
cost of the alternative — in-place partial updates — per code.

* ``update_penalty(code, j)`` — elements that must be rewritten when data
  element ``j`` changes: the element itself plus every parity whose
  equation contains it (read-modify-write of each).
* ``full_stripe_write_cost(code)`` — element writes per logical element
  when writing whole rows: ``n / k``, identical in structure for every
  systematic code, which is exactly the paper's point.
"""

from __future__ import annotations

import numpy as np

from ..codes.base import ErasureCode, MatrixCode

__all__ = [
    "update_penalty",
    "mean_update_penalty",
    "full_stripe_write_cost",
    "update_cost_table",
]


def update_penalty(code: ErasureCode, j: int) -> int:
    """Elements rewritten when data element ``j`` is updated in place.

    1 (the element itself) plus the number of parity elements whose
    encoding touches ``j``.
    """
    if not code.is_data(j):
        raise ValueError(f"{j} is not a data element index")
    if isinstance(code, MatrixCode):
        column = code.generator[code.k :, j]
        return 1 + int(np.count_nonzero(column))
    raise TypeError(f"update penalty undefined for {type(code).__name__}")


def mean_update_penalty(code: ErasureCode) -> float:
    """Average in-place update penalty over all data elements."""
    return sum(update_penalty(code, j) for j in range(code.k)) / code.k


def full_stripe_write_cost(code: ErasureCode) -> float:
    """Element writes per logical data element under full-stripe writes."""
    return code.n / code.k


def update_cost_table(codes) -> dict[str, tuple[float, float]]:
    """``describe() -> (mean in-place penalty, full-stripe cost)`` map.

    The gap between the two columns is the quantitative form of the
    paper's "append-only writes make write performance uninteresting"
    argument: full-stripe writes cost ~1.5x per element while in-place
    updates cost 1 + m (RS) or 1 + 1 + m (LRC) rewrites.
    """
    return {
        code.describe(): (mean_update_penalty(code), full_stripe_write_cost(code))
        for code in codes
    }
