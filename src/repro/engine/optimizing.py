"""Bottleneck-aware degraded-read planning (extension beyond the paper).

The baseline planner (:mod:`repro.engine.degraded`) takes each code's
*preferred* repair set — minimal I/O count, maximal overlap with the
request.  The paper's Figure 7(c) shows what that leaves on the table:
the extra helper fetches can land on already-loaded disks and raise the
bottleneck (max per-disk load), which is what actually gates read speed
(§III).

This planner minimizes the bottleneck instead: for each lost element it
enumerates the code's *alternative* repair sets and picks helpers that
keep the per-disk load histogram flat, at equal (or explicitly bounded)
I/O count.  For MDS codes any ``k`` survivors work, so there is real
freedom; for LRC the local set is unique but the planner may fall back
to a global repair when the local one concentrates load.

The paper's future-work reading: EC-FRM + load-aware repair selection.
``benchmarks/bench_optimizing_planner.py`` quantifies the gain.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from ..codes.base import ErasureCode
from ..codes.lrc import LocalReconstructionCode
from ..layout.base import Address, Placement
from .requests import AccessKind, AccessPlan, ElementAccess, ReadRequest

__all__ = ["repair_set_alternatives", "plan_degraded_read_optimized"]


def repair_set_alternatives(
    code: ErasureCode, lost: int, have: frozenset[int], *, limit: int = 24
) -> list[frozenset[int]]:
    """Candidate helper sets for rebuilding ``lost``, cheapest first.

    Always contains the code's preferred plan.  For MDS matrix codes it
    additionally enumerates swaps of the preferred set's non-``have``
    members against unused survivors (each swap of one helper preserves
    decodability for MDS codes: any ``k`` survivors work).  For LRC it
    adds the global repair set as a fallback.
    """
    preferred = code.repair_plan(lost, have)
    alternatives: list[frozenset[int]] = [preferred]

    if isinstance(code, LocalReconstructionCode) and code.is_data(lost):
        # unique minimal local set; the only alternative with bounded cost
        # is an MDS-style global repair via the global parities.
        global_set = frozenset(
            j for j in range(code.k) if j != lost
        ) | {code.global_parity_index(0)}
        alternatives.append(frozenset(global_set))
        return alternatives[:limit]

    survivors = [i for i in range(code.n) if i != lost]
    unused = [i for i in survivors if i not in preferred]
    swappable = sorted(preferred - have)
    for out in swappable:
        for incoming in unused:
            candidate = (preferred - {out}) | {incoming}
            if candidate not in alternatives:
                alternatives.append(candidate)
            if len(alternatives) >= limit:
                return alternatives
    return alternatives


def _is_sufficient(code: ErasureCode, lost: int, helpers: frozenset[int]) -> bool:
    """Check a candidate helper set can actually rebuild ``lost``."""
    from ..codes.base import MatrixCode

    if isinstance(code, MatrixCode):
        return code._repairable_from(lost, helpers)
    return True  # non-matrix codes only ever offer verified sets


def plan_degraded_read_optimized(
    placement: Placement,
    request: ReadRequest,
    failed_disk: int,
    element_size: int,
    *,
    io_slack: int = 1,
) -> AccessPlan:
    """Degraded-read plan minimizing the most-loaded disk.

    Parameters
    ----------
    placement, request, failed_disk, element_size:
        As for :func:`repro.engine.degraded.plan_degraded_read`.
    io_slack:
        How many extra element reads (vs the cheapest repair set per lost
        element) the optimizer may spend to flatten the load histogram.
        ``0`` keeps I/O minimal; the default ``1`` allows one extra read
        per lost element when it removes a hotspot.
    """
    if element_size <= 0:
        raise ValueError(f"element size must be > 0, got {element_size}")
    if not 0 <= failed_disk < placement.num_disks:
        raise ValueError(
            f"failed disk {failed_disk} out of range for {placement.num_disks} disks"
        )
    if io_slack < 0:
        raise ValueError(f"io_slack must be >= 0, got {io_slack}")

    code = placement.code
    plan = AccessPlan(request=request, element_size=element_size, failed_disk=failed_disk)
    loads: Counter = Counter()
    planned: set[Address] = set()
    surviving_by_row: dict[int, set[int]] = {}
    lost: list[tuple[int, int]] = []

    for t in request.elements:
        row, e = placement.row_of_data(t)
        addr = placement.locate_data(t)
        if addr.disk == failed_disk:
            lost.append((row, e))
            continue
        plan.add(ElementAccess(address=addr, kind=AccessKind.REQUESTED, row=row, element=e))
        planned.add(addr)
        loads[addr.disk] += 1
        surviving_by_row.setdefault(row, set()).add(e)

    for row, e in lost:
        have = frozenset(surviving_by_row.get(row, set()))
        candidates = repair_set_alternatives(code, e, have)
        scored = list(
            _scored_candidates(
                code, e, candidates, placement, row, failed_disk, planned, loads
            )
        )
        if not scored:
            raise ValueError(
                f"no feasible repair set for row {row} element {e} with "
                f"disk {failed_disk} down"
            )
        # I/O budget: at most io_slack extra reads beyond the cheapest
        # feasible repair; within budget, flatten the bottleneck.
        cheapest_extra = min(score[1] for score, _, _ in scored)
        within_budget = [
            entry for entry in scored if entry[0][1] <= cheapest_extra + io_slack
        ]
        _, _, fetches = min(within_budget, key=lambda entry: entry[0])
        for h, addr in fetches:
            plan.add(
                ElementAccess(
                    address=addr, kind=AccessKind.RECONSTRUCTION, row=row, element=h
                )
            )
            planned.add(addr)
            loads[addr.disk] += 1
    return plan


def _scored_candidates(
    code: ErasureCode,
    lost: int,
    candidates: Iterable[frozenset[int]],
    placement: Placement,
    row: int,
    failed_disk: int,
    planned: set[Address],
    loads: Counter,
):
    """Yield ``(score, helpers, new_fetches)`` for feasible candidates."""
    for helpers in candidates:
        if not _is_sufficient(code, lost, helpers):
            continue
        new_fetches: list[tuple[int, Address]] = []
        ok = True
        for h in sorted(helpers):
            addr = placement.locate_row_element(row, h)
            if addr.disk == failed_disk:
                ok = False
                break
            if addr not in planned:
                new_fetches.append((h, addr))
        if not ok:
            continue
        trial = loads.copy()
        for _, addr in new_fetches:
            trial[addr.disk] += 1
        score = (
            max(trial.values(), default=0),
            len(new_fetches),
            sum(trial[addr.disk] for _, addr in new_fetches),
        )
        yield score, helpers, new_fetches
