"""Degraded-read planning: serve a read while one disk is down.

Requested elements on surviving disks are fetched directly.  Each requested
element lost with the failed disk is reconstructed inside its candidate
row: the code's :meth:`repair_plan` chooses helper elements, preferring
ones the request already fetches (so the marginal I/O is minimal), and the
planner schedules only the helpers not already in the plan.

A structural invariant shared by all three placement forms makes single-
failure planning exact: every candidate row has **exactly one element per
disk**, so one failed disk erases at most one element of any row and the
single-loss repair API suffices (asserted below).

With a :class:`~repro.net.Topology` attached, helper selection goes
through the minimum-transfer planner: candidate repair sets are priced
by cross-rack bytes then bytes moved against the failed disk's rack.
Either way the plan records its repair traffic in
:attr:`AccessPlan.repair_reads`, so any plan can be summarized against
any topology (the benchmarks compare planners this way).
"""

from __future__ import annotations

from ..layout.base import Address, Placement
from .requests import AccessKind, AccessPlan, ElementAccess, ReadRequest

__all__ = ["plan_degraded_read"]


def plan_degraded_read(
    placement: Placement,
    request: ReadRequest,
    failed_disk: int,
    element_size: int,
    topology=None,
) -> AccessPlan:
    """Build the access plan of a read with ``failed_disk`` down.

    Parameters
    ----------
    placement:
        The form under test; its ``code`` provides repair planning.
    request:
        Contiguous logical element range.
    failed_disk:
        Disk id that is unavailable.
    element_size:
        Element payload size in bytes.
    topology:
        Optional :class:`repro.net.Topology`; when given, each lost
        element's helpers come from
        :func:`repro.net.plan_min_transfer_repair` with the failed
        disk's rack as the repair site.
    """
    if element_size <= 0:
        raise ValueError(f"element size must be > 0, got {element_size}")
    if not 0 <= failed_disk < placement.num_disks:
        raise ValueError(
            f"failed disk {failed_disk} out of range for {placement.num_disks} disks"
        )

    code = placement.code
    plan = AccessPlan(request=request, element_size=element_size, failed_disk=failed_disk)
    planned: set[Address] = set()
    surviving_by_row: dict[int, set[int]] = {}
    lost: list[tuple[int, int]] = []

    # Pass 1: direct fetches for survivors; collect losses.
    for t in request.elements:
        row, e = placement.row_of_data(t)
        addr = placement.locate_data(t)
        if addr.disk == failed_disk:
            if any(le[0] == row for le in lost):  # pragma: no cover - layout invariant
                raise AssertionError(
                    f"row {row} has two elements on disk {failed_disk}; "
                    "placement violates the one-element-per-disk invariant"
                )
            lost.append((row, e))
            continue
        plan.add(ElementAccess(address=addr, kind=AccessKind.REQUESTED, row=row, element=e))
        planned.add(addr)
        surviving_by_row.setdefault(row, set()).add(e)

    # Pass 2: reconstruction fetches for each lost element.
    site_rack = topology.rack_of(failed_disk) if topology is not None else None
    for row, e in lost:
        have = frozenset(surviving_by_row.get(row, set()))
        if topology is None:
            reads = [(h, 1.0) for h in sorted(code.repair_plan(e, have))]
        else:
            from ..net.planner import plan_min_transfer_repair

            transfer = plan_min_transfer_repair(
                code,
                e,
                element_rack=lambda h, row=row: topology.rack_of(
                    placement.locate_row_element(row, h).disk
                ),
                site_rack=site_rack,
                element_size=element_size,
                have=have,
            )
            reads = list(transfer.reads)
        plan.repair_sets += 1
        for h, fraction in reads:
            addr = placement.locate_row_element(row, h)
            if addr.disk == failed_disk:  # pragma: no cover - repair invariant
                raise AssertionError(
                    f"repair plan for row {row} element {e} uses helper {h} "
                    f"on the failed disk"
                )
            plan.repair_reads.append((addr, _ship_bytes(fraction, element_size)))
            if addr in planned:
                continue
            plan.add(
                ElementAccess(
                    address=addr, kind=AccessKind.RECONSTRUCTION, row=row, element=h
                )
            )
            planned.add(addr)
    return plan


def _ship_bytes(fraction: float, element_size: int) -> int:
    from ..net.planner import ship_bytes

    return ship_bytes(fraction, element_size)
