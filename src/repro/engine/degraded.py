"""Degraded-read planning: serve a read while one disk is down.

Requested elements on surviving disks are fetched directly.  Each requested
element lost with the failed disk is reconstructed inside its candidate
row: the code's :meth:`repair_plan` chooses helper elements, preferring
ones the request already fetches (so the marginal I/O is minimal), and the
planner schedules only the helpers not already in the plan.

A structural invariant shared by all three placement forms makes single-
failure planning exact: every candidate row has **exactly one element per
disk**, so one failed disk erases at most one element of any row and the
single-loss repair API suffices (asserted below).
"""

from __future__ import annotations

from ..layout.base import Address, Placement
from .requests import AccessKind, AccessPlan, ElementAccess, ReadRequest

__all__ = ["plan_degraded_read"]


def plan_degraded_read(
    placement: Placement,
    request: ReadRequest,
    failed_disk: int,
    element_size: int,
) -> AccessPlan:
    """Build the access plan of a read with ``failed_disk`` down.

    Parameters
    ----------
    placement:
        The form under test; its ``code`` provides repair planning.
    request:
        Contiguous logical element range.
    failed_disk:
        Disk id that is unavailable.
    element_size:
        Element payload size in bytes.
    """
    if element_size <= 0:
        raise ValueError(f"element size must be > 0, got {element_size}")
    if not 0 <= failed_disk < placement.num_disks:
        raise ValueError(
            f"failed disk {failed_disk} out of range for {placement.num_disks} disks"
        )

    code = placement.code
    plan = AccessPlan(request=request, element_size=element_size, failed_disk=failed_disk)
    planned: set[Address] = set()
    surviving_by_row: dict[int, set[int]] = {}
    lost: list[tuple[int, int]] = []

    # Pass 1: direct fetches for survivors; collect losses.
    for t in request.elements:
        row, e = placement.row_of_data(t)
        addr = placement.locate_data(t)
        if addr.disk == failed_disk:
            if any(le[0] == row for le in lost):  # pragma: no cover - layout invariant
                raise AssertionError(
                    f"row {row} has two elements on disk {failed_disk}; "
                    "placement violates the one-element-per-disk invariant"
                )
            lost.append((row, e))
            continue
        plan.add(ElementAccess(address=addr, kind=AccessKind.REQUESTED, row=row, element=e))
        planned.add(addr)
        surviving_by_row.setdefault(row, set()).add(e)

    # Pass 2: reconstruction fetches for each lost element.
    for row, e in lost:
        have = frozenset(surviving_by_row.get(row, set()))
        helpers = code.repair_plan(e, have)
        for h in sorted(helpers):
            addr = placement.locate_row_element(row, h)
            if addr.disk == failed_disk:  # pragma: no cover - repair invariant
                raise AssertionError(
                    f"repair plan for row {row} element {e} uses helper {h} "
                    f"on the failed disk"
                )
            if addr in planned:
                continue
            plan.add(
                ElementAccess(
                    address=addr, kind=AccessKind.RECONSTRUCTION, row=row, element=h
                )
            )
            planned.add(addr)
    return plan
