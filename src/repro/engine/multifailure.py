"""Degraded-read planning under multiple concurrent disk failures.

The paper evaluates single-failure degraded reads (the dominant case —
its §II-D cites that 99.75% of recoveries are single-disk), but cloud
operators care how gracefully performance degrades as failures stack up
during upgrades.  This planner generalises the single-failure one: per
candidate row it determines the erased elements, selects a sufficient
helper set (preferring elements the request already fetches, then data,
then parities, adding more until the erasures are decodable), and
schedules only the missing fetches.

``benchmarks/bench_multi_failure.py`` sweeps the failure count and shows
the EC-FRM ordering persists all the way to the fault-tolerance limit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..codes.base import DecodeFailure, ErasureCode, MatrixCode
from ..gf import matrix as gfm
from ..layout.base import Address, Placement
from .requests import AccessKind, AccessPlan, ElementAccess, ReadRequest

__all__ = ["plan_degraded_read_multi"]


def _sufficient_helpers(
    code: ErasureCode, erased: Sequence[int], preferred: Sequence[int]
) -> frozenset[int]:
    """A helper set sufficient to decode ``erased``, built greedily from
    ``preferred`` order; minimal in the sense of not adding helpers after
    sufficiency is reached."""
    if not isinstance(code, MatrixCode):
        raise TypeError("multi-failure planning requires a MatrixCode candidate")
    field = code.field

    def covers(helpers: list[int]) -> bool:
        # erased rows inside span(helpers) <=> stacking them adds no rank
        own = gfm.rank(field, code.generator[helpers]) if helpers else 0
        combined = gfm.rank(field, code.generator[helpers + list(erased)])
        return combined == own

    chosen: list[int] = []
    own_rank = 0
    reached = False
    for h in preferred:
        new_rank = gfm.rank(field, code.generator[chosen + [h]])
        if new_rank == own_rank:
            continue  # h adds nothing to the span
        chosen.append(h)
        own_rank = new_rank
        if covers(chosen):
            reached = True
            break
    if not reached:
        raise DecodeFailure(f"erasures {sorted(erased)} not decodable from survivors")

    # Prune: drop helpers (least-preferred first) whose removal keeps
    # coverage — the greedy keeps rank-increasing but irrelevant picks.
    for h in reversed(chosen.copy()):
        trimmed = [x for x in chosen if x != h]
        if covers(trimmed):
            chosen = trimmed
    return frozenset(chosen)


def plan_degraded_read_multi(
    placement: Placement,
    request: ReadRequest,
    failed_disks: Iterable[int],
    element_size: int,
) -> AccessPlan:
    """Access plan for a read while several disks are down.

    Degenerates to the single-failure planner's behaviour for one failed
    disk (helper sets may differ but the counting semantics match).  The
    returned plan's ``failed_disk`` field holds the first failed disk for
    reporting; the plan itself avoids *all* failed disks.
    """
    failed = sorted({int(d) for d in failed_disks})
    if element_size <= 0:
        raise ValueError(f"element size must be > 0, got {element_size}")
    for d in failed:
        if not 0 <= d < placement.num_disks:
            raise ValueError(
                f"failed disk {d} out of range for {placement.num_disks} disks"
            )
    failed_set = set(failed)
    code = placement.code
    plan = AccessPlan(
        request=request,
        element_size=element_size,
        failed_disk=failed[0] if failed else None,
    )
    planned: set[Address] = set()
    surviving_by_row: dict[int, set[int]] = {}
    lost_by_row: dict[int, list[int]] = {}

    for t in request.elements:
        row, e = placement.row_of_data(t)
        addr = placement.locate_data(t)
        if addr.disk in failed_set:
            lost_by_row.setdefault(row, []).append(e)
            continue
        plan.add(ElementAccess(address=addr, kind=AccessKind.REQUESTED, row=row, element=e))
        planned.add(addr)
        surviving_by_row.setdefault(row, set()).add(e)

    for row, erased_requested in lost_by_row.items():
        erased_all = [
            e
            for e in range(code.n)
            if placement.locate_row_element(row, e).disk in failed_set
        ]
        # Solve for every erased *data* element of the row, not only the
        # requested ones: the equation solver treats them all as unknowns,
        # so the helper span must determine them all.
        erased_data = [e for e in erased_all if code.is_data(e)]
        have = surviving_by_row.get(row, set())
        preference = sorted(
            (e for e in range(code.n) if e not in erased_all),
            key=lambda e: (e not in have, code.is_parity(e), e),
        )
        helpers = _sufficient_helpers(code, erased_data, preference)
        for h in sorted(helpers):
            addr = placement.locate_row_element(row, h)
            if addr in planned:
                continue
            plan.add(
                ElementAccess(
                    address=addr, kind=AccessKind.RECONSTRUCTION, row=row, element=h
                )
            )
            planned.add(addr)
    return plan
