"""Concurrent read service: batched, plan-cached reads over a BlockStore.

The paper's throughput story (§VI) only materializes under concurrency —
a placement that spreads load across all ``n`` spindles beats the
``k``-disk standard form on *aggregate* throughput even when single-request
latency ties.  :class:`ReadService` is the frontend that realizes the
regime end to end:

* requests are **planned through an LRU** :class:`~repro.engine.plancache.
  PlanCache`, so repeated workloads skip the planners entirely;
* a batch is **timed by the closed-loop model**
  (:func:`~repro.engine.concurrency.simulate_concurrent`) at a configurable
  queue depth, per-disk FCFS;
* payloads are **materialized for real** through the store's unified
  accounting pass, so every physical access lands in ``DiskStats`` exactly
  once and the bytes returned are decode-verified.

Import note: this module must not import :mod:`repro.store` or
:mod:`repro.harness` at runtime (both sit above the engine in the layer
stack); the store is duck-typed via the seam methods ``byte_request`` /
``execute_read``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..codes.base import DecodeFailure
from ..disks import DiskFailedError
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from .concurrency import ThroughputResult, simulate_concurrent
from .plancache import PlanCache
from .requests import AccessPlan

if TYPE_CHECKING:  # pragma: no cover - layering: store imports engine
    from ..store.blockstore import BlockStore

__all__ = ["ServiceCounters", "BatchReadResult", "ReadService"]


@dataclass
class ServiceCounters:
    """Cumulative service-level counters (cache counters live on the cache)."""

    requests: int = 0
    batches: int = 0
    bytes_served: int = 0
    max_queue_depth: int = 0
    #: batches re-executed after a mid-batch fault invalidated their plans.
    retries: int = 0
    #: requests served through a degraded (reconstructing) path.
    degraded_serves: int = 0
    #: physical element reads each disk served on behalf of this service.
    disk_load: Counter = field(default_factory=Counter)

    def observe_batch(
        self,
        plans: Sequence[AccessPlan],
        nbytes: int,
        queue_depth: int | None,
        *,
        nrequests: int | None = None,
        disk_deltas: Counter | None = None,
    ) -> None:
        """Fold one executed batch into the counters.

        ``nrequests`` overrides the request count for plan-less batches
        (the multi-failure fallback reads rows directly, without plans).
        ``queue_depth`` is ``None`` for batches the closed-loop model
        never timed (again the multi-failure fallback) — an untimed batch
        must not inflate ``max_queue_depth``, which reports the deepest
        queue actually *simulated*.  ``disk_deltas`` supplies measured
        per-disk access counts (snapshot deltas around the executed pass);
        when given it replaces the plan-derived loads, capturing physical
        work plans cannot see — survivor fetches of the multi-failure
        path, aborted retry attempts, self-heal refetches.
        """
        self.requests += len(plans) if nrequests is None else nrequests
        self.batches += 1
        self.bytes_served += nbytes
        if queue_depth is not None:
            self.max_queue_depth = max(self.max_queue_depth, queue_depth)
        if disk_deltas is not None:
            self.disk_load.update(disk_deltas)
        else:
            for plan in plans:
                self.disk_load.update(plan.per_disk_loads())

    def load_histogram(self) -> dict[int, int]:
        """Per-disk element-read histogram, ascending disk id."""
        return {d: self.disk_load[d] for d in sorted(self.disk_load)}


@dataclass(frozen=True)
class BatchReadResult:
    """Outcome of one :meth:`ReadService.submit` batch.

    Attributes
    ----------
    payloads:
        The requested byte ranges, in submission order, decode-verified.
    throughput:
        Closed-loop timing of the batch at the submitted queue depth.
        ``None`` when the batch was served through the plan-less
        multi-failure fallback (no access plans to time).
    plans:
        The access plans executed (cached or fresh), submission order.
        Empty for the multi-failure fallback.
    cache_hits / cache_misses:
        Plan-cache outcomes for *this batch* only.
    retries:
        Times this batch was replanned and re-executed after a mid-batch
        fault invalidated its plans.
    """

    payloads: list[bytes]
    throughput: ThroughputResult | None
    plans: list[AccessPlan]
    cache_hits: int
    cache_misses: int
    retries: int = 0


class ReadService:
    """High-throughput read frontend over a :class:`BlockStore`.

    Parameters
    ----------
    store:
        The backing block store.
    cache:
        Plan cache to use; a private one of ``cache_capacity`` entries is
        created when omitted.  Sharing one cache across services over
        geometrically identical stores is safe and intended.
    cache_capacity:
        Capacity of the private cache when ``cache`` is omitted.
    tracer:
        Span tracer for the request pipeline.  Defaults to the store's
        tracer when it has one (so `repro.open_store` wires a single
        tracer through both layers), else the shared disabled tracer.
    registry:
        Metrics registry to publish into.  Defaults to the store's
        registry when it has one, else a fresh private registry.  The
        service registers ``service``/``cache`` collectors, plus
        ``health``/``disks`` when the store exposes them (registration is
        idempotent, so sharing the store's registry never double
        registers).
    """

    def __init__(
        self,
        store: "BlockStore",
        *,
        cache: PlanCache | None = None,
        cache_capacity: int = 256,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.cache = cache if cache is not None else PlanCache(cache_capacity)
        self.counters = ServiceCounters()
        if tracer is None:
            tracer = getattr(store, "tracer", None)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if registry is None:
            registry = getattr(store, "registry", None)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry.register_collector("service", self._service_snapshot)
        self.registry.register_collector("cache", self.cache.stats.snapshot)
        # The engine cannot import the store layer; pick up its metric
        # surfaces duck-typed, same as the health counters always were.
        health = getattr(store, "health", None)
        if health is not None:
            self.registry.register_collector("health", health.snapshot)
        array = getattr(store, "array", None)
        if array is not None and hasattr(array, "stats_snapshot"):
            self.registry.register_collector("disks", array.stats_snapshot)

    # ------------------------------------------------------------------
    def plan(self, offset: int, length: int) -> AccessPlan:
        """Plan one byte range through the cache (no execution).

        Raises
        ------
        repro.engine.plancache.UnsupportedFailurePatternError
            If two or more disks are currently failed: such patterns have
            no plan object and must be served through the store's
            ``read_degraded_multi`` fallback (:meth:`submit` routes them
            there automatically).
        """
        plan, _ = self._plan(offset, length, self.store.array.failed_disks)
        return plan

    def _plan(
        self, offset: int, length: int, failed: Sequence[int]
    ) -> tuple[AccessPlan, bool]:
        """Plan through the cache under an explicit failure signature.

        ``submit`` freezes the signature at batch start so a fault firing
        mid-batch cannot split one batch across two signatures — exactly
        the semantics of planning the whole batch up front.  Returns the
        plan and whether it came from the cache, so callers can count
        their *own* cache outcomes locally instead of diffing the global
        stats (which other services sharing the cache also move).
        """
        request = self.store.byte_request(offset, length)
        t = self.tracer
        if not t.enabled:
            cached = self.cache.lookup(
                self.store.placement, request, self.store.element_size, failed
            )
            if cached is not None:
                return cached, True
            return (
                self.cache.build(
                    self.store.placement, request, self.store.element_size, failed
                ),
                False,
            )
        with t.span("cache_lookup") as sp:
            cached = self.cache.lookup(
                self.store.placement,
                request,
                self.store.element_size,
                sorted(failed),
            )
            sp.set(hit=cached is not None)
        if cached is not None:
            return cached, True
        with t.span("plan", degraded=bool(failed)):
            return (
                self.cache.build(
                    self.store.placement, request, self.store.element_size, failed
                ),
                False,
            )

    def read(self, offset: int, length: int) -> bytes:
        """Serve one read through the cache and the accounted store pass."""
        result = self.submit([(offset, length)], queue_depth=1)
        return result.payloads[0]

    def submit(
        self,
        ranges: Sequence[tuple[int, int]],
        queue_depth: int = 8,
        *,
        max_retries: int = 3,
    ) -> BatchReadResult:
        """Serve a batch of ``(offset, length)`` ranges concurrently.

        Every range is planned through the cache, timed collectively by
        the closed-loop model at ``queue_depth`` outstanding requests, and
        materialized through the store's single accounted pass.  The
        per-disk busy/access statistics reflect the physical work exactly
        once regardless of queue depth (concurrency changes wall-clock
        overlap, not the work done).

        **Self-healing**: per-slot faults (latent sector errors, bit rot)
        are absorbed inside the store — demoted to erasures, reconstructed
        and healed in place.  A *disk* failing mid-batch surfaces here as
        :class:`DiskFailedError`; the service then invalidates every plan
        cached under the now-stale failure signature, replans against the
        new one (degraded where needed), and re-executes — up to
        ``max_retries`` times before the error propagates.  Payloads are
        byte-identical to the fault-free run whenever the failure pattern
        stays decodable.
        """
        if not ranges:
            raise ValueError("empty batch")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        t = self.tracer
        # Physical accounting baseline: every access the array performs on
        # behalf of this batch — including aborted retry attempts and the
        # escalation into the multi-failure path — lands in the delta
        # between this snapshot and the post-batch counts.
        access_base = self._access_snapshot()
        retries = 0
        while True:
            failed_before = self.store.array.failed_disks
            try:
                if len(failed_before) > 1:
                    return self._submit_multi_failure(
                        ranges, retries=retries, access_base=access_base
                    )
                plans: list[AccessPlan] = []
                payloads: list[bytes] = []
                # Cache outcomes for this attempt only: counting locally
                # (rather than diffing the cache's global stats) keeps
                # discarded retry attempts and other services sharing the
                # cache out of this batch's numbers.
                batch_hits = batch_misses = 0
                for offset, length in ranges:
                    with t.request("read", offset=offset, length=length):
                        plan, hit = self._plan(offset, length, failed_before)
                        payload, _ = self.store.execute_read(plan, offset, length)
                    if hit:
                        batch_hits += 1
                    else:
                        batch_misses += 1
                    plans.append(plan)
                    payloads.append(payload)
                # Timed after materialization so straggler slowdowns that
                # appeared mid-batch are reflected in this batch's numbers.
                throughput = simulate_concurrent(
                    plans,
                    self.store.array.model,
                    queue_depth,
                    slowdowns=self.store.array.slowdowns(),
                )
            except (DiskFailedError, DecodeFailure):
                # The failure signature changed under us: plans (and any
                # cache entries) built for the old signature may route I/O
                # to a dead disk.  Drop exactly those entries and replan.
                self.cache.invalidate_failure(failed_before)
                if retries >= max_retries:
                    raise
                retries += 1
                self.counters.retries += 1
                t.point("retry", attempt=retries, failed=list(failed_before))
                continue
            if t.enabled:
                # queue_wait lives on the simulated clock: the closed-loop
                # model's per-request delay at this queue depth.
                for i, wait in enumerate(throughput.queue_waits_s):
                    t.record("queue_wait", wait, index=i)
            nbytes = sum(len(p) for p in payloads)
            self.counters.observe_batch(
                plans,
                nbytes,
                queue_depth,
                disk_deltas=self._access_deltas(access_base),
            )
            self.counters.degraded_serves += sum(
                1 for plan in plans if plan.failed_disk is not None
            )
            # retries is folded in at construction — the only code path —
            # so the counter can never drift from the result field.
            return BatchReadResult(
                payloads=payloads,
                throughput=throughput,
                plans=plans,
                cache_hits=batch_hits,
                cache_misses=batch_misses,
                retries=retries,
            )

    def _submit_multi_failure(
        self,
        ranges: Sequence[tuple[int, int]],
        *,
        retries: int = 0,
        access_base: dict[int, int] | None = None,
    ) -> BatchReadResult:
        """Serve a batch with >1 failed disk via the store's exhaustive
        multi-failure decoder.

        There is no plan object (and hence no cache entry or closed-loop
        timing) for these patterns; the store fetches all survivors per
        row through its accounted pass.  Every range counts as a degraded
        serve.  The batch is observed with ``queue_depth=None`` — nothing
        was timed, so ``max_queue_depth`` stays untouched — and its disk
        load comes from the array's access-count deltas around the pass,
        so the physical survivor reads are not lost.
        """
        if access_base is None:
            access_base = self._access_snapshot()
        t = self.tracer
        payloads = []
        for offset, length in ranges:
            with t.request("read", offset=offset, length=length, multi=True):
                payloads.append(self.store.read_degraded_multi(offset, length))
        nbytes = sum(len(p) for p in payloads)
        self.counters.observe_batch(
            [],
            nbytes,
            None,
            nrequests=len(ranges),
            disk_deltas=self._access_deltas(access_base),
        )
        self.counters.degraded_serves += len(ranges)
        return BatchReadResult(
            payloads=payloads,
            throughput=None,
            plans=[],
            cache_hits=0,
            cache_misses=0,
            retries=retries,
        )

    # ------------------------------------------------------------------
    def open_loop(
        self,
        arrivals,
        **pipeline_kwargs,
    ):
        """Drive an open-loop arrival process through this service.

        ``arrivals`` is any iterable of ``(arrival_s, offset, length)``
        tuples — typically an
        :class:`~repro.engine.pipeline.OpenLoopWorkload`.  Remaining
        keyword arguments go to
        :class:`~repro.engine.pipeline.RequestPipeline` (``admission``,
        ``hedge``, ``detector``, ``coalesce``, ``materialize``, ...);
        the pipeline shares this service's tracer, registry and plan
        cache, so queue waits land in the ``queue_wait`` trace stage and
        the run shows up under ``service.pipeline.*`` in
        :meth:`metrics`.  Returns the run's
        :class:`~repro.engine.pipeline.OpenLoopResult`.
        """
        from .pipeline import RequestPipeline  # local: pipeline imports engine types

        return RequestPipeline([self], **pipeline_kwargs).run(arrivals)

    # ------------------------------------------------------------------
    def _access_snapshot(self) -> dict[int, int]:
        """Per-disk cumulative access counts, for delta accounting."""
        return {
            disk.disk_id: disk.stats.accesses for disk in self.store.array.disks
        }

    def _access_deltas(self, base: dict[int, int]) -> Counter:
        """Accesses performed since ``base`` was snapshotted.

        Disks restored with ``wipe=True`` reset their stats, so a current
        count below the baseline is clamped to zero rather than counted
        negative.
        """
        deltas: Counter = Counter()
        for disk in self.store.array.disks:
            delta = disk.stats.accesses - base.get(disk.disk_id, 0)
            if delta > 0:
                deltas[disk.disk_id] = delta
        return deltas

    # ------------------------------------------------------------------
    def _service_snapshot(self) -> dict:
        """The ``service.*`` namespace: request/batch counters plus the
        per-stage latency breakdown when tracing is on."""
        out = {
            "requests": self.counters.requests,
            "batches": self.counters.batches,
            "bytes_served": self.counters.bytes_served,
            "max_queue_depth": self.counters.max_queue_depth,
            "retries": self.counters.retries,
            "degraded_serves": self.counters.degraded_serves,
            "disk_load": self.counters.load_histogram(),
            "latency": self.tracer.breakdown() if self.tracer.enabled else {},
        }
        return out

    def metrics(self) -> dict:
        """Versioned, namespaced metrics snapshot of the whole service.

        The shape is the registry's snapshot schema
        (:data:`repro.obs.SCHEMA_VERSION`): a ``schema_version`` key plus
        ``service`` / ``cache`` namespaces, ``health`` and ``disks`` when
        the store exposes them, and any further namespaces registered
        into :attr:`registry` (e.g. ``faults`` via
        :meth:`repro.faults.FaultInjector.register_metrics`).

        The pre-1.1 ``flat=True`` legacy shape is gone (deprecated in
        1.1); callers that need dotted scalar keys should flatten the
        snapshot with :func:`repro.obs.flatten_snapshot`.
        """
        return self.registry.snapshot()
