"""Concurrent read service: batched, plan-cached reads over a BlockStore.

The paper's throughput story (§VI) only materializes under concurrency —
a placement that spreads load across all ``n`` spindles beats the
``k``-disk standard form on *aggregate* throughput even when single-request
latency ties.  :class:`ReadService` is the frontend that realizes the
regime end to end:

* requests are **planned through an LRU** :class:`~repro.engine.plancache.
  PlanCache`, so repeated workloads skip the planners entirely;
* a batch is **timed by the closed-loop model**
  (:func:`~repro.engine.concurrency.simulate_concurrent`) at a configurable
  queue depth, per-disk FCFS;
* payloads are **materialized for real** through the store's unified
  accounting pass, so every physical access lands in ``DiskStats`` exactly
  once and the bytes returned are decode-verified.

Import note: this module must not import :mod:`repro.store` or
:mod:`repro.harness` at runtime (both sit above the engine in the layer
stack); the store is duck-typed via the seam methods ``byte_request`` /
``execute_read``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..codes.base import DecodeFailure
from ..disks import DiskFailedError
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from .concurrency import ThroughputResult, simulate_concurrent
from .plancache import PlanCache
from .requests import AccessPlan

if TYPE_CHECKING:  # pragma: no cover - layering: store imports engine
    from ..store.blockstore import BlockStore

__all__ = ["ServiceCounters", "BatchReadResult", "ReadService"]


@dataclass
class ServiceCounters:
    """Cumulative service-level counters (cache counters live on the cache)."""

    requests: int = 0
    batches: int = 0
    bytes_served: int = 0
    max_queue_depth: int = 0
    #: batches re-executed after a mid-batch fault invalidated their plans.
    retries: int = 0
    #: requests served through a degraded (reconstructing) path.
    degraded_serves: int = 0
    #: physical element reads each disk served on behalf of this service.
    disk_load: Counter = field(default_factory=Counter)

    def observe_batch(
        self,
        plans: Sequence[AccessPlan],
        nbytes: int,
        queue_depth: int,
        *,
        nrequests: int | None = None,
    ) -> None:
        """Fold one executed batch into the counters.

        ``nrequests`` overrides the request count for plan-less batches
        (the multi-failure fallback reads rows directly, without plans).
        """
        self.requests += len(plans) if nrequests is None else nrequests
        self.batches += 1
        self.bytes_served += nbytes
        self.max_queue_depth = max(self.max_queue_depth, queue_depth)
        for plan in plans:
            self.disk_load.update(plan.per_disk_loads())

    def load_histogram(self) -> dict[int, int]:
        """Per-disk element-read histogram, ascending disk id."""
        return {d: self.disk_load[d] for d in sorted(self.disk_load)}


@dataclass(frozen=True)
class BatchReadResult:
    """Outcome of one :meth:`ReadService.submit` batch.

    Attributes
    ----------
    payloads:
        The requested byte ranges, in submission order, decode-verified.
    throughput:
        Closed-loop timing of the batch at the submitted queue depth.
        ``None`` when the batch was served through the plan-less
        multi-failure fallback (no access plans to time).
    plans:
        The access plans executed (cached or fresh), submission order.
        Empty for the multi-failure fallback.
    cache_hits / cache_misses:
        Plan-cache outcomes for *this batch* only.
    retries:
        Times this batch was replanned and re-executed after a mid-batch
        fault invalidated its plans.
    """

    payloads: list[bytes]
    throughput: ThroughputResult | None
    plans: list[AccessPlan]
    cache_hits: int
    cache_misses: int
    retries: int = 0


class ReadService:
    """High-throughput read frontend over a :class:`BlockStore`.

    Parameters
    ----------
    store:
        The backing block store.
    cache:
        Plan cache to use; a private one of ``cache_capacity`` entries is
        created when omitted.  Sharing one cache across services over
        geometrically identical stores is safe and intended.
    cache_capacity:
        Capacity of the private cache when ``cache`` is omitted.
    tracer:
        Span tracer for the request pipeline.  Defaults to the store's
        tracer when it has one (so `repro.open_store` wires a single
        tracer through both layers), else the shared disabled tracer.
    registry:
        Metrics registry to publish into.  Defaults to the store's
        registry when it has one, else a fresh private registry.  The
        service registers ``service``/``cache`` collectors, plus
        ``health``/``disks`` when the store exposes them (registration is
        idempotent, so sharing the store's registry never double
        registers).
    """

    def __init__(
        self,
        store: "BlockStore",
        *,
        cache: PlanCache | None = None,
        cache_capacity: int = 256,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.cache = cache if cache is not None else PlanCache(cache_capacity)
        self.counters = ServiceCounters()
        if tracer is None:
            tracer = getattr(store, "tracer", None)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if registry is None:
            registry = getattr(store, "registry", None)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry.register_collector("service", self._service_snapshot)
        self.registry.register_collector("cache", self.cache.stats.snapshot)
        # The engine cannot import the store layer; pick up its metric
        # surfaces duck-typed, same as the health counters always were.
        health = getattr(store, "health", None)
        if health is not None:
            self.registry.register_collector("health", health.snapshot)
        array = getattr(store, "array", None)
        if array is not None and hasattr(array, "stats_snapshot"):
            self.registry.register_collector("disks", array.stats_snapshot)

    # ------------------------------------------------------------------
    def plan(self, offset: int, length: int) -> AccessPlan:
        """Plan one byte range through the cache (no execution)."""
        return self._plan(offset, length, self.store.array.failed_disks)

    def _plan(
        self, offset: int, length: int, failed: Sequence[int]
    ) -> AccessPlan:
        """Plan through the cache under an explicit failure signature.

        ``submit`` freezes the signature at batch start so a fault firing
        mid-batch cannot split one batch across two signatures — exactly
        the semantics of planning the whole batch up front.
        """
        request = self.store.byte_request(offset, length)
        t = self.tracer
        if not t.enabled:
            return self.cache.plan(
                self.store.placement, request, self.store.element_size, failed
            )
        with t.span("cache_lookup") as sp:
            cached = self.cache.lookup(
                self.store.placement,
                request,
                self.store.element_size,
                sorted(failed),
            )
            sp.set(hit=cached is not None)
        if cached is not None:
            return cached
        with t.span("plan", degraded=bool(failed)):
            return self.cache.build(
                self.store.placement, request, self.store.element_size, failed
            )

    def read(self, offset: int, length: int) -> bytes:
        """Serve one read through the cache and the accounted store pass."""
        result = self.submit([(offset, length)], queue_depth=1)
        return result.payloads[0]

    def submit(
        self,
        ranges: Sequence[tuple[int, int]],
        queue_depth: int = 8,
        *,
        max_retries: int = 3,
    ) -> BatchReadResult:
        """Serve a batch of ``(offset, length)`` ranges concurrently.

        Every range is planned through the cache, timed collectively by
        the closed-loop model at ``queue_depth`` outstanding requests, and
        materialized through the store's single accounted pass.  The
        per-disk busy/access statistics reflect the physical work exactly
        once regardless of queue depth (concurrency changes wall-clock
        overlap, not the work done).

        **Self-healing**: per-slot faults (latent sector errors, bit rot)
        are absorbed inside the store — demoted to erasures, reconstructed
        and healed in place.  A *disk* failing mid-batch surfaces here as
        :class:`DiskFailedError`; the service then invalidates every plan
        cached under the now-stale failure signature, replans against the
        new one (degraded where needed), and re-executes — up to
        ``max_retries`` times before the error propagates.  Payloads are
        byte-identical to the fault-free run whenever the failure pattern
        stays decodable.
        """
        if not ranges:
            raise ValueError("empty batch")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        t = self.tracer
        hits0, misses0 = self.cache.stats.hits, self.cache.stats.misses
        retries = 0
        while True:
            failed_before = self.store.array.failed_disks
            try:
                if len(failed_before) > 1:
                    return self._submit_multi_failure(
                        ranges, queue_depth, retries=retries
                    )
                plans: list[AccessPlan] = []
                payloads: list[bytes] = []
                for offset, length in ranges:
                    with t.request("read", offset=offset, length=length):
                        plan = self._plan(offset, length, failed_before)
                        payload, _ = self.store.execute_read(plan, offset, length)
                    plans.append(plan)
                    payloads.append(payload)
                # Timed after materialization so straggler slowdowns that
                # appeared mid-batch are reflected in this batch's numbers.
                throughput = simulate_concurrent(
                    plans,
                    self.store.array.model,
                    queue_depth,
                    slowdowns=self.store.array.slowdowns(),
                )
            except (DiskFailedError, DecodeFailure):
                # The failure signature changed under us: plans (and any
                # cache entries) built for the old signature may route I/O
                # to a dead disk.  Drop exactly those entries and replan.
                self.cache.invalidate_failure(failed_before)
                if retries >= max_retries:
                    raise
                retries += 1
                self.counters.retries += 1
                t.point("retry", attempt=retries, failed=list(failed_before))
                continue
            if t.enabled:
                # queue_wait lives on the simulated clock: the closed-loop
                # model's per-request delay at this queue depth.
                for i, wait in enumerate(throughput.queue_waits_s):
                    t.record("queue_wait", wait, index=i)
            nbytes = sum(len(p) for p in payloads)
            self.counters.observe_batch(plans, nbytes, queue_depth)
            self.counters.degraded_serves += sum(
                1 for plan in plans if plan.failed_disk is not None
            )
            # retries is folded in at construction — the only code path —
            # so the counter can never drift from the result field.
            return BatchReadResult(
                payloads=payloads,
                throughput=throughput,
                plans=plans,
                cache_hits=self.cache.stats.hits - hits0,
                cache_misses=self.cache.stats.misses - misses0,
                retries=retries,
            )

    def _submit_multi_failure(
        self,
        ranges: Sequence[tuple[int, int]],
        queue_depth: int,
        *,
        retries: int = 0,
    ) -> BatchReadResult:
        """Serve a batch with >1 failed disk via the store's exhaustive
        multi-failure decoder.

        There is no plan object (and hence no cache entry or closed-loop
        timing) for these patterns; the store fetches all survivors per
        row through its accounted pass.  Every range counts as a degraded
        serve.
        """
        t = self.tracer
        payloads = []
        for offset, length in ranges:
            with t.request("read", offset=offset, length=length, multi=True):
                payloads.append(self.store.read_degraded_multi(offset, length))
        nbytes = sum(len(p) for p in payloads)
        self.counters.observe_batch(
            [], nbytes, queue_depth, nrequests=len(ranges)
        )
        self.counters.degraded_serves += len(ranges)
        return BatchReadResult(
            payloads=payloads,
            throughput=None,
            plans=[],
            cache_hits=0,
            cache_misses=0,
            retries=retries,
        )

    # ------------------------------------------------------------------
    def _service_snapshot(self) -> dict:
        """The ``service.*`` namespace: request/batch counters plus the
        per-stage latency breakdown when tracing is on."""
        out = {
            "requests": self.counters.requests,
            "batches": self.counters.batches,
            "bytes_served": self.counters.bytes_served,
            "max_queue_depth": self.counters.max_queue_depth,
            "retries": self.counters.retries,
            "degraded_serves": self.counters.degraded_serves,
            "disk_load": self.counters.load_histogram(),
            "latency": self.tracer.breakdown() if self.tracer.enabled else {},
        }
        return out

    def metrics(self) -> dict:
        """Versioned, namespaced metrics snapshot of the whole service.

        The shape is the registry's snapshot schema
        (:data:`repro.obs.SCHEMA_VERSION`): a ``schema_version`` key plus
        ``service`` / ``cache`` namespaces, ``health`` and ``disks`` when
        the store exposes them, and any further namespaces registered
        into :attr:`registry` (e.g. ``faults`` via
        :meth:`repro.faults.FaultInjector.register_metrics`).

        The pre-1.1 ``flat=True`` legacy shape is gone (deprecated in
        1.1); callers that need dotted scalar keys should flatten the
        snapshot with :func:`repro.obs.flatten_snapshot`.
        """
        return self.registry.snapshot()
