"""Hedged sub-reads: race a reconstruction plan against a straggler.

Erasure coding gives reads a second way to finish: any ``k`` of the
stripe's elements reconstruct the rest.  When one disk of a dispatched
plan lags — the classic tail-latency adversary — the pipeline launches a
*hedge*: a degraded-read plan built **around** the lagging disk, racing
reconstruction against the straggler.  Whichever attempt completes first
wins; the loser's unstarted sub-reads are cancelled (in-flight ones run
out, occupying their disk — a real cancel cannot recall a seek either).

This is the same tail-vs-redundancy trade the Piggybacking framework
(PAPERS.md) exploits for repair traffic, applied to foreground reads.
Two triggers exist:

* **deadline** — the hedge fires when the piece is still incomplete
  ``multiplier ×`` its nominal critical path after dispatch;
* **detector** — a :class:`repro.faults.stragglers.StragglerDetector`
  flag on a planned disk arms the hedge at dispatch time, skipping the
  wait entirely.

``hedges_won / hedges_wasted`` count races won by the reconstruction and
races the primary won anyway (the hedge's cost with no benefit).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HedgeConfig", "HedgeCounters"]


@dataclass(frozen=True)
class HedgeConfig:
    """Hedging policy knobs.

    Parameters
    ----------
    enabled:
        Master switch; disabled turns the pipeline into a pure FCFS
        scheduler (the ablation baseline).
    multiplier:
        Deadline factor: hedge when a piece is still incomplete
        ``multiplier ×`` its nominal (unslowed) critical path after
        dispatch.  Values well above 1 keep hedges rare on healthy
        arrays.
    min_delay_s:
        Floor on the deadline, so sub-millisecond plans don't hedge on
        scheduling noise.
    """

    enabled: bool = True
    multiplier: float = 3.0
    min_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.multiplier <= 1.0:
            raise ValueError(f"multiplier must be > 1, got {self.multiplier}")
        if self.min_delay_s < 0.0:
            raise ValueError(f"min_delay_s must be >= 0, got {self.min_delay_s}")

    def deadline_after(self, nominal_s: float) -> float:
        """Seconds after dispatch at which the hedge trigger fires."""
        return max(self.min_delay_s, self.multiplier * nominal_s)


@dataclass
class HedgeCounters:
    """Cumulative hedge-race outcomes."""

    launched: int = 0
    won: int = 0
    wasted: int = 0

    def snapshot(self) -> dict:
        """Plain-dict view for metrics export."""
        return {
            "hedges_launched": self.launched,
            "hedges_won": self.won,
            "hedges_wasted": self.wasted,
        }
