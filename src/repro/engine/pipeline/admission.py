"""Admission control: bounded wait queue plus a concurrency gate.

An open-loop arrival process offered above capacity grows an unbounded
queue — latency diverges and every request eventually times out.  The
controller applies the standard two-stage defence:

* at most ``max_inflight`` requests execute concurrently (the frontend's
  worker slots);
* overflow waits in a FIFO of at most ``queue_limit`` entries, and its
  wait lands in the tracer's ``queue_wait`` stage;
* arrivals beyond both bounds are **shed** immediately (backpressure to
  the client), which is what keeps the queue — and the tail — bounded at
  overload.

The controller is pure bookkeeping over the pipeline's simulated clock;
it never touches disks.
"""

from __future__ import annotations

from collections import deque
from typing import Any

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded FIFO admission for the open-loop pipeline.

    Parameters
    ----------
    max_inflight:
        Concurrent requests allowed past the gate.
    queue_limit:
        Arrivals allowed to wait when all slots are busy; further
        arrivals are rejected.
    """

    def __init__(self, *, max_inflight: int = 64, queue_limit: int = 1024) -> None:
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be > 0, got {max_inflight}")
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit}")
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0
        self.peak_queue_depth = 0
        self._queue: deque[Any] = deque()

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting behind the gate."""
        return len(self._queue)

    def offer(self, job: Any) -> str:
        """Present one arrival; returns ``"admit"``, ``"queue"`` or
        ``"reject"``.

        ``"admit"`` takes a concurrency slot immediately; ``"queue"``
        parks the job FIFO (it is handed back by :meth:`release` when a
        slot frees); ``"reject"`` sheds it — the caller must not run it.
        """
        if self.inflight < self.max_inflight:
            self.inflight += 1
            self.admitted += 1
            return "admit"
        if len(self._queue) < self.queue_limit:
            self._queue.append(job)
            self.peak_queue_depth = max(self.peak_queue_depth, len(self._queue))
            return "queue"
        self.rejected += 1
        return "reject"

    def release(self) -> Any | None:
        """Free one slot; returns the next waiting job (now admitted) or
        ``None`` when the wait queue is empty."""
        if self.inflight <= 0:
            raise RuntimeError("release() without a matching admit")
        if self._queue:
            self.admitted += 1
            return self._queue.popleft()
        self.inflight -= 1
        return None

    def snapshot(self) -> dict:
        """Plain-dict view for metrics export."""
        return {
            "max_inflight": self.max_inflight,
            "queue_limit": self.queue_limit,
            "inflight": self.inflight,
            "queue_depth": self.queue_depth,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "peak_queue_depth": self.peak_queue_depth,
        }
