"""The open-loop request pipeline: an event loop over the simulated clock.

This is the explicit completion-queue scheduler ROADMAP calls the
"frontend refactor": instead of the closed-loop batch model (fixed
``queue_depth`` requests in flight, offered load self-throttles), the
pipeline replays a *timestamped arrival process* against per-disk FCFS
servers and measures what a real frontend would: queue waits under
admission control, per-disk depth, hedge races, and tail latency of the
whole request — all on the simulated clock, with no real asyncio.

Mechanics
---------
* **Events** are ``(time, seq, kind)`` heap entries — arrivals, disk
  completions, hedge deadlines.  ``seq`` makes ordering total, so runs
  are bit-deterministic.
* **Admission** (:class:`~repro.engine.pipeline.admission.
  AdmissionController`) gates arrivals; a queued job's wait is recorded
  in the tracer's ``queue_wait`` stage and the result histogram.
* **Per-disk FCFS servers**: each admitted request's plan fans out into
  one sub-read per disk; a disk serves one sub-read at a time at the
  disk model's (slowdown-scaled) service time.
* **Coalescing**: a request whose byte range is contained in an
  in-flight request on the same service joins it instead of dispatching
  — both complete together, the follower's payload is sliced from the
  leader's.
* **Hedging** (:class:`~repro.engine.pipeline.hedging.HedgeConfig`):
  when a piece is still incomplete past its deadline and exactly one
  sub-read is outstanding, a degraded-read plan *around* that disk races
  the straggler; a :class:`~repro.faults.stragglers.StragglerDetector`
  flag arms the hedge at dispatch.  The loser is cancelled (queued
  sub-reads dropped; the in-flight one runs out, holding its disk).

Two planes, as everywhere in this repo: the event loop is the *timing*
plane; payloads and :class:`~repro.disks.disk.DiskStats` accounting flow
through the store's accounted pass (``materialize=True``), which charges
only the winning attempt's physical accesses.  Timing-only runs
(``materialize=False``) skip the store entirely and scale to ~10⁵
requests.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from ...codes.base import DecodeFailure
from ...disks import DiskFailedError
from ...obs import NULL_TRACER, Histogram, MetricsRegistry, Tracer
from ..plancache import UnsupportedFailurePatternError
from ..requests import AccessPlan
from .admission import AdmissionController
from .hedging import HedgeConfig, HedgeCounters

if TYPE_CHECKING:  # pragma: no cover - import cycle: service imports pipeline
    from ...faults.stragglers import StragglerDetector
    from ..service import ReadService

__all__ = ["OpenLoopResult", "RequestPipeline"]


@dataclass
class _SubRead:
    """One disk's share of an attempt."""

    disk: int
    accesses: list[tuple[int, int]]
    attempt: "_Attempt"
    state: str = "queued"  # queued | running | done | cancelled
    nominal_s: float = 0.0
    actual_s: float = 0.0


@dataclass
class _Attempt:
    """One dispatched plan (primary or hedge) of a piece."""

    piece: "_Piece"
    plan: AccessPlan | None  # None: multi-failure synthetic timing
    kind: str  # "primary" | "hedge"
    subreads: list[_SubRead] = field(default_factory=list)
    remaining: int = 0
    cancelled: bool = False


@dataclass
class _Piece:
    """One (service, byte-range) execution unit of a job."""

    job: "_Job"
    service_idx: int
    offset: int
    length: int
    primary: _Attempt | None = None
    hedge: _Attempt | None = None
    hedge_armed: bool = False
    done: bool = False
    winner: str | None = None
    leader: "_Piece | None" = None
    followers: list["_Piece"] = field(default_factory=list)
    payload: bytes | None = None

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass
class _Job:
    """One arrival: possibly several pieces across services (cluster)."""

    index: int
    arrival_s: float
    pieces: list[_Piece] = field(default_factory=list)
    remaining: int = 0
    rejected: bool = False
    done_s: float | None = None
    payload: bytes | None = None
    meta: Any = None


class _DiskServer:
    """FCFS queue of sub-reads in front of one simulated disk."""

    __slots__ = ("service_idx", "disk", "queue", "current")

    def __init__(self, service_idx: int, disk: int) -> None:
        self.service_idx = service_idx
        self.disk = disk
        self.queue: list[_SubRead] = []
        self.current: _SubRead | None = None

    def depth(self) -> int:
        return len(self.queue) + (1 if self.current is not None else 0)


@dataclass
class OpenLoopResult:
    """Outcome of one :meth:`RequestPipeline.run`.

    Scalar counters cover this run only; the histograms are this run's
    samples.  ``payloads`` is per arrival, submission order, ``None`` for
    rejected jobs — and ``None`` entirely for timing-only runs.
    """

    arrived: int
    completed: int
    rejected: int
    coalesced: int
    hedges_launched: int
    hedges_won: int
    hedges_wasted: int
    retries: int
    makespan_s: float
    bytes_served: int
    latency: Histogram
    queue_wait: Histogram
    disk_depth: Histogram
    peak_queue_depth: int
    peak_disk_depth: int
    #: physical accesses per service per disk (snapshot deltas; only
    #: materialized runs move these).
    disk_load: dict[int, dict[int, int]]
    payloads: list[bytes | None] | None = None

    @property
    def throughput_bps(self) -> float:
        """Served bytes over the completion horizon."""
        return self.bytes_served / self.makespan_s if self.makespan_s > 0 else 0.0

    def summary(self) -> dict:
        """JSON-ready scalar view (payloads excluded)."""
        return {
            "arrived": self.arrived,
            "completed": self.completed,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "hedges_wasted": self.hedges_wasted,
            "retries": self.retries,
            "makespan_s": self.makespan_s,
            "bytes_served": self.bytes_served,
            "throughput_bps": self.throughput_bps,
            "peak_queue_depth": self.peak_queue_depth,
            "peak_disk_depth": self.peak_disk_depth,
            "latency": self.latency.summary(),
            "queue_wait": self.queue_wait.summary(),
            "disk_depth": self.disk_depth.summary(),
        }


class RequestPipeline:
    """Event-loop scheduler driving open-loop arrivals through one or
    more read services.

    Parameters
    ----------
    services:
        The read services (one per shard for a cluster); piece
        ``service_idx`` indexes into this sequence.
    admission:
        Admission controller; a default-sized one is created when
        omitted.
    hedge:
        Hedging policy (:class:`HedgeConfig`); hedging is on by default.
    detector:
        Optional straggler detector fed from completed sub-reads; a
        flagged disk arms that piece's hedge at dispatch.
    coalesce:
        Collapse contained byte ranges onto in-flight executions.
    materialize:
        Fetch real payloads through the store's accounted pass on piece
        completion.  Timing-only (``False``) scales to ~10⁵ requests.
    max_retries:
        Materialization retries after a mid-run disk failure before
        falling back to the exhaustive multi-failure decoder.
    tracer / registry:
        Default to the first service's; the pipeline publishes a
        ``pipeline`` sub-namespace under ``service.*`` in the registry
        snapshot (``service.pipeline.*`` when flattened).
    assemble:
        Job payload assembler ``(meta, piece_payloads) -> bytes`` for
        multi-piece jobs (the cluster's pad-excising reassembly); the
        default concatenates.
    """

    def __init__(
        self,
        services: Sequence["ReadService"],
        *,
        admission: AdmissionController | None = None,
        hedge: HedgeConfig | None = None,
        detector: "StragglerDetector | None" = None,
        coalesce: bool = True,
        materialize: bool = True,
        max_retries: int = 3,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        assemble: Callable[[Any, list[bytes]], bytes] | None = None,
    ) -> None:
        if not services:
            raise ValueError("need at least one service")
        self.services = list(services)
        self.admission = admission if admission is not None else AdmissionController()
        self.hedge_config = hedge if hedge is not None else HedgeConfig()
        self.detector = detector
        self.coalesce = coalesce
        self.materialize = materialize
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries
        self.tracer = tracer if tracer is not None else self.services[0].tracer
        if self.tracer is None:
            self.tracer = NULL_TRACER
        self.registry = (
            registry if registry is not None else self.services[0].registry
        )
        self.registry.register_collector("service", self._pipeline_namespace)
        self.assemble = assemble
        self.hedges = HedgeCounters()
        self.retries = 0
        self.coalesced = 0
        self.completed = 0
        self.bytes_served = 0
        self._last_result: OpenLoopResult | None = None
        # run-scoped state, reset by run_jobs()
        self._heap: list[tuple[float, int, str, Any]] = []
        self._seq = count()
        self._servers: dict[tuple[int, int], _DiskServer] = {}
        self._inflight: dict[int, list[_Piece]] = {}
        self._jobs: list[_Job] = []

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def run(
        self, arrivals: Iterable[tuple[float, int, int]]
    ) -> OpenLoopResult:
        """Drive ``(arrival_s, offset, length)`` arrivals through the
        first (only) service."""
        return self.run_jobs(
            (t, [(0, offset, length)]) for t, offset, length in arrivals
        )

    def run_jobs(
        self,
        jobs: Iterable[tuple[float, list[tuple[int, int, int]]]],
        *,
        metas: Sequence[Any] | None = None,
    ) -> OpenLoopResult:
        """Drive jobs of ``(arrival_s, [(service_idx, offset, length)])``
        through the event loop; returns when the last event drains.

        Arrivals must be in nondecreasing time order (the load generator
        produces them that way).  ``metas`` optionally attaches one
        opaque context object per job, handed to ``assemble``.
        """
        self._heap = []
        self._seq = count()
        self._servers = {}
        self._inflight = {i: [] for i in range(len(self.services))}
        self._latency = Histogram("service.pipeline.latency_s")
        self._queue_wait = Histogram("service.pipeline.queue_wait_s")
        self._depth = Histogram("service.pipeline.disk_depth")
        self._peak_disk_depth = 0
        self._run_counts = Counter()
        self._hedges0 = (self.hedges.launched, self.hedges.won, self.hedges.wasted)
        self._retries0 = self.retries
        self._bytes0 = self.bytes_served
        self._load_base = [
            {d.disk_id: d.stats.accesses for d in svc.store.array.disks}
            for svc in self.services
        ]
        self._jobs: list[_Job] = []
        self._last_completion = 0.0
        first_arrival: float | None = None

        for idx, (arrival_s, ranges) in enumerate(jobs):
            if not ranges:
                raise ValueError(f"job {idx} has no ranges")
            job = _Job(index=idx, arrival_s=arrival_s)
            if metas is not None:
                if idx >= len(metas):
                    raise ValueError(
                        f"metas has {len(metas)} entries but the job stream "
                        f"produced a job at index {idx}; pass one meta per job"
                    )
                job.meta = metas[idx]
            job.pieces = [
                _Piece(job=job, service_idx=sid, offset=off, length=ln)
                for sid, off, ln in ranges
            ]
            job.remaining = len(job.pieces)
            self._jobs.append(job)
            if first_arrival is None:
                first_arrival = arrival_s
            self._push(arrival_s, "arrival", job)
        if not self._jobs:
            raise ValueError("no jobs to run")
        if metas is not None and len(metas) != len(self._jobs):
            raise ValueError(
                f"metas has {len(metas)} entries for {len(self._jobs)} jobs; "
                "pass one meta per job"
            )

        while self._heap:
            t, _, kind, obj = heapq.heappop(self._heap)
            if kind == "arrival":
                self._on_arrival(t, obj)
            elif kind == "disk_done":
                self._on_disk_done(t, obj)
            else:  # "hedge"
                self._on_hedge(t, obj)

        hl, hw, hx = self._hedges0
        disk_load = {
            i: {
                d.disk_id: d.stats.accesses - self._load_base[i].get(d.disk_id, 0)
                for d in svc.store.array.disks
                if d.stats.accesses > self._load_base[i].get(d.disk_id, 0)
            }
            for i, svc in enumerate(self.services)
        }
        result = OpenLoopResult(
            arrived=len(self._jobs),
            completed=self._run_counts["completed"],
            rejected=self._run_counts["rejected"],
            coalesced=self._run_counts["coalesced"],
            hedges_launched=self.hedges.launched - hl,
            hedges_won=self.hedges.won - hw,
            hedges_wasted=self.hedges.wasted - hx,
            retries=self.retries - self._retries0,
            makespan_s=max(0.0, self._last_completion - (first_arrival or 0.0)),
            bytes_served=self.bytes_served - self._bytes0,
            latency=self._latency,
            queue_wait=self._queue_wait,
            disk_depth=self._depth,
            peak_queue_depth=self.admission.peak_queue_depth,
            peak_disk_depth=self._peak_disk_depth,
            disk_load=disk_load,
            payloads=(
                [j.payload for j in self._jobs] if self.materialize else None
            ),
        )
        self._last_result = result
        return result

    def job_latencies(self) -> list[tuple[Any, float | None]]:
        """Per-job ``(meta, latency_s)`` of the most recent run, arrival
        order; latency is ``None`` for rejected jobs.

        The per-class drill-down the aggregate histograms cannot give:
        callers that tag jobs via ``metas`` (e.g. ``"fg"`` foreground vs
        ``"bg"`` repair traffic) slice their own tails from one mixed
        run — the recovery throttle's AIMD loop feeds on exactly this.
        """
        return [
            (
                job.meta,
                None if job.done_s is None else job.done_s - job.arrival_s,
            )
            for job in self._jobs
        ]

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _push(self, when: float, kind: str, obj: Any) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), kind, obj))

    def _on_arrival(self, t: float, job: _Job) -> None:
        verdict = self.admission.offer(job)
        if verdict == "admit":
            self._start_job(job, t)
        elif verdict == "reject":
            job.rejected = True
            self._run_counts["rejected"] += 1
        # "queue": the controller hands the job back via release()

    def _start_job(self, job: _Job, t: float) -> None:
        wait = t - job.arrival_s
        self._queue_wait.observe(wait)
        if self.tracer.enabled:
            self.tracer.record("queue_wait", wait, index=job.index)
        for piece in job.pieces:
            self._start_piece(piece, t)

    def _start_piece(self, piece: _Piece, t: float) -> None:
        if self.coalesce:
            for leader in self._inflight[piece.service_idx]:
                if (
                    not leader.done
                    and leader.offset <= piece.offset
                    and leader.end >= piece.end
                ):
                    leader.followers.append(piece)
                    piece.leader = leader
                    self.coalesced += 1
                    self._run_counts["coalesced"] += 1
                    return
        self._inflight[piece.service_idx].append(piece)
        self._launch_primary(piece, t)

    def _launch_primary(self, piece: _Piece, t: float) -> None:
        svc = self.services[piece.service_idx]
        failed = svc.store.array.failed_disks
        plan: AccessPlan | None
        try:
            if len(failed) > 1:
                raise UnsupportedFailurePatternError(tuple(sorted(failed)))
            plan, _ = svc._plan(piece.offset, piece.length, failed)
            batches = plan.per_disk_batches()
        except UnsupportedFailurePatternError:
            plan = None
            batches = self._multi_failure_batches(svc, piece)
        attempt = _Attempt(piece=piece, plan=plan, kind="primary")
        piece.primary = attempt
        nominal = max(
            (
                svc.store.array.model.service_time_s(acc)
                for acc in batches.values()
            ),
            default=0.0,
        )
        self._enqueue_attempt(attempt, batches, t)
        if not (
            self.hedge_config.enabled
            and plan is not None
            and plan.failed_disk is None
        ):
            return
        deadline = t + self.hedge_config.deadline_after(nominal)
        if self.detector is not None and any(
            self.detector.is_straggling(d) for d in batches
        ):
            # pre-hedge: a known-slow disk is on the plan, skip the wait
            deadline = t + self.hedge_config.min_delay_s
        self._push(deadline, "hedge", piece)

    def _enqueue_attempt(
        self, attempt: _Attempt, batches: dict[int, list[tuple[int, int]]], t: float
    ) -> None:
        svc_idx = attempt.piece.service_idx
        attempt.remaining = len(batches)
        for disk in sorted(batches):
            sub = _SubRead(disk=disk, accesses=batches[disk], attempt=attempt)
            attempt.subreads.append(sub)
            server = self._server(svc_idx, disk)
            depth = server.depth()
            self._depth.observe(depth)
            self._peak_disk_depth = max(self._peak_disk_depth, depth)
            server.queue.append(sub)
            if server.current is None:
                self._start_next(server, t)

    def _server(self, svc_idx: int, disk: int) -> _DiskServer:
        key = (svc_idx, disk)
        server = self._servers.get(key)
        if server is None:
            server = self._servers[key] = _DiskServer(svc_idx, disk)
        return server

    def _start_next(self, server: _DiskServer, t: float) -> None:
        array = self.services[server.service_idx].store.array
        while server.queue:
            sub = server.queue.pop(0)
            if sub.state == "cancelled":
                continue
            sub.nominal_s = array.model.service_time_s(sub.accesses)
            slowdown = array[sub.disk].slowdown
            sub.actual_s = sub.nominal_s * slowdown
            sub.state = "running"
            server.current = sub
            self._push(t + sub.actual_s, "disk_done", server)
            return
        server.current = None

    def _on_disk_done(self, t: float, server: _DiskServer) -> None:
        sub = server.current
        assert sub is not None
        sub.state = "done"
        self._last_completion = max(self._last_completion, t)
        if self.detector is not None:
            self.detector.observe(sub.disk, sub.nominal_s, sub.actual_s)
        attempt = sub.attempt
        piece = attempt.piece
        if not attempt.cancelled and not piece.done:
            attempt.remaining -= 1
            if attempt.remaining == 0:
                self._complete_piece(piece, attempt, t)
            elif (
                attempt.kind == "primary"
                and piece.hedge_armed
                and piece.hedge is None
            ):
                unfinished = [
                    s
                    for s in attempt.subreads
                    if s.state in ("queued", "running")
                ]
                if len(unfinished) == 1:
                    self._launch_hedge(piece, unfinished[0].disk, t)
        self._start_next(server, t)

    def _on_hedge(self, t: float, piece: _Piece) -> None:
        if piece.done or piece.hedge is not None or piece.primary is None:
            return
        if piece.primary.plan is None:
            return
        unfinished = [
            s for s in piece.primary.subreads if s.state in ("queued", "running")
        ]
        if not unfinished:
            return
        if len(unfinished) > 1:
            # reconstruction around one disk cannot beat several laggards;
            # re-check as the primary's sub-reads drain
            piece.hedge_armed = True
            return
        self._launch_hedge(piece, unfinished[0].disk, t)

    def _launch_hedge(self, piece: _Piece, target_disk: int, t: float) -> None:
        svc = self.services[piece.service_idx]
        store = svc.store
        plan = svc.cache.plan(
            store.placement,
            store.byte_request(piece.offset, piece.length),
            store.element_size,
            (target_disk,),
        )
        attempt = _Attempt(piece=piece, plan=plan, kind="hedge")
        piece.hedge = attempt
        self.hedges.launched += 1
        if self.tracer.enabled:
            self.tracer.record("hedge", 0.0, clock="wall", disk=target_disk)
        self._enqueue_attempt(attempt, plan.per_disk_batches(), t)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _complete_piece(self, piece: _Piece, winner: _Attempt, t: float) -> None:
        piece.done = True
        piece.winner = winner.kind
        if piece.hedge is not None:
            if winner is piece.hedge:
                self.hedges.won += 1
            else:
                self.hedges.wasted += 1
        loser = piece.hedge if winner is piece.primary else piece.primary
        if loser is not None:
            loser.cancelled = True
            for sub in loser.subreads:
                if sub.state == "queued":
                    sub.state = "cancelled"
        if self.materialize:
            piece.payload = self._materialize_piece(piece, winner)
        self._inflight[piece.service_idx].remove(piece)
        for follower in piece.followers:
            follower.done = True
            follower.winner = "coalesced"
            if piece.payload is not None:
                rel = follower.offset - piece.offset
                follower.payload = piece.payload[rel : rel + follower.length]
            self._job_piece_done(follower.job, t)
        self._job_piece_done(piece.job, t)

    def _materialize_piece(self, piece: _Piece, winner: _Attempt) -> bytes:
        """Fetch the piece's real bytes through the store's accounted pass.

        Exactly-once accounting: only the *winning* plan executes, so
        ``DiskStats`` (and the pipeline's ``disk_load`` deltas) charge
        the served work; a wasted hedge costs simulated time, not
        physical accounting.  A mid-run disk failure surfaces here as
        :class:`DiskFailedError` — the piece replans under the new
        signature up to ``max_retries`` times, then falls back to the
        exhaustive multi-failure decoder.
        """
        svc = self.services[piece.service_idx]
        store = svc.store
        plan = winner.plan
        attempts = 0
        while True:
            failed = store.array.failed_disks
            try:
                if plan is None or len(failed) > 1:
                    return store.read_degraded_multi(piece.offset, piece.length)
                payload, _ = store.execute_read(plan, piece.offset, piece.length)
                return payload
            except (DiskFailedError, DecodeFailure):
                svc.cache.invalidate_failure(failed)
                if attempts >= self.max_retries:
                    return store.read_degraded_multi(piece.offset, piece.length)
                attempts += 1
                self.retries += 1
                now_failed = store.array.failed_disks
                try:
                    if len(now_failed) > 1:
                        raise UnsupportedFailurePatternError(
                            tuple(sorted(now_failed))
                        )
                    plan, _ = svc._plan(piece.offset, piece.length, now_failed)
                except UnsupportedFailurePatternError:
                    plan = None

    def _job_piece_done(self, job: _Job, t: float) -> None:
        job.remaining -= 1
        if job.remaining > 0:
            return
        job.done_s = t
        self._latency.observe(t - job.arrival_s)
        self._run_counts["completed"] += 1
        self.completed += 1
        self.bytes_served += sum(p.length for p in job.pieces)
        if self.materialize:
            parts = [p.payload if p.payload is not None else b"" for p in job.pieces]
            if self.assemble is not None:
                job.payload = self.assemble(job.meta, parts)
            else:
                job.payload = parts[0] if len(parts) == 1 else b"".join(parts)
        nxt = self.admission.release()
        if nxt is not None:
            self._start_job(nxt, t)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _multi_failure_batches(
        svc: "ReadService", piece: _Piece
    ) -> dict[int, list[tuple[int, int]]]:
        """Synthetic timing batches for the plan-less multi-failure path:
        every surviving disk serves one element per affected row (what
        ``read_degraded_multi`` physically fetches; slot indices are
        approximated by row numbers, which only timing sees)."""
        store = svc.store
        request = store.byte_request(piece.offset, piece.length)
        k = store.code.k
        rows = sorted({e // k for e in request.elements})
        return {
            d.disk_id: [(row, store.element_size) for row in rows]
            for d in store.array.disks
            if not d.failed
        }

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``service.pipeline.*`` metrics payload: cumulative race /
        admission counters plus the latest run's histograms."""
        out = {
            "completed": self.completed,
            "coalesced": self.coalesced,
            "retries": self.retries,
            "bytes_served": self.bytes_served,
            **self.hedges.snapshot(),
            "admission": self.admission.snapshot(),
        }
        if self.detector is not None:
            out["stragglers"] = self.detector.snapshot()
        last = self._last_result
        if last is not None:
            out["latency"] = last.latency.summary()
            out["queue_wait"] = last.queue_wait.summary()
            out["disk_depth"] = last.disk_depth.summary()
            out["peak_disk_depth"] = last.peak_disk_depth
        return out

    def _pipeline_namespace(self) -> dict:
        return {"pipeline": self.snapshot()}
