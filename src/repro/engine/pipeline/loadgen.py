"""Open-loop arrival generation for the request pipeline.

A *closed-loop* driver (:func:`repro.engine.concurrency.simulate_concurrent`)
holds a fixed number of requests in flight: a slow system automatically
slows its own offered load, which hides queueing collapse.  Real cloud
frontends are *open-loop* — clients arrive at their own rate whether or
not the system keeps up — and that is the regime where admission control
and hedging earn their keep.  :class:`OpenLoopWorkload` generates that
arrival process: timestamped ``(arrival_s, offset, length)`` byte reads
at a configured rate, with optionally Zipf-skewed offsets (hot objects)
and Poisson or uniform inter-arrival gaps.

Zipf starts land on multiples of ``max_bytes``, so hot small reads fall
*inside* hot large reads — the overlap the pipeline's request coalescing
collapses into shared executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["OpenLoopWorkload"]


@dataclass(frozen=True)
class OpenLoopWorkload:
    """Timestamped open-loop byte-read arrivals.

    Parameters
    ----------
    user_bytes:
        Logical address space; every generated range fits inside it.
    requests:
        Number of arrivals to generate.
    rate_rps:
        Mean arrival rate, requests per (simulated) second.
    min_bytes / max_bytes:
        Uniform request-size bounds, inclusive.
    zipf_s:
        ``None`` for uniform offsets; a value > 1 draws Zipf(s)-skewed
        offsets clustered at the start of the space (hot prefix).
    arrival:
        ``"poisson"`` for exponential inter-arrival gaps (memoryless open
        loop), ``"uniform"`` for a fixed ``1/rate`` cadence.
    seed:
        RNG seed; identical parameters and seed reproduce the exact
        arrival sequence.
    """

    user_bytes: int
    requests: int
    rate_rps: float
    min_bytes: int = 1
    max_bytes: int = 65536
    zipf_s: float | None = None
    arrival: str = "poisson"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests <= 0:
            raise ValueError(f"requests must be > 0, got {self.requests}")
        if self.rate_rps <= 0.0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        if not 1 <= self.min_bytes <= self.max_bytes:
            raise ValueError("need 1 <= min_bytes <= max_bytes")
        if self.user_bytes < self.max_bytes:
            raise ValueError("address space smaller than max_bytes")
        if self.zipf_s is not None and self.zipf_s <= 1.0:
            raise ValueError(f"zipf exponent must be > 1, got {self.zipf_s}")
        if self.arrival not in ("poisson", "uniform"):
            raise ValueError(f"arrival must be poisson|uniform, got {self.arrival!r}")

    def __len__(self) -> int:
        return self.requests

    def arrivals(self) -> Iterator[tuple[float, int, int]]:
        """Yield ``(arrival_s, offset, length)`` in arrival order."""
        rng = np.random.default_rng(self.seed)
        clock = 0.0
        for _ in range(self.requests):
            if self.arrival == "poisson":
                clock += float(rng.exponential(1.0 / self.rate_rps))
            else:
                clock += 1.0 / self.rate_rps
            length = int(rng.integers(self.min_bytes, self.max_bytes + 1))
            limit = self.user_bytes - length
            if self.zipf_s is None:
                offset = int(rng.integers(0, limit + 1))
            else:
                offset = min((int(rng.zipf(self.zipf_s)) - 1) * self.max_bytes, limit)
            yield clock, offset, length

    def __iter__(self) -> Iterator[tuple[float, int, int]]:
        return self.arrivals()
