"""Open-loop request pipeline: event-loop scheduling over the simulated
clock.

The package that turns the synchronous read frontend into the
concurrency regime the paper's throughput claims (§VI) actually live in:

* :mod:`repro.engine.pipeline.loadgen` — :class:`OpenLoopWorkload`,
  timestamped Poisson/uniform arrivals with optional Zipf-hot offsets;
* :mod:`repro.engine.pipeline.admission` — :class:`AdmissionController`,
  bounded wait queue + concurrency gate with load shedding;
* :mod:`repro.engine.pipeline.hedging` — :class:`HedgeConfig` /
  :class:`HedgeCounters`, the reconstruction-vs-straggler race policy;
* :mod:`repro.engine.pipeline.scheduler` — :class:`RequestPipeline`, the
  completion-queue event loop with per-disk FCFS servers, request
  coalescing and hedged sub-reads, returning :class:`OpenLoopResult`.

Entry points: :meth:`repro.engine.service.ReadService.open_loop` for a
single store, :meth:`repro.cluster.service.ClusterService.submit_open_loop`
for sharded volumes, and the ``pipeline`` CLI subcommand.
"""

from .admission import AdmissionController
from .hedging import HedgeConfig, HedgeCounters
from .loadgen import OpenLoopWorkload
from .scheduler import OpenLoopResult, RequestPipeline

__all__ = [
    "OpenLoopWorkload",
    "AdmissionController",
    "HedgeConfig",
    "HedgeCounters",
    "RequestPipeline",
    "OpenLoopResult",
]
