"""Normal-read planning: every requested element is fetched directly.

With all disks healthy, a contiguous logical read maps to one access per
requested element; the only performance-relevant question is *which disk*
each access lands on, and that is entirely the placement's doing — standard
forms pile accesses onto the ``k`` data disks, EC-FRM spreads them over all
``n`` (paper §III/§V-A).
"""

from __future__ import annotations

from ..layout.base import Placement
from .requests import AccessKind, AccessPlan, ElementAccess, ReadRequest

__all__ = ["plan_normal_read"]


def plan_normal_read(
    placement: Placement, request: ReadRequest, element_size: int
) -> AccessPlan:
    """Build the access plan of a normal (failure-free) read.

    Parameters
    ----------
    placement:
        The form under test (standard / rotated / EC-FRM).
    request:
        Contiguous logical element range.
    element_size:
        Element payload size in bytes.
    """
    if element_size <= 0:
        raise ValueError(f"element size must be > 0, got {element_size}")
    plan = AccessPlan(request=request, element_size=element_size)
    for t in request.elements:
        row, e = placement.row_of_data(t)
        plan.add(
            ElementAccess(
                address=placement.locate_data(t),
                kind=AccessKind.REQUESTED,
                row=row,
                element=e,
            )
        )
    return plan
