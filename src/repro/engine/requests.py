"""Request and access-plan data types for the read engine."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum

from ..layout.base import Address

__all__ = ["AccessKind", "ElementAccess", "ReadRequest", "AccessPlan"]


class AccessKind(Enum):
    """Why an element is being fetched."""

    #: a data element the user asked for.
    REQUESTED = "requested"
    #: an extra element fetched only to reconstruct lost data.
    RECONSTRUCTION = "reconstruction"


@dataclass(frozen=True)
class ReadRequest:
    """A contiguous logical read: ``count`` data elements from ``start``.

    This is the paper's workload unit (§VI-B: "randomly generate the start
    point and the read size ... 1 to 20 data elements").
    """

    start: int
    count: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.count <= 0:
            raise ValueError(f"count must be > 0, got {self.count}")

    @property
    def elements(self) -> range:
        """The logical data element indices covered."""
        return range(self.start, self.start + self.count)


@dataclass(frozen=True)
class ElementAccess:
    """One physical element fetch scheduled by a planner."""

    address: Address
    kind: AccessKind
    #: ``(row, element)`` identity of the fetched element in candidate terms.
    row: int
    element: int


@dataclass
class AccessPlan:
    """Everything a request requires from the array, before timing.

    Built by the planners, consumed by the executor and the metrics layer.
    """

    request: ReadRequest
    element_size: int
    accesses: list[ElementAccess] = field(default_factory=list)
    #: disk that failed (degraded plans) or None (normal plans).
    failed_disk: int | None = None
    #: network repair traffic, one ``(address, shipped bytes)`` per helper
    #: read of every reconstruction set — helpers shared with requested
    #: fetches included (their bytes travel either way).  Disks always
    #: read whole slots; sub-element plans ship fewer bytes than fetched.
    repair_reads: list[tuple[Address, int]] = field(default_factory=list)
    #: number of reconstruction sets (lost elements repaired) in the plan.
    repair_sets: int = 0

    def add(self, access: ElementAccess) -> None:
        """Append an access (planners must not double-book an address)."""
        self.accesses.append(access)

    # ------------------------------------------------------------------
    # derived quantities (the paper's metrics come from these)
    # ------------------------------------------------------------------
    @property
    def requested_bytes(self) -> int:
        """User-visible payload size of the request."""
        return self.request.count * self.element_size

    @property
    def total_elements_read(self) -> int:
        """Physical element fetches, including reconstruction reads."""
        return len(self.accesses)

    @property
    def extra_elements_read(self) -> int:
        """Reconstruction-only fetches."""
        return sum(1 for a in self.accesses if a.kind is AccessKind.RECONSTRUCTION)

    @property
    def read_cost(self) -> float:
        """Paper's degraded read cost: elements fetched / elements requested."""
        return self.total_elements_read / self.request.count

    @property
    def repair_bytes_moved(self) -> int:
        """Network bytes the plan's reconstruction sets ship."""
        return sum(nbytes for _, nbytes in self.repair_reads)

    def per_disk_loads(self) -> Counter:
        """Access count per disk — Figure 3 / Figure 7 histograms."""
        return Counter(a.address.disk for a in self.accesses)

    @property
    def max_disk_load(self) -> int:
        """Load on the most-loaded disk (the §III bottleneck quantity)."""
        loads = self.per_disk_loads()
        return max(loads.values()) if loads else 0

    @property
    def disks_touched(self) -> int:
        """Number of distinct disks contributing to the request."""
        return len(self.per_disk_loads())

    def per_disk_batches(self) -> dict[int, list[tuple[int, int]]]:
        """Convert to the DiskArray batch format: disk -> [(slot, nbytes)]."""
        batches: dict[int, list[tuple[int, int]]] = {}
        for a in self.accesses:
            batches.setdefault(a.address.disk, []).append(
                (a.address.slot, self.element_size)
            )
        return batches

    def verify(self) -> None:
        """Sanity-check the plan: no duplicate addresses, no failed-disk reads."""
        seen: set[Address] = set()
        for a in self.accesses:
            if a.address in seen:
                raise AssertionError(f"plan reads {a.address} twice")
            seen.add(a.address)
            if self.failed_disk is not None and a.address.disk == self.failed_disk:
                raise AssertionError(f"plan reads failed disk {self.failed_disk}")
