"""LRU cache for access plans.

Planning a read — especially a degraded read, whose repair-set search is
combinatorial — dominates request latency once payload sizes are small.
Cloud read workloads are heavily repetitive (hot objects, fixed request
sizes), so the same ``(placement, request, failure signature)`` triple
recurs constantly.  :class:`PlanCache` memoizes the planners behind a
bounded LRU keyed on exactly that triple:

* **placement identity** — class, form name, code description and disk
  count, so two stores with identical geometry share entries while any
  geometric difference isolates them;
* **request** — the element-aligned ``(start, count)`` window plus the
  element size;
* **failure signature** — the sorted tuple of failed disks.  Because the
  signature is part of the key, failing or restoring a disk *implicitly*
  invalidates every cached plan: the next lookup simply misses and replans.
  No explicit flush hooks are needed, and restoring the original failure
  state re-hits the old entries.

The cache is thread-safe; hit/miss/build/eviction counters feed the read
service's metrics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from ..layout.base import Placement
from .degraded import plan_degraded_read
from .planner import plan_normal_read
from .requests import AccessPlan, ReadRequest

__all__ = [
    "UnsupportedFailurePatternError",
    "PlanCacheStats",
    "PlanCache",
    "placement_signature",
]


class UnsupportedFailurePatternError(ValueError):
    """A multi-disk failure signature reached the plan cache.

    The cache only serves normal (zero-failure) and single-failure plans;
    patterns with two or more failed disks have no plan object at all —
    they must be served through the store's exhaustive
    :meth:`repro.store.blockstore.BlockStore.read_degraded_multi`
    fallback, the way :meth:`repro.engine.service.ReadService.submit`
    routes them.  Subclasses :class:`ValueError` so pre-1.3 callers that
    caught the untyped error keep working.
    """

    def __init__(self, failed_disks: tuple[int, ...]) -> None:
        super().__init__(
            f"plan cache does not serve multi-failure patterns "
            f"{failed_disks}; route the read through the store's "
            "read_degraded_multi fallback (ReadService.submit does this "
            "automatically)"
        )
        self.failed_disks = failed_disks


def placement_signature(placement: Placement) -> tuple:
    """Hashable identity of a placement's read-relevant geometry.

    Two placements with equal signatures produce identical plans for every
    request, so they may share cache entries.
    """
    return (
        type(placement).__name__,
        placement.name,
        placement.code.describe(),
        placement.num_disks,
    )


@dataclass
class PlanCacheStats:
    """Cumulative cache counters."""

    hits: int = 0
    misses: int = 0
    plans_built: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict[str, int | float]:
        """Plain-dict view for metrics export."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "plans_built": self.plans_built,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """Bounded LRU of :class:`AccessPlan` keyed by (placement, request,
    failure signature).

    Plans are immutable once built (the planners return fresh structures
    and nothing in the execution path mutates them), so returning shared
    references is safe.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: OrderedDict[tuple, AccessPlan] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def _key(
        self,
        placement: Placement,
        request: ReadRequest,
        element_size: int,
        failed_disks: Iterable[int],
    ) -> tuple:
        return (
            placement_signature(placement),
            element_size,
            request.start,
            request.count,
            tuple(sorted(failed_disks)),
        )

    def lookup(
        self,
        placement: Placement,
        request: ReadRequest,
        element_size: int,
        failed_disks: Iterable[int],
    ) -> AccessPlan | None:
        """Return the cached plan for the triple, or None on a miss.

        Raises
        ------
        UnsupportedFailurePatternError
            If the failure signature has two or more disks.  Validated at
            entry so the error surfaces here, typed, rather than as an
            opaque failure deep inside a later :meth:`build`.
        """
        key = self._key(placement, request, element_size, self._signature(failed_disks))
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return plan

    def plan(
        self,
        placement: Placement,
        request: ReadRequest,
        element_size: int,
        failed_disks: Iterable[int],
    ) -> AccessPlan:
        """Return a plan for the triple, building and caching on a miss.

        Equivalent to :meth:`lookup` followed by :meth:`build`; the two
        halves are public so a traced caller can time the cache lookup
        and the planner separately without double-counting cache stats.
        """
        failed = self._signature(failed_disks)
        cached = self.lookup(placement, request, element_size, failed)
        if cached is not None:
            return cached
        return self.build(placement, request, element_size, failed)

    def build(
        self,
        placement: Placement,
        request: ReadRequest,
        element_size: int,
        failed_disks: Iterable[int],
    ) -> AccessPlan:
        """Build a plan for the triple and insert it (no lookup).

        Dispatches to :func:`plan_normal_read` (no failures) or
        :func:`plan_degraded_read` (exactly one).  Multi-failure patterns
        are not cached — they go through the store's exhaustive
        ``read_degraded_multi`` path, which has no plan object to reuse.
        """
        failed = self._signature(failed_disks)
        # Build outside the lock: planning can be expensive, and a rare
        # duplicate build on a race is cheaper than serializing planners.
        if failed:
            plan = plan_degraded_read(placement, request, failed[0], element_size)
        else:
            plan = plan_normal_read(placement, request, element_size)
        key = self._key(placement, request, element_size, failed)
        with self._lock:
            self.stats.plans_built += 1
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return plan

    @staticmethod
    def _signature(failed_disks: Iterable[int]) -> tuple[int, ...]:
        failed = tuple(sorted(failed_disks))
        if len(failed) > 1:
            raise UnsupportedFailurePatternError(failed)
        return failed

    def invalidate_failure(self, failed_disks: Iterable[int]) -> int:
        """Drop every entry planned under the given failure signature.

        The read service calls this when a fault fires *mid-batch*: plans
        built for the old signature are stale (they may route I/O to a
        disk that just failed, or degrade around one that recovered), but
        entries for other signatures remain valid and stay cached.
        Returns the number of entries dropped.
        """
        signature = tuple(sorted(failed_disks))
        with self._lock:
            stale = [k for k in self._entries if k[-1] == signature]
            for k in stale:
                del self._entries[k]
            self.stats.invalidations += len(stale)
        return len(stale)

    def invalidate_elements(
        self,
        start: int,
        stop: int,
        placement: Placement | None = None,
    ) -> int:
        """Drop every entry whose request window overlaps ``[start, stop)``.

        The migration mover calls this after committing a window: the
        window's elements now live at target-layout addresses, and the
        checksums of the rewritten slots have been updated, so a stale
        plan would fetch bytes that *pass* verification yet belong to a
        different element.  Element indices are logical data elements.
        Pass ``placement`` to restrict the sweep to one placement
        signature (entries for other stores sharing the cache survive).
        Returns the number of entries dropped.
        """
        if stop <= start:
            return 0
        signature = placement_signature(placement) if placement is not None else None
        with self._lock:
            stale = []
            for key in self._entries:
                if signature is not None and key[0] != signature:
                    continue
                req_start, req_count = key[2], key[3]
                if req_start < stop and start < req_start + req_count:
                    stale.append(key)
            for k in stale:
                del self._entries[k]
            self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
