"""Whole-disk rebuild planning and timing (paper §II-D's recovery metric).

Rebuilding a failed disk reads each lost element's repair set and writes
the reconstructed element to a replacement.  Reads proceed in parallel
across surviving spindles; the rebuild makespan is gated by the busiest
surviving disk (reads) or by the replacement disk (writes), whichever is
longer.  Placement decides everything: the standard form concentrates
helper reads on the dedicated data disks, while EC-FRM spreads them over
all survivors — so EC-FRM speeds up recovery for the same reason it
speeds up reads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..disks.model import DiskModel
from ..layout.base import Address, Placement

__all__ = ["RebuildPlan", "plan_disk_rebuild", "rebuild_time_s"]


@dataclass(frozen=True)
class RebuildPlan:
    """Read schedule for rebuilding one failed disk over ``rows`` rows.

    Attributes
    ----------
    failed_disk:
        The disk being rebuilt.
    rows:
        Number of candidate rows of data covered.
    reads:
        Deduplicated helper reads: disk -> [(slot, element_index), ...].
    elements_rebuilt:
        Lost elements reconstructed (one per row for all shipped forms).
    """

    failed_disk: int
    rows: int
    reads: dict[int, list[tuple[int, int]]]
    elements_rebuilt: int

    @property
    def total_reads(self) -> int:
        """Distinct element reads across all surviving disks."""
        return sum(len(v) for v in self.reads.values())

    def per_disk_loads(self) -> Counter:
        """Read count per surviving disk."""
        return Counter({d: len(v) for d, v in self.reads.items()})

    @property
    def max_disk_load(self) -> int:
        """Busiest surviving disk's read count — the rebuild bottleneck."""
        loads = self.per_disk_loads()
        return max(loads.values()) if loads else 0


def plan_disk_rebuild(
    placement: Placement, failed_disk: int, rows: int, *, optimize: bool = False
) -> RebuildPlan:
    """Plan the helper reads to rebuild ``failed_disk`` over ``rows`` rows.

    Every element of the failed disk (exactly one per candidate row in all
    three forms) is repaired with the code's preferred repair set; reads
    shared between rows are deduplicated.

    With ``optimize=True`` each row chooses among the code's alternative
    repair sets (see :func:`repro.engine.optimizing.repair_set_alternatives`)
    to keep the cumulative per-disk read histogram flat — a load-aware
    rebuild in the spirit of the paper's bottleneck argument, at equal
    per-row I/O.
    """
    if rows <= 0:
        raise ValueError(f"rows must be > 0, got {rows}")
    if not 0 <= failed_disk < placement.num_disks:
        raise ValueError(
            f"failed disk {failed_disk} out of range for {placement.num_disks} disks"
        )
    code = placement.code
    seen: set[Address] = set()
    reads: dict[int, list[tuple[int, int]]] = {}
    loads: Counter = Counter()
    rebuilt = 0

    def commit(row: int, helpers) -> None:
        for h in sorted(helpers):
            addr = placement.locate_row_element(row, h)
            if addr in seen:
                continue
            seen.add(addr)
            reads.setdefault(addr.disk, []).append((addr.slot, h))
            loads[addr.disk] += 1

    for row in range(rows):
        lost = [
            e
            for e in range(code.n)
            if placement.locate_row_element(row, e).disk == failed_disk
        ]
        for e in lost:
            rebuilt += 1
            if not optimize:
                commit(row, code.repair_plan(e))
                continue
            from .optimizing import _is_sufficient, repair_set_alternatives

            best_helpers = None
            best_score = None
            min_size = None
            for helpers in repair_set_alternatives(code, e, frozenset()):
                if not _is_sufficient(code, e, helpers):
                    continue
                if min_size is None or len(helpers) < min_size:
                    min_size = len(helpers)
            for helpers in repair_set_alternatives(code, e, frozenset()):
                if len(helpers) != min_size or not _is_sufficient(code, e, helpers):
                    continue
                trial = loads.copy()
                fresh = 0
                touched = 0
                for h in helpers:
                    addr = placement.locate_row_element(row, h)
                    touched += trial[addr.disk]
                    if addr not in seen:
                        trial[addr.disk] += 1
                        fresh += 1
                # tie-break on the cumulative hotness of the disks touched,
                # so ties on the max rotate the choice toward cold disks.
                score = (max(trial.values(), default=0), fresh, touched)
                if best_score is None or score < best_score:
                    best_score = score
                    best_helpers = helpers
            assert best_helpers is not None
            commit(row, best_helpers)
    return RebuildPlan(
        failed_disk=failed_disk, rows=rows, reads=reads, elements_rebuilt=rebuilt
    )


def rebuild_time_s(
    plan: RebuildPlan, model: DiskModel, element_size: int
) -> float:
    """Simulated rebuild makespan.

    Surviving disks serve their read lists concurrently; the replacement
    disk streams ``elements_rebuilt`` sequential writes.  Makespan is the
    slower of the two phases (reads and writes overlap in a pipelined
    rebuild).
    """
    if element_size <= 0:
        raise ValueError(f"element size must be > 0, got {element_size}")
    read_time = 0.0
    for disk, accesses in plan.reads.items():
        t = model.service_time_s([(slot, element_size) for slot, _ in accesses])
        read_time = max(read_time, t)
    # The replacement disk is written front to back: one positioning, then
    # pure streaming — regardless of the chunk-store read model.
    write_time = model.positioning_time_s + plan.elements_rebuilt * model.transfer_time_s(
        element_size
    )
    return max(read_time, write_time)
