"""Closed-loop concurrent execution of read plans.

The paper's testbed measured requests one at a time, but production cloud
frontends keep several reads in flight; under concurrency a layout that
spreads load across *all* spindles wins on aggregate throughput even when
its per-request bottleneck equals the standard layout's.  This module
models that regime: ``queue_depth`` requests outstanding, per-disk FCFS
queues, a new request dispatched whenever one completes.

This is the mechanism that most plausibly explains why the paper measured
its rotated baselines slightly *above* standard forms on normal reads
(our strictly serial model puts them slightly below — see EXPERIMENTS.md);
``benchmarks/bench_ablation_concurrency.py`` demonstrates the flip.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..disks.model import DiskModel
from .requests import AccessPlan

__all__ = ["ThroughputResult", "simulate_concurrent"]


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a closed-loop concurrent run.

    Attributes
    ----------
    makespan_s:
        Time from first dispatch to last completion.
    total_requested_bytes:
        Sum of user-visible payloads across all requests.
    throughput_bps:
        ``total_requested_bytes / makespan_s``.
    mean_latency_s:
        Mean per-request completion latency (dispatch to finish).
    latencies_s:
        Per-request completion latency, submission order.
    queue_waits_s:
        Per-request queueing delay, submission order: latency minus the
        request's standalone critical path (its slowest disk served
        alone).  This is the simulated-clock ``queue_wait`` stage the
        tracer records.
    """

    makespan_s: float
    total_requested_bytes: int
    throughput_bps: float
    mean_latency_s: float
    latencies_s: tuple[float, ...] = ()
    queue_waits_s: tuple[float, ...] = ()

    @property
    def throughput_mib_s(self) -> float:
        """Aggregate throughput in MiB/s."""
        return self.throughput_bps / (1024 * 1024)


def simulate_concurrent(
    plans: Sequence[AccessPlan],
    model: DiskModel,
    queue_depth: int,
    *,
    slowdowns: Mapping[int, float] | None = None,
) -> ThroughputResult:
    """Run ``plans`` with up to ``queue_depth`` requests in flight.

    Each request occupies its disks for that disk's batch service time,
    FCFS per disk; the request finishes when its slowest disk does.  A new
    request dispatches as soon as a concurrency slot frees.  With
    ``queue_depth=1`` this degenerates to back-to-back serial execution.

    ``slowdowns`` maps disk id to a service-time multiplier for straggler
    disks (missing disks run at nominal speed); a single straggler on the
    critical path stretches every request that touches it, which is why
    tail-tolerant placements matter.
    """
    if queue_depth <= 0:
        raise ValueError(f"queue depth must be > 0, got {queue_depth}")
    if not plans:
        raise ValueError("no plans to execute")

    disk_free: dict[int, float] = {}
    inflight: list[float] = []  # completion-time heap
    latencies: list[float] = []
    queue_waits: list[float] = []
    clock = 0.0
    last_completion = 0.0

    for plan in plans:
        if len(inflight) >= queue_depth:
            clock = max(clock, heapq.heappop(inflight))
        dispatch = clock
        finish = dispatch
        standalone = 0.0
        for disk, accesses in plan.per_disk_batches().items():
            service = model.service_time_s(accesses)
            if slowdowns:
                service *= slowdowns.get(disk, 1.0)
            standalone = max(standalone, service)
            start = max(dispatch, disk_free.get(disk, 0.0))
            end = start + service
            disk_free[disk] = end
            finish = max(finish, end)
        heapq.heappush(inflight, finish)
        latencies.append(finish - dispatch)
        queue_waits.append(max(0.0, finish - dispatch - standalone))
        last_completion = max(last_completion, finish)

    total_bytes = sum(p.requested_bytes for p in plans)
    makespan = last_completion
    if makespan <= 0:
        raise ValueError("plans produced no disk work")
    return ThroughputResult(
        makespan_s=makespan,
        total_requested_bytes=total_bytes,
        throughput_bps=total_bytes / makespan,
        mean_latency_s=sum(latencies) / len(latencies),
        latencies_s=tuple(latencies),
        queue_waits_s=tuple(queue_waits),
    )
