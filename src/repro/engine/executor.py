"""Plan execution: turn an access plan into simulated time and speed."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..disks.array import BatchTiming, DiskArray
from ..disks.model import DiskModel
from .requests import AccessPlan

__all__ = ["ReadOutcome", "simulate_plan", "execute_plan"]


@dataclass(frozen=True)
class ReadOutcome:
    """Result of timing one access plan.

    Attributes
    ----------
    plan:
        The plan that was executed.
    completion_time_s:
        Simulated wall-clock time (slowest participating disk).
    speed_bps:
        User-visible read speed: requested payload bytes / completion time.
        Note reconstruction fetches inflate the time but not the numerator
        — matching how the paper reports degraded read speed.
    """

    plan: AccessPlan
    completion_time_s: float
    speed_bps: float

    @property
    def speed_mib_s(self) -> float:
        """Speed in MiB/s, the unit of the paper's Figures 8 and 9."""
        return self.speed_bps / (1024 * 1024)


def simulate_plan(
    plan: AccessPlan, model: DiskModel | Mapping[int, DiskModel]
) -> ReadOutcome:
    """Time a plan against a disk model directly (no array state needed).

    Each disk serves its access list independently; completion is the max
    per-disk service time.  This is the hot path of the benchmark harness,
    so it avoids constructing SimDisk objects.

    ``model`` may be a single :class:`DiskModel` (homogeneous array) or a
    mapping ``disk id -> DiskModel`` for heterogeneous arrays — stragglers,
    mixed drive generations (every disk the plan touches must be mapped).
    """
    batches = plan.per_disk_batches()
    homogeneous = isinstance(model, DiskModel)
    completion = 0.0
    for disk, accesses in batches.items():
        if homogeneous:
            disk_model = model
        else:
            try:
                disk_model = model[disk]
            except KeyError:
                raise ValueError(f"no disk model provided for disk {disk}") from None
        t = disk_model.service_time_s(accesses)
        if t > completion:
            completion = t
    if completion <= 0.0:
        raise ValueError("plan has no accesses; cannot compute a speed")
    return ReadOutcome(
        plan=plan,
        completion_time_s=completion,
        speed_bps=plan.requested_bytes / completion,
    )


def execute_plan(plan: AccessPlan, array: DiskArray) -> ReadOutcome:
    """Time a plan against a stateful :class:`DiskArray`.

    Unlike :func:`simulate_plan` this accounts the plan into the disks'
    statistics — each access counted exactly once (accesses, bytes read,
    busy time) by :meth:`DiskArray.execute_batch` — and refuses to touch
    failed disks, so it composes with failure injection in integration
    tests.
    """
    timing: BatchTiming = array.execute_batch(plan.per_disk_batches())
    if timing.completion_time_s <= 0.0:
        raise ValueError("plan has no accesses; cannot compute a speed")
    return ReadOutcome(
        plan=plan,
        completion_time_s=timing.completion_time_s,
        speed_bps=plan.requested_bytes / timing.completion_time_s,
    )
