"""Read engine: planning and timed execution of normal and degraded reads.

* :mod:`repro.engine.requests` — request/plan data types and metrics;
* :mod:`repro.engine.planner` — normal-read planning;
* :mod:`repro.engine.degraded` — degraded-read planning with repair sets;
* :mod:`repro.engine.executor` — timing plans against the disk simulator;
* :mod:`repro.engine.plancache` — LRU memoization of the planners;
* :mod:`repro.engine.service` — batched, plan-cached concurrent reads;
* :mod:`repro.engine.pipeline` — open-loop event scheduler with hedged
  sub-reads, admission control and request coalescing.
"""

from .concurrency import ThroughputResult, simulate_concurrent
from .degraded import plan_degraded_read
from .executor import ReadOutcome, execute_plan, simulate_plan
from .multifailure import plan_degraded_read_multi
from .optimizing import plan_degraded_read_optimized, repair_set_alternatives
from .pipeline import (
    AdmissionController,
    HedgeConfig,
    OpenLoopResult,
    OpenLoopWorkload,
    RequestPipeline,
)
from .plancache import (
    PlanCache,
    PlanCacheStats,
    UnsupportedFailurePatternError,
    placement_signature,
)
from .planner import plan_normal_read
from .rebuild import RebuildPlan, plan_disk_rebuild, rebuild_time_s
from .requests import AccessKind, AccessPlan, ElementAccess, ReadRequest
from .service import BatchReadResult, ReadService, ServiceCounters

__all__ = [
    "ReadRequest",
    "ElementAccess",
    "AccessKind",
    "AccessPlan",
    "plan_normal_read",
    "plan_degraded_read",
    "plan_degraded_read_multi",
    "ReadOutcome",
    "simulate_plan",
    "execute_plan",
    "plan_degraded_read_optimized",
    "repair_set_alternatives",
    "RebuildPlan",
    "plan_disk_rebuild",
    "rebuild_time_s",
    "ThroughputResult",
    "simulate_concurrent",
    "PlanCache",
    "PlanCacheStats",
    "UnsupportedFailurePatternError",
    "placement_signature",
    "ReadService",
    "BatchReadResult",
    "ServiceCounters",
    "OpenLoopWorkload",
    "AdmissionController",
    "HedgeConfig",
    "RequestPipeline",
    "OpenLoopResult",
]
