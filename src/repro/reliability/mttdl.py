"""Reliability modelling: mean time to data loss (MTTDL).

Closes the loop the paper opens with "erasure codes achieve both high
reliability and low storage overhead" (§I): given a code's fault
tolerance and — crucially — how fast a failed disk is *rebuilt*, what is
the array's expected time to data loss?  Faster rebuild shrinks the
window in which additional failures accumulate, so the rebuild speedups
measured by :mod:`repro.engine.rebuild` (LRC's local repair, EC-FRM's
all-spindle spread) translate directly into reliability.

Two independent implementations, cross-validated in tests:

* :func:`mttdl_markov` — exact first-step analysis of the birth-death
  chain (states = failed-disk count, absorbing past the tolerance);
* :func:`mttdl_monte_carlo` — event-driven simulation of the same chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReliabilityParams", "mttdl_markov", "mttdl_monte_carlo", "rebuild_hours"]


@dataclass(frozen=True)
class ReliabilityParams:
    """Birth-death reliability model of one array.

    Parameters
    ----------
    num_disks:
        Spindles in the array.
    fault_tolerance:
        Maximum concurrent failures survived; one more loses data.
    disk_mttf_hours:
        Per-disk mean time to failure (exponential lifetimes).
    rebuild_hours:
        Time to rebuild one failed disk onto a replacement.
    parallel_repair:
        If True, ``i`` failed disks rebuild concurrently (rate ``i/T``);
        otherwise one at a time (rate ``1/T``).
    """

    num_disks: int
    fault_tolerance: int
    disk_mttf_hours: float
    rebuild_hours: float
    parallel_repair: bool = False
    #: probability that a rebuild at the *critical* state (all tolerance
    #: spent) hits a latent sector error it cannot correct — the failure
    #: class behind the paper's SD/STAIR citations (§II-B).  0 disables.
    lse_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.num_disks <= 0:
            raise ValueError("need at least one disk")
        if not 0 < self.fault_tolerance < self.num_disks:
            raise ValueError(
                f"fault tolerance must be in (0, {self.num_disks}), got "
                f"{self.fault_tolerance}"
            )
        if self.disk_mttf_hours <= 0 or self.rebuild_hours <= 0:
            raise ValueError("MTTF and rebuild time must be positive")
        if not 0.0 <= self.lse_prob < 1.0:
            raise ValueError(f"lse_prob must be in [0, 1), got {self.lse_prob}")

    def failure_rate(self, failed: int) -> float:
        """Rate of transitions *toward* data loss with ``failed`` disks down.

        At the critical state (``failed == fault_tolerance``) a rebuild
        that trips a latent sector error also loses data, so a ``lse_prob``
        fraction of the repair rate is redirected into the loss rate.
        """
        rate = (self.num_disks - failed) / self.disk_mttf_hours
        if failed == self.fault_tolerance and self.lse_prob > 0.0:
            rate += self.lse_prob * self._raw_repair_rate(failed)
        return rate

    def _raw_repair_rate(self, failed: int) -> float:
        if failed == 0:
            return 0.0
        concurrent = failed if self.parallel_repair else 1
        return concurrent / self.rebuild_hours

    def repair_rate(self, failed: int) -> float:
        """Rate of *successful* repairs with ``failed`` disks down."""
        rate = self._raw_repair_rate(failed)
        if failed == self.fault_tolerance:
            rate *= 1.0 - self.lse_prob
        return rate


def mttdl_markov(params: ReliabilityParams) -> float:
    """Exact MTTDL via the birth-death first-passage recurrence.

    Let ``h_i`` be the expected time to move from state ``i`` (failed
    disks) to ``i+1`` for the first time::

        h_0 = 1 / lambda_0
        h_i = 1/lambda_i + (mu_i / lambda_i) * h_{i-1}

    Absorption (data loss) happens past state ``f``, so
    ``MTTDL = sum(h_0 .. h_f)``.  All terms are positive, so the
    recurrence is numerically stable even at realistic cloud parameters
    where the naive linear-system formulation loses 20+ digits to
    cancellation.
    """
    total = 0.0
    h_prev = 0.0
    for i in range(params.fault_tolerance + 1):
        lam = params.failure_rate(i)
        mu = params.repair_rate(i)
        h = 1.0 / lam + (mu / lam) * h_prev
        total += h
        h_prev = h
    return total


def mttdl_monte_carlo(
    params: ReliabilityParams, trials: int = 200, seed: int = 0
) -> float:
    """Event-driven estimate of the MTTDL (mean over ``trials`` losses).

    Use accelerated parameters in tests (MTTF within a few orders of the
    rebuild time); realistic cloud parameters make losses astronomically
    rare and the walk correspondingly long.
    """
    if trials <= 0:
        raise ValueError("trials must be > 0")
    rng = np.random.default_rng(seed)
    f = params.fault_tolerance
    total = 0.0
    for _ in range(trials):
        t = 0.0
        failed = 0
        while failed <= f:
            lam = params.failure_rate(failed)
            mu = params.repair_rate(failed)
            rate = lam + mu
            t += rng.exponential(1.0 / rate)
            if rng.random() < lam / rate:
                failed += 1
            else:
                failed -= 1
        total += t
    return total / trials


def rebuild_hours(
    placement, disk_model, element_size: int, rows: int, *, optimize: bool = True
) -> float:
    """Rebuild time of one disk under a placement, in hours.

    Convenience bridge from :mod:`repro.engine.rebuild` to
    :class:`ReliabilityParams` — averages the rebuild makespan over every
    possible failed disk.
    """
    from ..engine.rebuild import plan_disk_rebuild, rebuild_time_s

    times = []
    for failed in range(placement.num_disks):
        plan = plan_disk_rebuild(placement, failed, rows, optimize=optimize)
        times.append(rebuild_time_s(plan, disk_model, element_size))
    return sum(times) / len(times) / 3600.0
