"""Reliability modelling: MTTDL from fault tolerance and rebuild speed.

Connects the read/rebuild performance results to the paper's opening
claim — erasure-coded reliability — via a birth-death Markov model and a
cross-validating Monte Carlo simulation.
"""

from .mttdl import ReliabilityParams, mttdl_markov, mttdl_monte_carlo, rebuild_hours

__all__ = ["ReliabilityParams", "mttdl_markov", "mttdl_monte_carlo", "rebuild_hours"]
