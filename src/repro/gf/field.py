"""Field objects for GF(2^w) with scalar and vectorized NumPy arithmetic.

:class:`GF` is the workhorse of the coding layer.  Scalars are plain Python
ints in ``[0, 2^w)``; buffers are NumPy arrays of the field's element dtype
(uint8 for w<=8, uint16 for w=16).  All bulk operations are expressed as
table gathers so the hot encode/decode paths never loop per element in
Python.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .tables import SUPPORTED_WIDTHS, GFTables, build_tables

__all__ = ["GF", "GF4", "GF8", "GF16", "get_field"]


class GF:
    """Arithmetic in the binary extension field GF(2^w).

    Parameters
    ----------
    w:
        Field width in bits.
    poly:
        Optional primitive-polynomial override (see :func:`build_tables`).

    Notes
    -----
    Addition and subtraction are both XOR.  Multiplication and division are
    table driven.  Vector variants (``mul_vec``, ``axpy`` etc.) operate
    elementwise on NumPy arrays and are the building blocks for bulk
    encoding of whole stripes.
    """

    __slots__ = ("tables", "_exp", "_log", "dtype", "_dtype_can_overflow")

    def __init__(self, w: int, poly: int | None = None) -> None:
        self.tables: GFTables = build_tables(w, poly)
        self._exp = self.tables.exp
        self._log = self.tables.log
        self.dtype = self._exp.dtype
        # True iff the element dtype can hold values outside the field
        # (w=4 in uint8); fields that fill their dtype need no buffer checks.
        self._dtype_can_overflow = int(np.iinfo(self.dtype).max) >= self.order

    # ------------------------------------------------------------------
    # field metadata
    # ------------------------------------------------------------------
    @property
    def w(self) -> int:
        """Field width in bits."""
        return self.tables.w

    @property
    def order(self) -> int:
        """Number of field elements, 2^w."""
        return self.tables.order

    @property
    def group_order(self) -> int:
        """Order of the multiplicative group, 2^w - 1."""
        return self.tables.group_order

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF(2^{self.w}, poly={self.tables.poly:#x})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF)
            and other.w == self.w
            and other.tables.poly == self.tables.poly
        )

    def __hash__(self) -> int:
        return hash((self.w, self.tables.poly))

    def _check(self, *values: int) -> None:
        for v in values:
            if not 0 <= v < self.order:
                raise ValueError(f"{v} is not an element of GF(2^{self.w})")

    # ------------------------------------------------------------------
    # scalar operations
    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Field addition (XOR)."""
        self._check(a, b)
        return a ^ b

    # In characteristic 2 subtraction coincides with addition.
    sub = add

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        self._check(a, b)
        if a == 0 or b == 0:
            return 0
        return int(self._exp[int(self._log[a]) + int(self._log[b])])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ZeroDivisionError for b == 0."""
        self._check(a, b)
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^w)")
        if a == 0:
            return 0
        diff = int(self._log[a]) - int(self._log[b])
        return int(self._exp[diff % self.group_order])

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError for a == 0."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^w)")
        return int(self._exp[self.group_order - int(self._log[a])])

    def pow(self, a: int, e: int) -> int:
        """Raise ``a`` to integer power ``e`` (``e`` may be negative)."""
        self._check(a)
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise ZeroDivisionError("0 ** negative in GF(2^w)")
            return 0
        exponent = (int(self._log[a]) * e) % self.group_order
        return int(self._exp[exponent])

    def exp(self, e: int) -> int:
        """``alpha^e`` for the field's primitive element alpha."""
        return int(self._exp[e % self.group_order])

    def log(self, a: int) -> int:
        """Discrete log base alpha; raises ValueError for a == 0."""
        self._check(a)
        if a == 0:
            raise ValueError("log(0) is undefined")
        return int(self._log[a])

    # ------------------------------------------------------------------
    # vectorized operations (NumPy buffers of field elements)
    # ------------------------------------------------------------------
    def asarray(self, data, *, trusted: bool = False) -> np.ndarray:
        """Coerce ``data`` to a NumPy array of the field's element dtype.

        Values are range-checked against the field order — including when
        the dtype already matches (a uint8 buffer holding 200 is *not* a
        GF(2^4) buffer) — raising :class:`ValueError` instead of letting
        the table gathers fail with an ``IndexError`` or silently read
        garbage.  ``trusted=True`` skips the matching-dtype scan for
        internal callers whose buffers are valid by construction (the hot
        ``axpy`` encode loop); for fields whose elements fill their dtype
        (w=8, w=16) the scan is skipped automatically because out-of-field
        values are unrepresentable.
        """
        arr = np.asarray(data)
        if arr.dtype != self.dtype:
            if arr.size and (arr.min() < 0 or arr.max() >= self.order):
                raise ValueError(f"values outside GF(2^{self.w})")
            arr = arr.astype(self.dtype)
        elif self._dtype_can_overflow and not trusted and arr.size:
            if arr.max() >= self.order:
                raise ValueError(f"values outside GF(2^{self.w})")
        return arr

    def add_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise field addition of two buffers."""
        return np.bitwise_xor(self.asarray(a), self.asarray(b))

    def mul_vec(self, a: np.ndarray, b: np.ndarray, *, trusted: bool = False) -> np.ndarray:
        """Elementwise field multiplication of two buffers (broadcasting)."""
        a = self.asarray(a, trusted=trusted)
        b = self.asarray(b, trusted=trusted)
        # log[0] is a sentinel pointing into the zero pad of exp, so zero
        # operands flow through the gathers without branching.
        return self._exp[self._log[a] + self._log[b]]

    def scalar_mul_vec(self, c: int, a: np.ndarray, *, trusted: bool = False) -> np.ndarray:
        """Multiply buffer ``a`` by field scalar ``c``."""
        self._check(c)
        a = self.asarray(a, trusted=trusted)
        if c == 0:
            return np.zeros_like(a)
        if c == 1:
            return a.copy()
        return self._exp[self._log[a] + int(self._log[c])]

    def axpy(self, acc: np.ndarray, c: int, x: np.ndarray, *, trusted: bool = False) -> None:
        """In-place accumulate ``acc ^= c * x`` (the encode inner loop).

        ``acc`` must be a writable buffer of the field dtype; ``x`` is any
        broadcast-compatible buffer.  This is the single hottest kernel in
        the library: one gather-add-gather plus one XOR, no temporaries
        beyond the product.  Pass ``trusted=True`` only when ``x`` is known
        valid by construction (see :meth:`asarray`).
        """
        self._check(c)
        if c == 0:
            return
        x = self.asarray(x, trusted=trusted)
        if c == 1:
            np.bitwise_xor(acc, x, out=acc)
            return
        product = self._exp[self._log[x] + int(self._log[c])]
        np.bitwise_xor(acc, product, out=acc)

    def inv_vec(self, a: np.ndarray) -> np.ndarray:
        """Elementwise inverse; raises ZeroDivisionError if any entry is 0."""
        a = self.asarray(a)
        if np.any(a == 0):
            raise ZeroDivisionError("zero has no inverse in GF(2^w)")
        return self._exp[self.group_order - self._log[a]]

    def random(self, rng: np.random.Generator, shape, *, nonzero: bool = False) -> np.ndarray:
        """Uniform random field elements with the library's element dtype."""
        low = 1 if nonzero else 0
        return rng.integers(low, self.order, size=shape, dtype=np.int64).astype(self.dtype)


@lru_cache(maxsize=None)
def get_field(w: int, poly: int | None = None) -> GF:
    """Memoized accessor for the field of width ``w``."""
    if w not in SUPPORTED_WIDTHS:
        raise ValueError(f"unsupported field width {w}; supported: {SUPPORTED_WIDTHS}")
    return GF(w, poly)


#: The three fields used throughout the library.
GF4 = get_field(4)
GF8 = get_field(8)
GF16 = get_field(16)
