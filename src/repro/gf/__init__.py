"""Galois field GF(2^w) arithmetic substrate.

This package replaces the paper's C-level GF-Complete / Jerasure dependency
with a table-driven, NumPy-vectorized implementation.  It provides:

* :mod:`repro.gf.tables` — primitive polynomials and log/antilog tables;
* :mod:`repro.gf.field` — the :class:`GF` field object (scalar + bulk ops);
* :mod:`repro.gf.matrix` — dense GF matrix algebra (matmul, inversion, rank);
* :mod:`repro.gf.vandermonde` — Vandermonde/Cauchy generator constructions;
* :mod:`repro.gf.polynomial` — GF polynomials and Lagrange interpolation.
"""

from .field import GF, GF4, GF8, GF16, get_field
from .matrix import (
    SingularMatrixError,
    all_square_submatrices_invertible,
    identity,
    invert,
    is_invertible,
    matmul,
    matvec,
    rank,
    solve,
)
from .polynomial import Poly
from .tables import (
    PRIMITIVE_POLYNOMIALS,
    SUPPORTED_WIDTHS,
    GFTables,
    build_tables,
    carryless_multiply,
    polynomial_mod,
)
from .vandermonde import (
    cauchy_matrix,
    extended_generator,
    systematic_vandermonde_coding_matrix,
    vandermonde,
)

__all__ = [
    "GF",
    "GF4",
    "GF8",
    "GF16",
    "get_field",
    "GFTables",
    "build_tables",
    "carryless_multiply",
    "polynomial_mod",
    "PRIMITIVE_POLYNOMIALS",
    "SUPPORTED_WIDTHS",
    "SingularMatrixError",
    "identity",
    "matmul",
    "matvec",
    "invert",
    "rank",
    "solve",
    "is_invertible",
    "all_square_submatrices_invertible",
    "Poly",
    "vandermonde",
    "systematic_vandermonde_coding_matrix",
    "cauchy_matrix",
    "extended_generator",
]
