"""Generator-matrix constructions for systematic MDS codes over GF(2^w).

Two classic families are provided:

* **Vandermonde-derived systematic generators** — the construction Jerasure
  uses for ``reed_sol_vandermonde_coding_matrix``: build the
  ``(k+m) x k`` Vandermonde matrix, column-reduce the top ``k`` rows to the
  identity, and keep the bottom ``m`` rows as the coding block.  The
  resulting extended generator is MDS for any ``k + m <= 2^w``.
* **Cauchy matrices** — every square submatrix of a Cauchy matrix is
  invertible by construction, so ``[I ; C]`` is MDS without any reduction.
"""

from __future__ import annotations

import numpy as np

from .field import GF
from .matrix import SingularMatrixError, identity, invert, matmul

__all__ = [
    "vandermonde",
    "systematic_vandermonde_coding_matrix",
    "cauchy_matrix",
    "extended_generator",
]


def vandermonde(field: GF, rows: int, cols: int) -> np.ndarray:
    """The ``rows x cols`` Vandermonde matrix ``V[i, j] = i ** j``.

    Row evaluation points are the field elements ``0, 1, 2, ...`` (with the
    convention ``0 ** 0 = 1``), matching the classic Reed-Solomon erasure
    code construction of Plank.
    """
    if rows > field.order:
        raise ValueError(
            f"Vandermonde needs {rows} distinct points but GF(2^{field.w}) "
            f"has only {field.order}"
        )
    out = np.zeros((rows, cols), dtype=field.dtype)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = field.pow(i, j) if (i or j == 0) else 0
    out[0, 0] = 1
    return out


def systematic_vandermonde_coding_matrix(field: GF, k: int, m: int) -> np.ndarray:
    """The ``m x k`` coding block of a systematic Vandermonde RS generator.

    The full extended generator is ``[I_k ; B]`` where ``B`` is the returned
    block.  Obtained by inverting the top ``k x k`` slice of the
    ``(k+m) x k`` Vandermonde matrix and right-multiplying, which maps the
    top slice to the identity while preserving the MDS property.
    """
    if k <= 0 or m < 0:
        raise ValueError(f"invalid RS parameters k={k}, m={m}")
    if k + m > field.order:
        raise ValueError(
            f"RS(k={k}, m={m}) does not fit in GF(2^{field.w}): need "
            f"k + m <= {field.order}"
        )
    v = vandermonde(field, k + m, k)
    try:
        top_inv = invert(field, v[:k])
    except SingularMatrixError as exc:  # pragma: no cover - cannot happen for distinct points
        raise AssertionError("Vandermonde top block must be invertible") from exc
    reduced = matmul(field, v, top_inv)
    return reduced[k:]


def cauchy_matrix(
    field: GF,
    x_points: np.ndarray | list[int],
    y_points: np.ndarray | list[int],
) -> np.ndarray:
    """Cauchy matrix ``C[i, j] = 1 / (x_i + y_j)`` over GF(2^w).

    All ``x_i`` and ``y_j`` must be pairwise distinct *across both lists*
    (in characteristic 2, ``x + y = 0`` iff ``x == y``).
    """
    xs = [int(v) for v in x_points]
    ys = [int(v) for v in y_points]
    if len(set(xs)) != len(xs) or len(set(ys)) != len(ys) or set(xs) & set(ys):
        raise ValueError("Cauchy points must be pairwise distinct across x and y")
    out = np.zeros((len(xs), len(ys)), dtype=field.dtype)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            out[i, j] = field.inv(x ^ y)
    return out


def extended_generator(field: GF, coding_block: np.ndarray) -> np.ndarray:
    """Stack ``[I_k ; B]`` to form the full systematic extended generator."""
    block = field.asarray(coding_block)
    if block.ndim != 2:
        raise ValueError("coding block must be 2-D")
    k = block.shape[1]
    return np.vstack([identity(field, k), block])
