"""Dense matrix algebra over GF(2^w).

Matrices are 2-D NumPy arrays of field elements.  Everything a systematic
erasure code needs is here: multiplication, Gauss-Jordan inversion, rank,
solving linear systems, and exhaustive invertibility checks used by the
code constructors to validate decodability.
"""

from __future__ import annotations

from itertools import combinations
import numpy as np

from .field import GF

__all__ = [
    "SingularMatrixError",
    "identity",
    "matmul",
    "matvec",
    "invert",
    "rank",
    "solve",
    "is_invertible",
    "all_square_submatrices_invertible",
]


class SingularMatrixError(ValueError):
    """Raised when inversion or solving is attempted on a singular matrix."""


def identity(field: GF, n: int) -> np.ndarray:
    """The n-by-n identity matrix over ``field``."""
    return np.eye(n, dtype=field.dtype)


def _as_matrix(field: GF, m) -> np.ndarray:
    arr = field.asarray(m)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr


def matmul(field: GF, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^w).

    Implemented as one vectorized outer product per inner index: for each
    ``t``, accumulate ``a[:, t] (outer*) b[t, :]`` with table gathers, so the
    cost is ``O(k * m * n)`` element ops all executed inside NumPy.
    """
    a = _as_matrix(field, a)
    b = _as_matrix(field, b)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch for matmul: {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=field.dtype)
    for t in range(a.shape[1]):
        out ^= field.mul_vec(a[:, t : t + 1], b[t : t + 1, :])
    return out


def matvec(field: GF, a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Matrix-vector product over GF(2^w)."""
    a = _as_matrix(field, a)
    x = field.asarray(x)
    if x.ndim != 1 or a.shape[1] != x.shape[0]:
        raise ValueError(f"shape mismatch for matvec: {a.shape} @ {x.shape}")
    products = field.mul_vec(a, x[np.newaxis, :])
    return np.bitwise_xor.reduce(products, axis=1)


def invert(field: GF, m) -> np.ndarray:
    """Invert a square matrix via Gauss-Jordan elimination with pivoting.

    Raises
    ------
    SingularMatrixError
        If the matrix is not invertible.
    """
    a = _as_matrix(field, m).copy()
    n = a.shape[0]
    if a.shape[1] != n:
        raise ValueError(f"cannot invert non-square matrix of shape {a.shape}")
    inv = identity(field, n)

    for col in range(n):
        pivot_rows = np.nonzero(a[col:, col])[0]
        if pivot_rows.size == 0:
            raise SingularMatrixError(f"matrix is singular (no pivot in column {col})")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            a[[col, pivot]] = a[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        pivot_inv = field.inv(int(a[col, col]))
        if pivot_inv != 1:
            a[col] = field.scalar_mul_vec(pivot_inv, a[col], trusted=True)
            inv[col] = field.scalar_mul_vec(pivot_inv, inv[col], trusted=True)
        # Eliminate the column everywhere else in one vectorized sweep.
        factors = a[:, col].copy()
        factors[col] = 0
        nz = np.nonzero(factors)[0]
        if nz.size:
            a[nz] ^= field.mul_vec(
                factors[nz, np.newaxis], a[col][np.newaxis, :], trusted=True
            )
            inv[nz] ^= field.mul_vec(
                factors[nz, np.newaxis], inv[col][np.newaxis, :], trusted=True
            )
    return inv


def rank(field: GF, m) -> int:
    """Rank of a matrix over GF(2^w) by forward elimination."""
    a = _as_matrix(field, m).copy()
    rows, cols = a.shape
    r = 0
    for col in range(cols):
        if r == rows:
            break
        pivot_rows = np.nonzero(a[r:, col])[0]
        if pivot_rows.size == 0:
            continue
        pivot = r + int(pivot_rows[0])
        if pivot != r:
            a[[r, pivot]] = a[[pivot, r]]
        pivot_inv = field.inv(int(a[r, col]))
        if pivot_inv != 1:
            a[r] = field.scalar_mul_vec(pivot_inv, a[r], trusted=True)
        factors = a[:, col].copy()
        factors[r] = 0
        nz = np.nonzero(factors)[0]
        if nz.size:
            a[nz] ^= field.mul_vec(
                factors[nz, np.newaxis], a[r][np.newaxis, :], trusted=True
            )
        r += 1
    return r


def is_invertible(field: GF, m) -> bool:
    """True if the square matrix ``m`` is invertible over ``field``."""
    a = _as_matrix(field, m)
    return a.shape[0] == a.shape[1] and rank(field, a) == a.shape[0]


def solve(field: GF, a, b: np.ndarray) -> np.ndarray:
    """Solve ``a @ x = b`` for ``x``.

    ``b`` may be a vector or a matrix whose columns are independent
    right-hand sides (the common case when decoding whole element payloads:
    one column per byte position).
    """
    a = _as_matrix(field, a)
    b = field.asarray(b)
    a_inv = invert(field, a)
    if b.ndim == 1:
        return matvec(field, a_inv, b)
    return matmul(field, a_inv, b)


def all_square_submatrices_invertible(
    field: GF, m, *, max_order: int | None = None
) -> bool:
    """Exhaustively verify every square submatrix of ``m`` is invertible.

    This is the classic MDS/Cauchy property check: a ``k x m`` coefficient
    block extends the identity to an MDS generator iff every square
    submatrix of the block is invertible.  Exponential in the matrix size;
    intended for the small coefficient blocks of real code parameters.
    """
    a = _as_matrix(field, m)
    rows, cols = a.shape
    limit = min(rows, cols)
    if max_order is not None:
        limit = min(limit, max_order)
    for order in range(1, limit + 1):
        for rsel in combinations(range(rows), order):
            sub_rows = a[list(rsel), :]
            for csel in combinations(range(cols), order):
                if not is_invertible(field, sub_rows[:, list(csel)]):
                    return False
    return True
