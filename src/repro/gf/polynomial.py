"""Univariate polynomials over GF(2^w).

Used as an independent oracle for Reed-Solomon tests (a codeword is a
polynomial evaluation; erasures are recovered by Lagrange interpolation)
and available to users who want an evaluation-style RS view.
Coefficients are stored lowest degree first.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .field import GF

__all__ = ["Poly"]


class Poly:
    """Immutable polynomial over a GF(2^w) field.

    Parameters
    ----------
    field:
        The coefficient field.
    coeffs:
        Iterable of coefficients, lowest degree first.  Trailing zeros are
        stripped; the zero polynomial has an empty coefficient tuple and
        degree -1.
    """

    __slots__ = ("field", "coeffs")

    def __init__(self, field: GF, coeffs: Iterable[int]) -> None:
        cs = [int(c) for c in coeffs]
        for c in cs:
            if not 0 <= c < field.order:
                raise ValueError(f"{c} is not an element of GF(2^{field.w})")
        while cs and cs[-1] == 0:
            cs.pop()
        self.field = field
        self.coeffs: tuple[int, ...] = tuple(cs)

    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, field: GF) -> "Poly":
        """The zero polynomial."""
        return cls(field, ())

    @classmethod
    def one(cls, field: GF) -> "Poly":
        """The constant polynomial 1."""
        return cls(field, (1,))

    @classmethod
    def monomial(cls, field: GF, degree: int, coeff: int = 1) -> "Poly":
        """``coeff * x^degree``."""
        if degree < 0:
            raise ValueError("degree must be non-negative")
        return cls(field, (0,) * degree + (coeff,))

    @property
    def degree(self) -> int:
        """Degree of the polynomial; -1 for the zero polynomial."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Poly)
            and other.field == self.field
            and other.coeffs == self.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.field, self.coeffs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_zero():
            return "Poly(0)"
        terms = [f"{c}*x^{i}" for i, c in enumerate(self.coeffs) if c]
        return "Poly(" + " + ".join(terms) + ")"

    def _coerce(self, other: "Poly") -> None:
        if not isinstance(other, Poly) or other.field != self.field:
            raise TypeError("polynomials must share the same field")

    def __add__(self, other: "Poly") -> "Poly":
        self._coerce(other)
        n = max(len(self.coeffs), len(other.coeffs))
        out = [0] * n
        for i, c in enumerate(self.coeffs):
            out[i] ^= c
        for i, c in enumerate(other.coeffs):
            out[i] ^= c
        return Poly(self.field, out)

    # Characteristic 2: subtraction is addition.
    __sub__ = __add__

    def __mul__(self, other: "Poly") -> "Poly":
        self._coerce(other)
        if self.is_zero() or other.is_zero():
            return Poly.zero(self.field)
        f = self.field
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                if b:
                    out[i + j] ^= f.mul(a, b)
        return Poly(self.field, out)

    def scale(self, c: int) -> "Poly":
        """Multiply by the field scalar ``c``."""
        f = self.field
        return Poly(f, [f.mul(c, a) for a in self.coeffs])

    def divmod(self, other: "Poly") -> tuple["Poly", "Poly"]:
        """Polynomial division with remainder."""
        self._coerce(other)
        if other.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        f = self.field
        rem = list(self.coeffs)
        q = [0] * max(0, len(rem) - len(other.coeffs) + 1)
        d = other.degree
        lead_inv = f.inv(other.coeffs[-1])
        for i in range(len(rem) - 1, d - 1, -1):
            if rem[i] == 0:
                continue
            factor = f.mul(rem[i], lead_inv)
            q[i - d] = factor
            for j, b in enumerate(other.coeffs):
                rem[i - d + j] ^= f.mul(factor, b)
        return Poly(f, q), Poly(f, rem)

    # ------------------------------------------------------------------
    def eval(self, x: int) -> int:
        """Evaluate at the field element ``x`` by Horner's rule."""
        f = self.field
        acc = 0
        for c in reversed(self.coeffs):
            acc = f.mul(acc, x) ^ c
        return acc

    def eval_many(self, xs: Sequence[int]) -> np.ndarray:
        """Evaluate at several points (vectorized Horner over the points)."""
        f = self.field
        acc = np.zeros(len(xs), dtype=f.dtype)
        pts = f.asarray(list(xs))
        for c in reversed(self.coeffs):
            acc = f.mul_vec(acc, pts)
            acc ^= f.dtype.type(c)
        return acc

    # ------------------------------------------------------------------
    @classmethod
    def interpolate(cls, field: GF, points: Sequence[tuple[int, int]]) -> "Poly":
        """Lagrange interpolation through ``(x, y)`` points with distinct x."""
        xs = [int(x) for x, _ in points]
        if len(set(xs)) != len(xs):
            raise ValueError("interpolation points must have distinct x")
        result = cls.zero(field)
        for i, (xi, yi) in enumerate(points):
            if yi == 0:
                continue
            basis = cls.one(field)
            denom = 1
            for j, (xj, _) in enumerate(points):
                if i == j:
                    continue
                basis = basis * cls(field, (xj, 1))
                denom = field.mul(denom, xi ^ xj)
            result = result + basis.scale(field.mul(yi, field.inv(denom)))
        return result
