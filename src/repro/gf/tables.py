"""Log/antilog table construction for binary extension fields GF(2^w).

The whole arithmetic substrate of this library is table driven, in the
spirit of GF-Complete / Jerasure: a discrete-log table ``LOG`` and an
anti-log table ``EXP`` over a primitive element ``alpha = 2`` let every
multiplication become two gathers and one addition, which NumPy executes
in bulk over whole element buffers.

Only the table *construction* lives here; :mod:`repro.gf.field` wraps the
tables in a field object with scalar and vectorized operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "PRIMITIVE_POLYNOMIALS",
    "SUPPORTED_WIDTHS",
    "GFTables",
    "build_tables",
    "carryless_multiply",
    "polynomial_mod",
]

#: Default primitive polynomials, written with the implicit leading x^w bit
#: included (e.g. 0x11D = x^8 + x^4 + x^3 + x^2 + 1).  These match the
#: polynomials used by Jerasure / GF-Complete so codewords produced by this
#: library are bit-compatible with those C libraries.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    2: 0b111,          # x^2 + x + 1
    3: 0b1011,         # x^3 + x + 1
    4: 0b10011,        # x^4 + x + 1
    8: 0x11D,          # x^8 + x^4 + x^3 + x^2 + 1
    16: 0x1100B,       # x^16 + x^12 + x^3 + x + 1
}

#: Field widths this library supports end to end.
SUPPORTED_WIDTHS: tuple[int, ...] = tuple(sorted(PRIMITIVE_POLYNOMIALS))


def carryless_multiply(a: int, b: int) -> int:
    """Multiply two binary polynomials (carry-less product of ``a`` and ``b``).

    This is schoolbook polynomial multiplication over GF(2); no reduction is
    applied.  Used to build tables and in tests as an independent oracle.
    """
    if a < 0 or b < 0:
        raise ValueError("carryless_multiply requires non-negative operands")
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def polynomial_mod(value: int, modulus: int) -> int:
    """Reduce binary polynomial ``value`` modulo binary polynomial ``modulus``."""
    if modulus <= 0:
        raise ValueError("modulus must be a positive polynomial")
    mod_degree = modulus.bit_length() - 1
    while value.bit_length() - 1 >= mod_degree and value:
        shift = value.bit_length() - 1 - mod_degree
        value ^= modulus << shift
    return value


def _is_primitive(poly: int, w: int) -> bool:
    """Return True if ``poly`` (degree ``w``) is primitive over GF(2).

    ``x`` must generate the full multiplicative group of order ``2^w - 1``.
    We simply walk powers of ``x``; cost is O(2^w), fine for w <= 16.
    """
    if poly.bit_length() - 1 != w:
        return False
    order = (1 << w) - 1
    value = 1
    seen_one_at = None
    for exponent in range(1, order + 1):
        value = polynomial_mod(value << 1, poly)
        if value == 1:
            seen_one_at = exponent
            break
        if value == 0:
            return False
    return seen_one_at == order


@dataclass(frozen=True)
class GFTables:
    """Immutable log/antilog tables for GF(2^w).

    Attributes
    ----------
    w:
        Field width in bits; the field has ``2^w`` elements.
    poly:
        Primitive polynomial used for reduction (with the leading bit).
    exp:
        ``exp[i] = alpha^i`` for ``i in [0, 2*(2^w - 1))``.  The table is
        doubled so that ``exp[log[a] + log[b]]`` never needs an explicit
        ``mod (2^w - 1)`` on the hot path.
    log:
        ``log[a]`` = discrete log of ``a`` base alpha; ``log[0]`` is a
        sentinel equal to ``2*(2^w - 1)`` pointing at a zero pad slot so
        vectorized multiplies involving zero naturally yield zero.
    """

    w: int
    poly: int
    exp: np.ndarray
    log: np.ndarray

    @property
    def order(self) -> int:
        """Number of elements in the field (2^w)."""
        return 1 << self.w

    @property
    def group_order(self) -> int:
        """Order of the multiplicative group (2^w - 1)."""
        return (1 << self.w) - 1

    @property
    def zero_log(self) -> int:
        """Sentinel discrete-log value assigned to zero."""
        return 2 * self.group_order


def _dtype_for_width(w: int) -> np.dtype:
    if w <= 8:
        return np.dtype(np.uint8)
    if w <= 16:
        return np.dtype(np.uint16)
    raise ValueError(f"unsupported field width {w}; supported: {SUPPORTED_WIDTHS}")


@lru_cache(maxsize=None)
def build_tables(w: int, poly: int | None = None) -> GFTables:
    """Build (and memoize) log/antilog tables for GF(2^w).

    Parameters
    ----------
    w:
        Field width; must be one of :data:`SUPPORTED_WIDTHS`.
    poly:
        Optional override of the reduction polynomial.  It must be primitive
        of degree ``w``; a non-primitive polynomial would leave holes in the
        log table and is rejected.
    """
    if w not in PRIMITIVE_POLYNOMIALS:
        raise ValueError(f"unsupported field width {w}; supported: {SUPPORTED_WIDTHS}")
    if poly is None:
        poly = PRIMITIVE_POLYNOMIALS[w]
    if not _is_primitive(poly, w):
        raise ValueError(f"polynomial {poly:#x} is not primitive of degree {w}")

    order = 1 << w
    group = order - 1
    element_dtype = _dtype_for_width(w)

    # exp is doubled, then zero-padded for the zero sentinel: log[0] is
    # 2*group, and the largest reachable index is log[0] + log[0] = 4*group
    # (both operands zero).  Reads through the pad return 0.
    exp = np.zeros(4 * group + 1, dtype=element_dtype)
    log = np.zeros(order, dtype=np.int64)

    value = 1
    for i in range(group):
        exp[i] = value
        log[value] = i
        value = polynomial_mod(value << 1, poly)
    # Double the cycle so sums of two logs index without a modulo.
    exp[group : 2 * group] = exp[:group]
    # Pad region [2*group, 3*group] stays zero: any product involving the
    # zero sentinel lands here and correctly reads 0.
    log[0] = 2 * group

    exp.setflags(write=False)
    log.setflags(write=False)
    return GFTables(w=w, poly=poly, exp=exp, log=log)
