"""Standard (conventional) horizontal placement — paper Figure 3(a).

Candidate row ``s`` occupies physical row ``s``: element ``e`` sits on disk
``e`` at slot ``s``.  Data always lives on disks ``0..k-1`` and parity on
the dedicated disks ``k..n-1`` — which is exactly why normal reads can use
only ``k`` of the ``n`` spindles, the deficiency EC-FRM attacks.
"""

from __future__ import annotations

from .base import Address, Placement

__all__ = ["StandardPlacement"]


class StandardPlacement(Placement):
    """Dedicated-parity-disk placement (the codes' textbook layout)."""

    name = "standard"

    def locate_row_element(self, row: int, element: int) -> Address:
        if row < 0:
            raise ValueError(f"row must be >= 0, got {row}")
        if not 0 <= element < self.code.n:
            raise ValueError(f"element {element} out of range for n={self.code.n}")
        return Address(disk=element, slot=row)
