"""Placement strategies: standard, rotated, and EC-FRM forms.

These are the three "forms" the paper benchmarks for each candidate code
(§VI: RS / R-RS / EC-FRM-RS and LRC / R-LRC / EC-FRM-LRC).
"""

from ..codes.base import ErasureCode
from .base import Address, Placement
from .frm import FRMPlacement
from .grid import GridPlacement
from .rotated import RotatedPlacement
from .standard import StandardPlacement

__all__ = [
    "Address",
    "Placement",
    "StandardPlacement",
    "RotatedPlacement",
    "FRMPlacement",
    "GridPlacement",
    "PLACEMENT_FACTORIES",
    "make_placement",
]

#: name -> constructor for the three paper forms.
PLACEMENT_FACTORIES = {
    "standard": StandardPlacement,
    "rotated": RotatedPlacement,
    "ec-frm": FRMPlacement,
}


def make_placement(form: str, code: ErasureCode) -> Placement:
    """Instantiate a placement by form name (``standard``/``rotated``/``ec-frm``)."""
    try:
        factory = PLACEMENT_FACTORIES[form]
    except KeyError:
        raise ValueError(
            f"unknown placement form {form!r}; known: {sorted(PLACEMENT_FACTORIES)}"
        ) from None
    return factory(code)
