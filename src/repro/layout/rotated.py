"""Rotated-stripe placement — paper Figure 3(b), the "R-RS"/"R-LRC" forms.

The mapping from logical to physical disks rotates stripe by stripe
(RAID-5 style): element ``e`` of row ``s`` sits on disk ``(e + s*step) mod
n`` at slot ``s``.  Rotation spreads parity across all spindles and helps
degraded reads, but — as the paper's Figure 3(b) argues — parity elements
still sit *within* the rotated data run, so a contiguous normal read keeps
colliding with them and cannot reach the ``ceil(L/n)`` most-loaded-disk
bound that EC-FRM achieves.

``step`` generalises the rotation granularity (default 1 disk per stripe);
``benchmarks/bench_ablation_rotation.py`` sweeps it.
"""

from __future__ import annotations

from math import gcd

from ..codes.base import ErasureCode
from .base import Address, Placement

__all__ = ["RotatedPlacement"]


class RotatedPlacement(Placement):
    """Per-stripe rotated placement with configurable rotation step."""

    name = "rotated"

    def __init__(self, code: ErasureCode, step: int = 1) -> None:
        super().__init__(code)
        if step < 0:
            raise ValueError(f"rotation step must be >= 0, got {step}")
        self.step = step
        if step == 0:
            # Degenerate rotation is just the standard layout; callers
            # almost certainly meant StandardPlacement, but keep it legal
            # for the ablation sweep.
            self.name = "rotated(step=0)"
        elif gcd(step, code.n) != 1:
            # Still valid, but the rotation visits only n/gcd distinct
            # offsets; expose that in the name for reports.
            self.name = f"rotated(step={step})"

    def locate_row_element(self, row: int, element: int) -> Address:
        if row < 0:
            raise ValueError(f"row must be >= 0, got {row}")
        if not 0 <= element < self.code.n:
            raise ValueError(f"element {element} out of range for n={self.code.n}")
        disk = (element + row * self.step) % self.code.n
        return Address(disk=disk, slot=row)
