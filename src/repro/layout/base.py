"""Placement strategies: mapping code elements onto physical disks.

The paper evaluates each candidate code in three *forms*:

* **standard** — every candidate row occupies one physical row; element
  ``e`` lives on disk ``e`` (parities on dedicated parity disks);
* **rotated** — the classic stripe rotation: row ``s`` shifts every element
  by ``s`` disks, so parity placement rotates RAID-5 style;
* **EC-FRM** — the paper's framework: elements re-deployed by group
  structure so data is row-major across *all* disks.

All three share the same logical data model: the byte stream is chopped
into fixed-size *elements*; logical data element ``t`` belongs to candidate
row ``t div k`` as its element ``t mod k``.  A placement only decides the
*physical address* (disk, slot) of each (row, element) pair; that single
degree of freedom is what produces the paper's entire read-performance
story.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..codes.base import ErasureCode

__all__ = ["Address", "Placement"]


@dataclass(frozen=True, order=True)
class Address:
    """Physical location of one element: ``disk`` index and ``slot`` on it.

    Slots are element-sized and monotone along each disk; adjacent slots
    are physically contiguous (the simulator charges no seek between them).
    """

    disk: int
    slot: int


class Placement(ABC):
    """Maps candidate-code rows onto a disk array.

    Subclasses implement :meth:`locate_row_element`; everything else (data
    addressing, row lookup) is shared, because all three forms assign data
    to candidate rows identically — they differ only in physical placement.
    """

    #: registry-style name, e.g. ``"standard"`` / ``"rotated"`` / ``"ec-frm"``.
    name: str = "abstract"

    def __init__(self, code: ErasureCode) -> None:
        self.code = code

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_disks(self) -> int:
        """Disks in the array — always the candidate's ``n``."""
        return self.code.n

    @property
    def k(self) -> int:
        """Data elements per candidate row."""
        return self.code.k

    def row_of_data(self, t: int) -> tuple[int, int]:
        """``(row id, element index)`` of logical data element ``t``.

        Identical across placements: data fills candidate rows in order.
        """
        if t < 0:
            raise ValueError(f"logical data index must be >= 0, got {t}")
        return divmod(t, self.k)

    # ------------------------------------------------------------------
    # physical addressing
    # ------------------------------------------------------------------
    @abstractmethod
    def locate_row_element(self, row: int, element: int) -> Address:
        """Physical address of candidate element ``element`` of row ``row``.

        ``element`` follows the candidate convention: ``< k`` data,
        ``>= k`` parity.
        """

    def locate_data(self, t: int) -> Address:
        """Physical address of logical data element ``t``."""
        row, e = self.row_of_data(t)
        return self.locate_row_element(row, e)

    def row_addresses(self, row: int) -> list[Address]:
        """Addresses of all ``n`` elements of a row, candidate order."""
        return [self.locate_row_element(row, e) for e in range(self.code.n)]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def data_disks_used(self, start: int, count: int) -> dict[int, int]:
        """Per-disk access histogram of a contiguous normal read.

        The paper's Figure 3 / Figure 7(a) quantity: how many element reads
        each disk must serve for a read of ``count`` elements at ``start``.
        """
        loads: dict[int, int] = {}
        for t in range(start, start + count):
            d = self.locate_data(t).disk
            loads[d] = loads.get(d, 0) + 1
        return loads

    def max_disk_load(self, start: int, count: int) -> int:
        """Load on the most-loaded disk for a contiguous normal read."""
        loads = self.data_disks_used(start, count)
        return max(loads.values()) if loads else 0

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"{self.name}[{self.code.describe()}] on {self.num_disks} disks"

    def verify_bijective(self, rows: int) -> None:
        """Assert no two elements of the first ``rows`` rows share an address.

        A placement that double-books a physical slot is corrupt; property
        tests call this for each concrete placement.
        """
        seen: dict[Address, tuple[int, int]] = {}
        for row in range(rows):
            for e in range(self.code.n):
                addr = self.locate_row_element(row, e)
                if not 0 <= addr.disk < self.num_disks:
                    raise AssertionError(f"row {row} element {e} on bad disk {addr.disk}")
                if addr.slot < 0:
                    raise AssertionError(f"row {row} element {e} at negative slot")
                if addr in seen:
                    raise AssertionError(
                        f"address {addr} claimed by {seen[addr]} and {(row, e)}"
                    )
                seen[addr] = (row, e)
