"""EC-FRM placement — the paper's framework as a :class:`Placement`.

Physical rows follow the EC-FRM stripe grid: an EC-FRM stripe spans
``n/r`` physical rows and holds ``n/r`` candidate rows (groups).  Global
candidate row ``row`` maps to EC-FRM stripe ``row div (n/r)`` as its group
``row mod (n/r)``; the group's elements land on the grid slots given by
:class:`repro.frm.FRMGeometry`, so logical data is row-major across all
``n`` disks.
"""

from __future__ import annotations

from ..codes.base import ErasureCode
from ..frm.code import FRMCode
from ..frm.grouping import FRMGeometry
from .base import Address, Placement

__all__ = ["FRMPlacement"]


class FRMPlacement(Placement):
    """Placement induced by the EC-FRM transformation of the candidate."""

    name = "ec-frm"

    def __init__(self, code: ErasureCode) -> None:
        super().__init__(code)
        self.frm = FRMCode(code)
        self.geometry: FRMGeometry = self.frm.geometry
        # Cache per-group element grids; geometry.group_elements is pure but
        # called on every address lookup otherwise.
        self._group_slots = [
            self.geometry.group_elements(i) for i in range(self.geometry.num_groups)
        ]

    def locate_row_element(self, row: int, element: int) -> Address:
        if row < 0:
            raise ValueError(f"row must be >= 0, got {row}")
        if not 0 <= element < self.code.n:
            raise ValueError(f"element {element} out of range for n={self.code.n}")
        g = self.geometry
        stripe, group = divmod(row, g.num_groups)
        pos = self._group_slots[group][element]
        return Address(disk=pos.col, slot=stripe * g.rows + pos.row)

    def locate_data(self, t: int) -> Address:
        """Fast path: logical data is literally row-major over the grid.

        Equivalent to the generic row lookup (asserted in tests) but O(1)
        arithmetic: element ``t`` is at stripe ``t div (k/r * n)``, grid row
        ``(t mod dps) div n``, column ``t mod n``.
        """
        if t < 0:
            raise ValueError(f"logical data index must be >= 0, got {t}")
        g = self.geometry
        stripe, within = divmod(t, g.data_elements_per_stripe)
        return Address(disk=within % g.n, slot=stripe * g.rows + within // g.n)
