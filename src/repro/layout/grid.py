"""Placement adapter for grid (vertical / RAID-6 array) codes.

Lets X-Code, WEAVER, RDP and EVENODD run through the same read engine as
the candidate codes, completing the paper's §III comparison with numbers:
vertical codes spread normal reads like EC-FRM does, but pay their
overhead/flexibility costs elsewhere.

A grid code's whole ``rows x disks`` grid is one *stripe*; logical data
fills the grid's data slots row-major (which round-robins consecutive
elements across all disks).  In :class:`~repro.layout.base.Placement`
terms the stripe is one "row" with ``k`` data elements, so the shared
``row_of_data`` bookkeeping applies unchanged.

Because a stripe places *several* elements per disk, the single-failure
degraded planner's one-loss-per-row invariant does not hold here; use
:func:`repro.engine.plan_degraded_read_multi`, which handles any number
of losses per row (see ``benchmarks/bench_vertical_read_path.py``).
"""

from __future__ import annotations

from ..codes.vertical import VerticalCode
from .base import Address, Placement

__all__ = ["GridPlacement"]


class GridPlacement(Placement):
    """Physical placement of a grid code: stripes stacked vertically."""

    name = "grid"

    def __init__(self, code: VerticalCode) -> None:
        if not isinstance(code, VerticalCode):
            raise TypeError(
                f"GridPlacement requires a grid code, got {type(code).__name__}"
            )
        super().__init__(code)

    @property
    def num_disks(self) -> int:
        """Grid codes' disk count is the grid width, not ``n`` elements."""
        return self.code.disks

    def locate_row_element(self, row: int, element: int) -> Address:
        if row < 0:
            raise ValueError(f"row must be >= 0, got {row}")
        if not 0 <= element < self.code.n:
            raise ValueError(f"element {element} out of range for n={self.code.n}")
        r, c = self.code.grid_position(element)
        return Address(disk=c, slot=row * self.code.rows + r)
