"""A simulated disk: payload storage, failure state, and service statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import DiskModel

__all__ = [
    "DiskFailedError",
    "SlotUnreadableError",
    "SlotMissingError",
    "DiskStats",
    "SimDisk",
]


class DiskFailedError(RuntimeError):
    """Raised on any access to a failed disk."""


class SlotUnreadableError(RuntimeError):
    """A slot cannot be served: the sector is unreadable.

    This is the *latent sector error* of the reliability literature — the
    disk is up and serving other slots, but this one returns an
    unrecoverable read error.  Carries the ``disk_id`` and ``slot`` so the
    store can demote exactly that element to an erasure and reconstruct it.
    """

    def __init__(self, disk_id: int, slot: int, reason: str = "latent sector error"):
        super().__init__(f"disk {disk_id} slot {slot}: {reason}")
        self.disk_id = disk_id
        self.slot = slot


class SlotMissingError(SlotUnreadableError, KeyError):
    """No payload was ever written at the slot.

    Subclasses :class:`SlotUnreadableError` (the store treats a missing
    payload like an unreadable sector: reconstruct and self-heal) and
    ``KeyError`` for backward compatibility with callers that predate the
    typed hierarchy.  New code should catch :class:`SlotUnreadableError`.
    """

    def __init__(self, disk_id: int, slot: int):
        super().__init__(disk_id, slot, reason="no payload written")


@dataclass
class DiskStats:
    """Cumulative service counters for one disk."""

    accesses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time_s: float = 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_time_s = 0.0


class SimDisk:
    """One spindle: a slot-addressed element store plus a service model.

    Payloads are kept sparsely (slot -> bytes); the store layer writes
    element-sized buffers, and the simulator layer may run "timing only"
    without any payloads present.

    Fault surface (driven by :class:`repro.faults.FaultInjector`):

    * :meth:`fail` / :meth:`restore` — crash failures and transient outages;
    * :meth:`mark_unreadable` — latent sector errors on individual slots;
    * :meth:`corrupt_slot` — silent bit rot of a stored payload;
    * :attr:`slowdown` — straggler multiplier applied to every service time.
    """

    def __init__(self, disk_id: int, model: DiskModel) -> None:
        self.disk_id = disk_id
        self.model = model
        self.failed = False
        self.stats = DiskStats()
        #: straggler multiplier: every service time is scaled by this
        #: (aging spindle, background scrub, noisy neighbour).
        self.slowdown = 1.0
        self._slots: dict[int, bytes] = {}
        self._unreadable: set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "FAILED" if self.failed else "ok"
        return f"SimDisk(id={self.disk_id}, {state}, slots={len(self._slots)})"

    # ------------------------------------------------------------------
    # failure control
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Mark the disk failed; its contents become unreachable."""
        self.failed = True

    def restore(self, *, wipe: bool = True) -> None:
        """Bring the disk back.  ``wipe`` (default) discards old contents,
        modelling a *replacement* drive rather than a transient outage.

        A replacement drive starts from factory state: contents, latent
        sector errors, the straggler multiplier *and the service counters*
        are all reset, so post-rebuild accounting starts clean.  A
        transient restore (``wipe=False``) keeps everything — the same
        spindle came back.
        """
        self.failed = False
        if wipe:
            self._slots.clear()
            self._unreadable.clear()
            self.slowdown = 1.0
            self.stats.reset()

    def _check_alive(self) -> None:
        if self.failed:
            raise DiskFailedError(f"disk {self.disk_id} has failed")

    # ------------------------------------------------------------------
    # payload plane
    # ------------------------------------------------------------------
    def write_slot(self, slot: int, payload: bytes | np.ndarray) -> None:
        """Store an element payload at ``slot``.

        Charges the write through the service model (accesses, bytes
        written *and* busy time move together — symmetric with the unified
        read accounting).  Rewriting a slot clears any latent sector error
        on it: the drive remaps the sector on write.
        """
        self._check_alive()
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        buf = bytes(np.asarray(payload, dtype=np.uint8).tobytes()) if isinstance(
            payload, np.ndarray
        ) else bytes(payload)
        self._slots[slot] = buf
        self._unreadable.discard(slot)
        self.stats.accesses += 1
        self.stats.bytes_written += len(buf)
        self.stats.busy_time_s += (
            self.model.service_time_s([(slot, len(buf))]) * self.slowdown
        )

    def read_slot(self, slot: int) -> bytes:
        """Fetch the element payload at ``slot``, counting one access.

        For payload fetches that are already accounted elsewhere (the
        store's batched read path accounts whole batches through
        :meth:`DiskArray.execute_batch`), use :meth:`peek_slot` instead so
        a single physical access is never counted twice.
        """
        self._check_alive()
        buf = self.peek_slot(slot)
        self.stats.accesses += 1
        self.stats.bytes_read += len(buf)
        return buf

    def peek_slot(self, slot: int) -> bytes:
        """Fetch the element payload at ``slot`` without touching stats.

        Still refuses failed disks; this is the data-plane primitive for
        callers that do their own accounting (batch execution) or that
        must not perturb counters (corruption injection in tests).

        Raises
        ------
        SlotUnreadableError
            If the slot carries a latent sector error.
        SlotMissingError
            If no payload was ever written at the slot.
        """
        self._check_alive()
        if slot in self._unreadable:
            raise SlotUnreadableError(self.disk_id, slot)
        try:
            return self._slots[slot]
        except KeyError:
            raise SlotMissingError(self.disk_id, slot) from None

    def has_slot(self, slot: int) -> bool:
        """True if a payload exists at ``slot`` (works on failed disks —
        metadata survives; the *data* is what's unreachable)."""
        return slot in self._slots

    @property
    def occupied_slots(self) -> int:
        """Number of stored element payloads."""
        return len(self._slots)

    def slot_ids(self) -> tuple[int, ...]:
        """Occupied slot ids, ascending (metadata — works on failed disks)."""
        return tuple(sorted(self._slots))

    # ------------------------------------------------------------------
    # fault surface
    # ------------------------------------------------------------------
    def mark_unreadable(self, slot: int) -> None:
        """Inject a latent sector error: reads of ``slot`` now raise
        :class:`SlotUnreadableError` until the slot is rewritten."""
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        self._unreadable.add(slot)

    @property
    def unreadable_slots(self) -> frozenset[int]:
        """Slots currently carrying a latent sector error."""
        return frozenset(self._unreadable)

    def corrupt_slot(
        self, slot: int, rng: np.random.Generator | None = None
    ) -> bytes:
        """Inject silent bit rot: overwrite the payload at ``slot`` with
        garbage guaranteed to differ from the original.

        Bypasses the service model and statistics entirely (bit rot is not
        an I/O) and returns the original payload so tests can assert the
        repaired bytes.  Deterministic for a given ``rng``.
        """
        rng = rng or np.random.default_rng(0xB17)
        try:
            original = self._slots[slot]
        except KeyError:
            raise SlotMissingError(self.disk_id, slot) from None
        buf = np.frombuffer(original, dtype=np.uint8)
        garbage = buf.copy()
        while np.array_equal(garbage, buf):
            garbage = rng.integers(0, 256, size=buf.shape, dtype=np.uint8)
        self._slots[slot] = garbage.tobytes()
        return original

    # ------------------------------------------------------------------
    # timing plane
    # ------------------------------------------------------------------
    def service_time_s(self, accesses: list[tuple[int, int]]) -> float:
        """Service time for a batch of ``(slot, nbytes)`` reads; accounted
        into :attr:`stats` as busy time.  Scaled by :attr:`slowdown`."""
        self._check_alive()
        t = self.model.service_time_s(accesses) * self.slowdown
        self.stats.busy_time_s += t
        return t
