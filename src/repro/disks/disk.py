"""A simulated disk: payload storage, failure state, and service statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import DiskModel

__all__ = ["DiskFailedError", "DiskStats", "SimDisk"]


class DiskFailedError(RuntimeError):
    """Raised on any access to a failed disk."""


@dataclass
class DiskStats:
    """Cumulative service counters for one disk."""

    accesses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time_s: float = 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_time_s = 0.0


class SimDisk:
    """One spindle: a slot-addressed element store plus a service model.

    Payloads are kept sparsely (slot -> bytes); the store layer writes
    element-sized buffers, and the simulator layer may run "timing only"
    without any payloads present.
    """

    def __init__(self, disk_id: int, model: DiskModel) -> None:
        self.disk_id = disk_id
        self.model = model
        self.failed = False
        self.stats = DiskStats()
        self._slots: dict[int, bytes] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "FAILED" if self.failed else "ok"
        return f"SimDisk(id={self.disk_id}, {state}, slots={len(self._slots)})"

    # ------------------------------------------------------------------
    # failure control
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Mark the disk failed; its contents become unreachable."""
        self.failed = True

    def restore(self, *, wipe: bool = True) -> None:
        """Bring the disk back.  ``wipe`` (default) discards old contents,
        modelling a replacement drive rather than a transient outage."""
        self.failed = False
        if wipe:
            self._slots.clear()

    def _check_alive(self) -> None:
        if self.failed:
            raise DiskFailedError(f"disk {self.disk_id} has failed")

    # ------------------------------------------------------------------
    # payload plane
    # ------------------------------------------------------------------
    def write_slot(self, slot: int, payload: bytes | np.ndarray) -> None:
        """Store an element payload at ``slot``."""
        self._check_alive()
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        buf = bytes(np.asarray(payload, dtype=np.uint8).tobytes()) if isinstance(
            payload, np.ndarray
        ) else bytes(payload)
        self._slots[slot] = buf
        self.stats.accesses += 1
        self.stats.bytes_written += len(buf)

    def read_slot(self, slot: int) -> bytes:
        """Fetch the element payload at ``slot``, counting one access.

        For payload fetches that are already accounted elsewhere (the
        store's batched read path accounts whole batches through
        :meth:`DiskArray.execute_batch`), use :meth:`peek_slot` instead so
        a single physical access is never counted twice.
        """
        self._check_alive()
        buf = self.peek_slot(slot)
        self.stats.accesses += 1
        self.stats.bytes_read += len(buf)
        return buf

    def peek_slot(self, slot: int) -> bytes:
        """Fetch the element payload at ``slot`` without touching stats.

        Still refuses failed disks; this is the data-plane primitive for
        callers that do their own accounting (batch execution) or that
        must not perturb counters (corruption injection in tests).
        """
        self._check_alive()
        try:
            return self._slots[slot]
        except KeyError:
            raise KeyError(f"disk {self.disk_id} has no payload at slot {slot}") from None

    def has_slot(self, slot: int) -> bool:
        """True if a payload exists at ``slot`` (works on failed disks —
        metadata survives; the *data* is what's unreachable)."""
        return slot in self._slots

    @property
    def occupied_slots(self) -> int:
        """Number of stored element payloads."""
        return len(self._slots)

    # ------------------------------------------------------------------
    # timing plane
    # ------------------------------------------------------------------
    def service_time_s(self, accesses: list[tuple[int, int]]) -> float:
        """Service time for a batch of ``(slot, nbytes)`` reads; accounted
        into :attr:`stats` as busy time."""
        self._check_alive()
        t = self.model.service_time_s(accesses)
        self.stats.busy_time_s += t
        return t
