"""Mechanical disk service-time model.

The paper measures read speed on a 16-disk array of Seagate Savvio 10K.3
spindles.  We substitute a first-order mechanical model: an access costs a
positioning overhead (average seek + rotational latency) unless it is
physically contiguous with the previous access on the same spindle, plus
payload transfer at the sustained rate.  A request's completion time is the
slowest participating disk's total service time — exactly the paper's §III
bottleneck argument ("the read speed is restricted by the access time on
the slowest disk, which is usually the most loaded disk").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["DiskModel"]


@dataclass(frozen=True)
class DiskModel:
    """Service-time parameters of one spindle.

    Parameters
    ----------
    seek_time_s:
        Average seek time for a random positioning operation.
    rotational_latency_s:
        Average rotational latency (half a revolution).
    transfer_rate_bps:
        Sustained media transfer rate in bytes/second.
    sequential_free:
        If True (default), an access whose slot immediately follows the
        previous access on the same disk pays no positioning cost — the
        head is already there.  Disable to model fully random service.
    """

    seek_time_s: float
    rotational_latency_s: float
    transfer_rate_bps: float
    sequential_free: bool = True

    def __post_init__(self) -> None:
        if self.seek_time_s < 0 or self.rotational_latency_s < 0:
            raise ValueError("positioning times must be non-negative")
        if self.transfer_rate_bps <= 0:
            raise ValueError("transfer rate must be positive")

    @property
    def positioning_time_s(self) -> float:
        """Seek plus rotational latency for a non-contiguous access."""
        return self.seek_time_s + self.rotational_latency_s

    def transfer_time_s(self, nbytes: int) -> float:
        """Media transfer time for ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes / self.transfer_rate_bps

    def access_time_s(self, nbytes: int, *, sequential: bool = False) -> float:
        """Service time of a single access.

        ``sequential`` marks the access as physically contiguous with the
        disk's previous one (no positioning cost when ``sequential_free``).
        """
        t = self.transfer_time_s(nbytes)
        if not (sequential and self.sequential_free):
            t += self.positioning_time_s
        return t

    def service_time_s(self, accesses: Sequence[tuple[int, int]]) -> float:
        """Total service time for a batch of accesses on one spindle.

        Parameters
        ----------
        accesses:
            ``(slot, nbytes)`` pairs.  The disk schedules them in slot
            order (an elevator pass); runs of adjacent slots pay a single
            positioning cost.
        """
        if not accesses:
            return 0.0
        total = 0.0
        prev_slot: int | None = None
        for slot, nbytes in sorted(accesses):
            sequential = prev_slot is not None and slot in (prev_slot, prev_slot + 1)
            total += self.access_time_s(nbytes, sequential=sequential)
            prev_slot = slot
        return total
