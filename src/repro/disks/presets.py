"""Calibrated disk-model presets.

``SAVVIO_10K3`` approximates the drive the paper's testbed used (Seagate
Savvio 10K.3, ST9300603SS: 300 GB, 10 000 rpm 2.5" SAS).  Public datasheet
figures: ~3.9 ms average read seek, 10 000 rpm → 3.0 ms average rotational
latency, and a sustained transfer rate around 125 MB/s mid-platter.

Absolute speeds reported by the simulator depend on these constants; the
paper-reproduction benchmarks only rely on *ratios* between placement
forms, which are insensitive to the exact preset (see
``benchmarks/bench_ablation_element_size.py`` for the sensitivity sweep).
"""

from __future__ import annotations

from .model import DiskModel

__all__ = [
    "SAVVIO_10K3",
    "SAVVIO_10K3_STREAMING",
    "NEARLINE_7K2",
    "SSD_SATA",
    "UNIFORM_UNIT",
    "DISK_PRESETS",
]

MiB = 1024 * 1024

#: The paper's drive: Seagate Savvio 10K.3 (ST9300603SS), serving each
#: element as an independent random I/O (``sequential_free=False``).  This
#: matches chunk-store deployments of the Jerasure era — every element is
#: its own chunk, so even slot-adjacent accesses pay full positioning —
#: and it is the model under which the simulator reproduces the paper's
#: improvement bands (see EXPERIMENTS.md).  The default for all
#: paper-reproduction benchmarks.
SAVVIO_10K3 = DiskModel(
    seek_time_s=3.9e-3,
    rotational_latency_s=3.0e-3,
    transfer_rate_bps=125 * MiB,
    sequential_free=False,
)

#: Same spindle with perfect streaming between adjacent slots — models a
#: store that packs consecutive stripes physically contiguously.  Used by
#: ``bench_ablation_element_size`` to show how streaming compresses the
#: EC-FRM advantage on normal reads.
SAVVIO_10K3_STREAMING = DiskModel(
    seek_time_s=3.9e-3,
    rotational_latency_s=3.0e-3,
    transfer_rate_bps=125 * MiB,
    sequential_free=True,
)

#: A 7200 rpm nearline SATA drive: slower positioning, similar streaming.
NEARLINE_7K2 = DiskModel(
    seek_time_s=8.5e-3,
    rotational_latency_s=4.17e-3,
    transfer_rate_bps=150 * MiB,
)

#: A SATA SSD: negligible positioning, bandwidth-bound.
SSD_SATA = DiskModel(
    seek_time_s=0.05e-3,
    rotational_latency_s=0.0,
    transfer_rate_bps=500 * MiB,
)

#: Abstract unit-cost device: every access costs exactly one time unit.
#: Makes simulated completion time equal the most-loaded disk's access
#: count — handy for analytical tests.
UNIFORM_UNIT = DiskModel(
    seek_time_s=1.0,
    rotational_latency_s=0.0,
    transfer_rate_bps=1e30,
    sequential_free=False,
)

#: name -> preset, for CLI/harness lookups.
DISK_PRESETS: dict[str, DiskModel] = {
    "savvio-10k3": SAVVIO_10K3,
    "savvio-10k3-streaming": SAVVIO_10K3_STREAMING,
    "nearline-7k2": NEARLINE_7K2,
    "ssd-sata": SSD_SATA,
    "uniform-unit": UNIFORM_UNIT,
}
