"""Disk-array simulator substituting the paper's physical 16-disk testbed.

* :mod:`repro.disks.model` — the per-spindle service-time model;
* :mod:`repro.disks.disk` — :class:`SimDisk` (payloads, failure, stats);
* :mod:`repro.disks.array` — :class:`DiskArray` (parallel batches);
* :mod:`repro.disks.presets` — calibrated models incl. the paper's
  Savvio 10K.3.
"""

from .array import BatchTiming, DiskArray
from .disk import (
    DiskFailedError,
    DiskStats,
    SimDisk,
    SlotMissingError,
    SlotUnreadableError,
)
from .model import DiskModel
from .presets import (
    DISK_PRESETS,
    NEARLINE_7K2,
    SAVVIO_10K3,
    SAVVIO_10K3_STREAMING,
    SSD_SATA,
    UNIFORM_UNIT,
)

__all__ = [
    "DiskModel",
    "SimDisk",
    "DiskStats",
    "DiskFailedError",
    "SlotUnreadableError",
    "SlotMissingError",
    "DiskArray",
    "BatchTiming",
    "SAVVIO_10K3",
    "SAVVIO_10K3_STREAMING",
    "NEARLINE_7K2",
    "SSD_SATA",
    "UNIFORM_UNIT",
    "DISK_PRESETS",
]
