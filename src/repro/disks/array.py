"""A parallel disk array executing access batches.

The array implements the paper's timing semantics (§III): disks serve
their access lists concurrently and a request completes when the slowest
participating disk finishes.  Failure injection (fail / restore, plus the
richer schedules of :mod:`repro.faults`) drives the degraded-read and
self-healing experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .disk import DiskFailedError, SimDisk, SlotUnreadableError
from .model import DiskModel

__all__ = ["BatchTiming", "DiskArray"]


@dataclass(frozen=True)
class BatchTiming:
    """Timing result of one parallel batch.

    Attributes
    ----------
    completion_time_s:
        Wall-clock time of the batch: max over per-disk service times.
    per_disk_time_s:
        Service time of each participating disk.
    total_accesses:
        Number of element accesses across all disks.
    total_bytes:
        Bytes moved across all disks.
    payloads:
        ``(disk, slot) -> payload`` for every access, when the batch was
        executed with ``fetch=True``; ``None`` for timing-only batches.
    unreadable:
        ``(disk, slot)`` pairs the fetch could not serve — latent sector
        errors or never-written slots.  The disk still did (and was
        charged for) the positioning work; the payload is simply absent
        from :attr:`payloads`, and the store demotes those elements to
        erasures.  Always empty for timing-only batches.
    """

    completion_time_s: float
    per_disk_time_s: dict[int, float]
    total_accesses: int
    total_bytes: int
    payloads: dict[tuple[int, int], bytes] | None = None
    unreadable: tuple[tuple[int, int], ...] = ()

    @property
    def bottleneck_disk(self) -> int | None:
        """Disk that gated the batch, or None for an empty batch."""
        if not self.per_disk_time_s:
            return None
        return max(self.per_disk_time_s, key=lambda d: self.per_disk_time_s[d])


class DiskArray:
    """``num_disks`` spindles sharing one service model."""

    def __init__(self, num_disks: int, model: DiskModel) -> None:
        if num_disks <= 0:
            raise ValueError(f"need at least one disk, got {num_disks}")
        self.model = model
        self.disks = [SimDisk(i, model) for i in range(num_disks)]
        #: optional observer invoked at the start of every
        #: :meth:`execute_batch` call — the seam a
        #: :class:`repro.faults.FaultInjector` attaches to so faults fire
        #: *mid-workload*, between (or inside) multi-request batches.
        self.on_batch_start: Callable[[], None] | None = None
        # observability: populated by bind_registry(); None keeps the
        # batch path free of any metrics work.
        self._batch_hist = None
        self._batch_counter = None

    def __len__(self) -> int:
        return len(self.disks)

    def __getitem__(self, disk_id: int) -> SimDisk:
        return self.disks[disk_id]

    # ------------------------------------------------------------------
    # failure control
    # ------------------------------------------------------------------
    def fail_disk(self, disk_id: int) -> None:
        """Fail one disk."""
        self.disks[disk_id].fail()

    def restore_disk(self, disk_id: int, *, wipe: bool = True) -> None:
        """Restore one disk (wiped by default, as a replacement drive)."""
        self.disks[disk_id].restore(wipe=wipe)

    @property
    def failed_disks(self) -> list[int]:
        """Currently failed disk ids, ascending."""
        return [d.disk_id for d in self.disks if d.failed]

    @property
    def alive_disks(self) -> list[int]:
        """Currently healthy disk ids, ascending."""
        return [d.disk_id for d in self.disks if not d.failed]

    def slowdowns(self) -> dict[int, float]:
        """Per-disk straggler multipliers, for disks slower than nominal."""
        return {d.disk_id: d.slowdown for d in self.disks if d.slowdown != 1.0}

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def bind_registry(self, registry) -> None:
        """Publish this array into a :class:`repro.obs.MetricsRegistry`.

        Registers the ``disks`` namespace collector and starts feeding a
        log-bucketed histogram of simulated batch service times
        (``disks.batch_seconds``) plus a batch counter.  Duck-typed so
        the disks layer needs no hard dependency on :mod:`repro.obs`.
        """
        registry.register_collector("disks", self.stats_snapshot)
        self._batch_hist = registry.histogram("disks.batch_seconds")
        self._batch_counter = registry.counter("disks.batches_executed")

    def stats_snapshot(self) -> dict:
        """Per-disk service statistics for the ``disks.*`` namespace."""
        per_disk = {
            str(d.disk_id): {
                "accesses": d.stats.accesses,
                "bytes_read": d.stats.bytes_read,
                "bytes_written": d.stats.bytes_written,
                "busy_time_s": d.stats.busy_time_s,
                "failed": d.failed,
            }
            for d in self.disks
        }
        return {
            "count": len(self.disks),
            "failed": self.failed_disks,
            "slowdowns": {str(k): v for k, v in self.slowdowns().items()},
            "total_accesses": sum(d.stats.accesses for d in self.disks),
            "total_bytes_read": sum(d.stats.bytes_read for d in self.disks),
            "total_bytes_written": sum(
                d.stats.bytes_written for d in self.disks
            ),
            "total_busy_time_s": sum(d.stats.busy_time_s for d in self.disks),
            "per_disk": per_disk,
        }

    # ------------------------------------------------------------------
    # timing plane
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        per_disk_accesses: dict[int, list[tuple[int, int]]],
        *,
        fetch: bool = False,
    ) -> BatchTiming:
        """Serve a parallel batch: ``disk id -> [(slot, nbytes), ...]``.

        This is the *single* accounting point for served reads: each access
        in the batch increments the owning disk's ``stats.accesses`` and
        ``bytes_read`` exactly once, and the disk's service time is added
        to ``busy_time_s`` — whether the batch is timing-only or also
        fetches payloads (``fetch=True``).  Callers must not re-read the
        same accesses through :meth:`SimDisk.read_slot` afterwards; that
        would double-count.

        With ``fetch=True`` the returned timing carries the payloads keyed
        ``(disk, slot)``.  Slots that cannot be served — latent sector
        errors, never-written slots — are reported in ``unreadable``
        instead of raising: the disk already did the positioning work, and
        the store turns each unreadable slot into an erasure to
        reconstruct.

        Raises
        ------
        DiskFailedError
            If the batch touches a failed disk — the planner should never
            schedule reads there.  A disk may fail *between* planning and
            execution (fault injection); accesses accounted before the
            failed disk is encountered stay charged — a real array pays
            for the I/O an aborted request already issued.
        """
        if self.on_batch_start is not None:
            self.on_batch_start()
        per_disk_time: dict[int, float] = {}
        total_accesses = 0
        total_bytes = 0
        payloads: dict[tuple[int, int], bytes] | None = {} if fetch else None
        unreadable: list[tuple[int, int]] = []
        for disk_id, accesses in per_disk_accesses.items():
            if not 0 <= disk_id < len(self.disks):
                raise ValueError(f"disk id {disk_id} out of range")
            if not accesses:
                continue
            disk = self.disks[disk_id]
            if disk.failed:
                raise DiskFailedError(f"batch touches failed disk {disk_id}")
            per_disk_time[disk_id] = disk.service_time_s(accesses)
            disk.stats.accesses += len(accesses)
            disk.stats.bytes_read += sum(nbytes for _, nbytes in accesses)
            if payloads is not None:
                for slot, _ in accesses:
                    try:
                        payloads[(disk_id, slot)] = disk.peek_slot(slot)
                    except SlotUnreadableError:
                        unreadable.append((disk_id, slot))
            total_accesses += len(accesses)
            total_bytes += sum(nbytes for _, nbytes in accesses)
        completion = max(per_disk_time.values()) if per_disk_time else 0.0
        if self._batch_hist is not None:
            self._batch_hist.observe(completion)
            self._batch_counter.inc()
        return BatchTiming(
            completion_time_s=completion,
            per_disk_time_s=per_disk_time,
            total_accesses=total_accesses,
            total_bytes=total_bytes,
            payloads=payloads,
            unreadable=tuple(unreadable),
        )

    def reset_stats(self) -> None:
        """Zero every disk's counters."""
        for d in self.disks:
            d.stats.reset()
