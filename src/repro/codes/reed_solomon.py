"""Systematic Reed-Solomon erasure codes RS(k, m) over GF(2^8).

The construction mirrors Jerasure's ``reed_sol_vandermonde_coding_matrix``:
a Vandermonde matrix column-reduced to systematic form, which yields an MDS
code for any ``k + m <= 256``.  This is the "(k, m) Reed-Solomon code" of
the paper (§II-C, Figure 1): ``k`` data disks, ``m`` parity disks, tolerant
of any ``m`` concurrent failures.
"""

from __future__ import annotations

from functools import lru_cache

from ..gf import GF, GF8
from ..gf.vandermonde import extended_generator, systematic_vandermonde_coding_matrix
from .base import MatrixCode

__all__ = ["ReedSolomonCode", "make_rs"]


class ReedSolomonCode(MatrixCode):
    """MDS Reed-Solomon code with ``k`` data and ``m`` parity elements.

    Parameters
    ----------
    k:
        Number of data elements per row.
    m:
        Number of parity elements per row.
    field:
        Coefficient field; defaults to GF(2^8) (byte payloads).

    Notes
    -----
    *Any* ``k`` of the ``n = k + m`` elements suffice to rebuild the row, so
    :meth:`repair_plan` simply picks the ``k`` cheapest survivors.  The MDS
    property is asserted at construction time for small parameters and
    covered by property tests for the rest.
    """

    name = "rs"

    def __init__(self, k: int, m: int, field: GF = GF8) -> None:
        if k <= 0 or m <= 0:
            raise ValueError(f"RS requires k > 0 and m > 0, got k={k}, m={m}")
        block = systematic_vandermonde_coding_matrix(field, k, m)
        super().__init__(extended_generator(field, block), field)
        self.m = m

    def describe(self) -> str:
        return f"RS({self.k},{self.m})"

    @property
    def fault_tolerance(self) -> int:
        # Vandermonde-derived systematic RS is MDS by construction; skip the
        # exhaustive search the generic MatrixCode would run.
        return self.m

    def repair_plan(self, lost: int, have: frozenset[int] = frozenset()) -> frozenset[int]:
        """Any ``k`` survivors repair any element of an MDS code."""
        if not 0 <= lost < self.n:
            raise ValueError(f"element index {lost} out of range for n={self.n}")
        survivors = [i for i in range(self.n) if i != lost]
        preference = sorted(
            survivors,
            key=lambda i: (i not in have, self.is_parity(i), i),
        )
        return frozenset(preference[: self.k])


@lru_cache(maxsize=None)
def make_rs(k: int, m: int) -> ReedSolomonCode:
    """Memoized RS(k, m) constructor over GF(2^8)."""
    return ReedSolomonCode(k, m)
