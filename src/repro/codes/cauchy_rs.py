"""Cauchy Reed-Solomon codes (Blomer et al. 1995) over GF(2^w).

An alternative MDS construction: the coding block is a Cauchy matrix, every
square submatrix of which is invertible by construction, so ``[I ; C]`` is
MDS with no Vandermonde reduction step.  The original motivation (and why
the EC-FRM paper lists it among XOR-based horizontal codes) is that a
Cauchy generator converts mechanically to a pure-XOR bitmatrix schedule;
:meth:`CauchyReedSolomonCode.bitmatrix` exposes that expansion.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..gf import GF, GF8
from ..gf.vandermonde import cauchy_matrix, extended_generator
from .base import MatrixCode
from .reed_solomon import ReedSolomonCode

__all__ = ["CauchyReedSolomonCode", "make_cauchy_rs"]


class CauchyReedSolomonCode(MatrixCode):
    """MDS code whose coding block is a Cauchy matrix.

    Parameters
    ----------
    k, m:
        Data / parity element counts; requires ``k + m <= 2^w``.
    field:
        Coefficient field, GF(2^8) by default.
    x_points, y_points:
        Optional explicit Cauchy evaluation points (``m`` x-points for the
        parity rows, ``k`` y-points for the data columns).  Defaults follow
        Jerasure's ``cauchy_original_coding_matrix``: ``x_i = i`` for
        parities and ``y_j = m + j`` for data.
    """

    name = "cauchy-rs"

    def __init__(
        self,
        k: int,
        m: int,
        field: GF = GF8,
        x_points: tuple[int, ...] | None = None,
        y_points: tuple[int, ...] | None = None,
    ) -> None:
        if k <= 0 or m <= 0:
            raise ValueError(f"Cauchy RS requires k > 0 and m > 0, got k={k}, m={m}")
        if k + m > field.order:
            raise ValueError(f"k + m = {k + m} exceeds field order {field.order}")
        if x_points is None:
            x_points = tuple(range(m))
        if y_points is None:
            y_points = tuple(range(m, m + k))
        block = cauchy_matrix(field, x_points, y_points)
        super().__init__(extended_generator(field, block), field)
        self.m = m
        self.x_points = tuple(int(x) for x in x_points)
        self.y_points = tuple(int(y) for y in y_points)

    def describe(self) -> str:
        return f"CRS({self.k},{self.m})"

    @property
    def fault_tolerance(self) -> int:
        # Cauchy blocks make the generator MDS by construction.
        return self.m

    # Any k survivors suffice, exactly as for Vandermonde RS.
    repair_plan = ReedSolomonCode.repair_plan

    def bitmatrix(self) -> np.ndarray:
        """Expand the coding block to its GF(2) bitmatrix form.

        Each field coefficient ``c`` becomes a ``w x w`` 0/1 block whose
        column ``b`` is the bit pattern of ``c * alpha^b`` — multiplying a
        ``w``-bit data word by ``c`` is then a plain GF(2) matrix-vector
        product, i.e. XORs only.  Shape: ``(m*w, k*w)``.
        """
        f = self.field
        w = f.w
        out = np.zeros((self.m * w, self.k * w), dtype=np.uint8)
        block = self.coding_block
        for r in range(self.m):
            for c in range(self.k):
                coeff = int(block[r, c])
                for b in range(w):
                    value = f.mul(coeff, 1 << b)
                    for bit in range(w):
                        out[r * w + bit, c * w + b] = (value >> bit) & 1
        return out

    def xor_count(self) -> int:
        """Number of XOR ops per coded word implied by the bitmatrix.

        The classic cost metric for XOR-based codes: ones in the bitmatrix
        minus one per output row (the first term of each row is a copy).
        """
        bm = self.bitmatrix()
        return int(bm.sum()) - bm.shape[0]

    @staticmethod
    def _bit_weight(field: GF, coeff: int) -> int:
        """Ones in the w x w bitmatrix block of field coefficient ``coeff``."""
        return sum(
            int(field.mul(coeff, 1 << b)).bit_count() for b in range(field.w)
        )

    @classmethod
    def optimized(cls, k: int, m: int, field: GF = GF8) -> "CauchyReedSolomonCode":
        """A "good" Cauchy code: the Jerasure ``cauchy_good`` trick.

        Scaling any row or column of a Cauchy matrix by a non-zero field
        element preserves the all-square-submatrices-invertible property
        (every minor scales by a non-zero constant), so we greedily divide
        each column, then each row, by the entry whose normalisation
        minimises the bitmatrix weight — fewer ones means fewer XORs per
        encoded word.  Typically saves 10-40% of the XOR cost of the
        default matrix.
        """
        base = cls(k, m, field)
        block = base.coding_block.astype(field.dtype).copy()

        def column_weight(col: np.ndarray) -> int:
            return sum(cls._bit_weight(field, int(v)) for v in col)

        for j in range(k):
            best = block[:, j].copy()
            best_w = column_weight(best)
            for divisor in {int(v) for v in block[:, j]}:
                if divisor in (0, 1):
                    continue
                scaled = field.scalar_mul_vec(field.inv(divisor), block[:, j])
                w = column_weight(scaled)
                if w < best_w:
                    best, best_w = scaled, w
            block[:, j] = best
        for i in range(m):
            best = block[i].copy()
            best_w = column_weight(best)
            for divisor in {int(v) for v in block[i]}:
                if divisor in (0, 1):
                    continue
                scaled = field.scalar_mul_vec(field.inv(divisor), block[i])
                w = column_weight(scaled)
                if w < best_w:
                    best, best_w = scaled, w
            block[i] = best

        code = cls.__new__(cls)
        MatrixCode.__init__(code, extended_generator(field, block), field)
        code.m = m
        code.x_points = base.x_points
        code.y_points = base.y_points
        return code


@lru_cache(maxsize=None)
def make_cauchy_rs(k: int, m: int) -> CauchyReedSolomonCode:
    """Memoized Cauchy RS(k, m) constructor over GF(2^8)."""
    return CauchyReedSolomonCode(k, m)
