"""Vertical codes: X-Code and WEAVER (extensions for the paper's §II/§III).

The EC-FRM paper motivates its framework by contrasting horizontal codes
(RS, LRC) with *vertical* codes, which spread parity across all disks and
therefore balance normal-read load — but cannot combine high fault
tolerance, low overhead, and arbitrary disk counts.  To make that
comparison runnable (``benchmarks/bench_vertical_codes.py``) we implement
the two vertical codes the paper names:

* **X-Code** (Xu & Bruck 1999): ``p`` disks (``p`` prime), ``p`` rows per
  stripe; the last two rows hold diagonal/anti-diagonal XOR parities.
  Tolerates any 2 disk failures at optimal (MDS array) overhead.
* **WEAVER** (Hafner 2005): each disk holds one data and one parity
  element; parity on disk ``i`` XORs the data of the next ``t`` disks.
  Tolerates ``t`` failures but never exceeds 50% storage efficiency.

Both are XOR codes, expressed here as linear codes with 0/1 coefficients
over GF(2^8) so the whole :class:`MatrixCode` machinery (encode, decode,
rank oracles) applies unchanged.  Unlike candidate codes, an element index
maps to a ``(disk, row)`` grid slot via :meth:`VerticalCode.grid_position`,
and fault tolerance is counted in *disks* (columns), not elements.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations

import numpy as np

from ..gf import GF8
from .base import MatrixCode

__all__ = ["VerticalCode", "XCode", "WeaverCode", "make_xcode", "make_weaver"]


def _is_prime(p: int) -> bool:
    if p < 2:
        return False
    for d in range(2, int(p**0.5) + 1):
        if p % d == 0:
            return False
    return True


class VerticalCode(MatrixCode):
    """A linear code whose elements live on a ``rows x disks`` grid.

    Subclasses fill ``_grid``: an integer array of shape ``(rows, disks)``
    holding each slot's element index (data elements first, then parities,
    matching the MatrixCode convention).
    """

    def __init__(self, generator: np.ndarray, grid: np.ndarray) -> None:
        super().__init__(generator, GF8)
        grid = np.asarray(grid, dtype=np.int64)
        if sorted(grid.ravel().tolist()) != list(range(self.n)):
            raise ValueError("grid must contain each element index exactly once")
        self._grid = grid
        self._grid.setflags(write=False)
        self._positions = {
            int(grid[r, c]): (r, c)
            for r in range(grid.shape[0])
            for c in range(grid.shape[1])
        }

    @property
    def rows(self) -> int:
        """Rows per stripe."""
        return self._grid.shape[0]

    @property
    def disks(self) -> int:
        """Number of disks (columns)."""
        return self._grid.shape[1]

    @property
    def grid(self) -> np.ndarray:
        """Read-only ``(rows, disks)`` array of element indices."""
        return self._grid

    def grid_position(self, element: int) -> tuple[int, int]:
        """``(row, disk)`` slot of element ``element``."""
        return self._positions[element]

    def disk_of_element(self, element: int) -> int:
        """Disk (column) holding element ``element``."""
        return self._positions[element][1]

    def elements_on_disk(self, disk: int) -> list[int]:
        """All element indices stored on ``disk``, top row first."""
        return [int(e) for e in self._grid[:, disk]]

    def can_decode_disks(self, failed_disks) -> bool:
        """True if losing whole disks ``failed_disks`` is decodable."""
        erased = [e for d in failed_disks for e in self.elements_on_disk(d)]
        return self.can_decode(erased)

    @property
    def disk_fault_tolerance(self) -> int:
        """Largest ``f`` such that any ``f`` whole-disk failures decode."""
        best = 0
        for f in range(1, self.disks):
            ok = all(
                self.can_decode_disks(pattern)
                for pattern in combinations(range(self.disks), f)
            )
            if ok:
                best = f
            else:
                break
        return best

    def repair_plan(self, lost: int, have: frozenset[int] = frozenset()) -> frozenset[int]:
        """Single-loss repair via the code's XOR equations.

        The generic MatrixCode search starts at ``k`` helpers — absurd for
        array codes whose parity chains repair one element from a handful
        of blocks.  Here we pick the equation containing ``lost`` that
        maximises overlap with ``have`` (fewest extra reads), falling back
        to the generic search only if no single equation applies.
        """
        from ..recovery.single import recovery_equations

        if not 0 <= lost < self.n:
            raise ValueError(f"element index {lost} out of range for n={self.n}")
        best: frozenset[int] | None = None
        best_extra: int | None = None
        for eq in recovery_equations(self):
            if lost not in eq:
                continue
            helpers = eq - {lost}
            extra = len(helpers - have)
            if best_extra is None or extra < best_extra or (
                extra == best_extra and len(helpers) < len(best)  # type: ignore[arg-type]
            ):
                best, best_extra = frozenset(helpers), extra
        if best is not None:
            return best
        return super().repair_plan(lost, have)  # pragma: no cover - all shipped codes have equations

    def data_disk_of_logical(self, t: int) -> int:
        """Disk holding the ``t``-th logical data element (row-major grid order).

        Vertical codes interleave data across all disks, which is exactly
        the normal-read property the EC-FRM paper wants to borrow.
        """
        if not 0 <= t < self.k:
            raise ValueError(f"logical data index {t} out of range for k={self.k}")
        return self._positions[t][1]


class XCode(VerticalCode):
    """X-Code over ``p`` disks (``p`` prime): RAID-6 class vertical MDS code.

    Grid: ``p`` rows by ``p`` disks.  Rows ``0..p-3`` hold data, row ``p-2``
    holds the slope ``+1`` diagonal parities and row ``p-1`` the slope
    ``-1`` anti-diagonal parities:

    * ``P1[j] = XOR_{i=0}^{p-3} d[i, (j + i + 2) mod p]``
    * ``P2[j] = XOR_{i=0}^{p-3} d[i, (j - i - 2) mod p]``

    Tolerates any 2 disk failures with optimal update complexity.
    """

    name = "x-code"

    def __init__(self, p: int) -> None:
        if not _is_prime(p) or p < 3:
            raise ValueError(f"X-Code requires a prime number of disks >= 3, got {p}")
        self.p = p
        k = (p - 2) * p
        n = p * p
        gen = np.zeros((n, k), dtype=np.uint8)
        gen[:k] = np.eye(k, dtype=np.uint8)

        def data_index(i: int, j: int) -> int:
            return i * p + j

        for j in range(p):
            row_p1 = k + j              # parity row p-2, disk j
            row_p2 = k + p + j          # parity row p-1, disk j
            for i in range(p - 2):
                gen[row_p1, data_index(i, (j + i + 2) % p)] = 1
                gen[row_p2, data_index(i, (j - i - 2) % p)] = 1

        grid = np.zeros((p, p), dtype=np.int64)
        for i in range(p - 2):
            for j in range(p):
                grid[i, j] = data_index(i, j)
        for j in range(p):
            grid[p - 2, j] = k + j
            grid[p - 1, j] = k + p + j
        super().__init__(gen, grid)

    def describe(self) -> str:
        return f"X-Code(p={self.p})"


class WeaverCode(VerticalCode):
    """WEAVER(n, t): one data and one parity element per disk.

    Parity on disk ``i`` XORs the data of disks ``i+o`` for offsets ``o``
    in the code's offset set (``t`` offsets).  Storage efficiency is fixed
    at 50% regardless of ``t`` — the overhead weakness the EC-FRM paper
    calls out.

    Hafner's higher-``t`` WEAVER designs require carefully chosen offset
    sets; the naive ``{1..t}`` only reaches tolerance 2.  When ``offsets``
    is omitted the constructor searches the lexicographically smallest
    offset set that achieves disk fault tolerance ``t`` (cheap for the
    array sizes this library simulates), and raises if none exists.
    """

    name = "weaver"

    def __init__(
        self, n_disks: int, t: int, offsets: tuple[int, ...] | None = None
    ) -> None:
        if n_disks < 3 or not 1 <= t < n_disks:
            raise ValueError(f"invalid WEAVER parameters n={n_disks}, t={t}")
        self.t = t
        if offsets is None:
            offsets = self._find_offsets(n_disks, t)
        else:
            offsets = tuple(int(o) for o in offsets)
            if len(offsets) != t:
                raise ValueError(f"need exactly {t} offsets, got {len(offsets)}")
            if len({o % n_disks for o in offsets}) != t or any(
                o % n_disks == 0 for o in offsets
            ):
                raise ValueError("offsets must be distinct and non-zero mod n")
        self.offsets = offsets
        super().__init__(*self._build(n_disks, offsets))

    @staticmethod
    def _build(n_disks: int, offsets: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
        k = n_disks
        gen = np.zeros((2 * n_disks, k), dtype=np.uint8)
        gen[:k] = np.eye(k, dtype=np.uint8)
        for i in range(n_disks):
            for o in offsets:
                gen[k + i, (i + o) % n_disks] = 1
        grid = np.zeros((2, n_disks), dtype=np.int64)
        grid[0] = np.arange(n_disks)
        grid[1] = np.arange(n_disks) + n_disks
        return gen, grid

    @classmethod
    def _find_offsets(cls, n_disks: int, t: int) -> tuple[int, ...]:
        from itertools import combinations as _comb

        for offsets in _comb(range(1, n_disks), t):
            gen, grid = cls._build(n_disks, offsets)
            probe = VerticalCode(gen, grid)
            if probe.disk_fault_tolerance >= t:
                return offsets
        raise ValueError(
            f"no WEAVER offset set of size {t} achieves tolerance {t} on "
            f"{n_disks} disks"
        )

    def describe(self) -> str:
        return f"WEAVER(n={self.disks},t={self.t})"

    @property
    def storage_efficiency(self) -> float:
        """Usable fraction of raw capacity (always 0.5 for WEAVER)."""
        return self.k / self.n


@lru_cache(maxsize=None)
def make_xcode(p: int) -> XCode:
    """Memoized X-Code constructor."""
    return XCode(p)


@lru_cache(maxsize=None)
def make_weaver(n_disks: int, t: int) -> WeaverCode:
    """Memoized WEAVER constructor."""
    return WeaverCode(n_disks, t)
