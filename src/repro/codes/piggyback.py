"""Piggybacked Reed-Solomon codes: MDS with cheap single-data repair.

The piggybacking framework (Rashmi, Shah, Ramchandran, ISIT'13 /
Sigcomm'14 "Hitchhiker") transforms an existing MDS code into a
same-rate, same-fault-tolerance *vector* code whose single-data-element
repair reads strictly fewer bytes.  This module applies design 1 with
two substripes to the library's RS(k, m):

Every element payload is split into halves ``(a, b)`` — substripe *a*
and substripe *b*.  Data element ``i`` stores ``(a_i, b_i)``.  Parity
element ``t`` stores ``(p_t(a), q_t)`` where ``p_t`` is RS parity
function ``t`` and the second half carries a *piggyback*:

* ``q_0     = p_0(b)``                                (kept clean)
* ``q_t     = p_t(b) xor g_t(a)``  for ``t >= 1``,

with ``g_t(a) = xor of {a_i : i in S_t}`` and ``S_1 .. S_{m-1}`` a
near-equal partition of the data indices (GF(2^8) addition is XOR, so
the piggyback is itself a valid linear combination).

**MDS is preserved** (fault tolerance stays ``m``): for any ≤ m element
erasures, the *a*-substripe symbols are a plain RS codeword with ≤ m
erasures — decode substripe *a* fully; every piggyback ``g_t(a)`` is
then computable, which cleans the ``q_t`` back into ``p_t(b)`` — decode
substripe *b*.

**Repair of data element j** (the degraded-read hot path) with
``j in S_t`` reads: the *b*-halves of the other ``k-1`` data elements
plus ``q_0`` (decode substripe *b*, giving ``b_j`` and every ``p_t(b)``),
then ``q_t`` and the *a*-halves of ``S_t \\ {j}`` (strip the piggyback
and XOR out ``a_j``).  That is ``(k + |S_t|) / 2`` element-equivalents
instead of ``k`` — 25% fewer bytes for pb-rs-6-3 — and it is exactly
what :meth:`repair_candidates` hands the minimum-transfer planner.
Disks still read whole slots (checksums verify as usual); the fractions
price the *network*.

The element-level geometry is identical to RS(k, m) — ``n = k + m``
elements, any ``k`` decode the row — so the EC-FRM transform applies
unchanged and Lemma 1 (one element per disk column per group) carries
the fault tolerance through, which ``tests/codes/test_piggyback.py``
verifies with the cross-placement harness.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..gf import GF, GF8
from .base import DecodeFailure, ErasureCode
from .reed_solomon import ReedSolomonCode

__all__ = ["PiggybackRSCode", "make_pb_rs"]


class PiggybackRSCode(ErasureCode):
    """Two-substripe piggybacked RS(k, m) over GF(2^8).

    Parameters
    ----------
    k:
        Number of data elements per row.
    m:
        Number of parity elements; must be >= 2 (the piggyback needs a
        clean parity plus at least one carrier).  Repair savings require
        m >= 3 (with m = 2 the single carrier group spans all data).
    field:
        Coefficient field of the inner RS code; GF(2^8) by default.

    Payloads must have even size — each element splits into two
    substripe halves.
    """

    name = "pb-rs"

    def __init__(self, k: int, m: int, field: GF = GF8) -> None:
        if k <= 0:
            raise ValueError(f"pb-rs requires k > 0, got k={k}")
        if m < 2:
            raise ValueError(
                f"pb-rs requires m >= 2 (a clean parity plus a piggyback "
                f"carrier), got m={m}"
            )
        self.inner = ReedSolomonCode(k, m, field)
        self.m = m
        # S_1 .. S_{m-1}: near-equal contiguous partition of the data
        # indices; carrier parity t piggybacks group S_t.
        groups = m - 1
        bounds = [k * g // groups for g in range(groups + 1)]
        self._groups: tuple[frozenset[int], ...] = tuple(
            frozenset(range(bounds[g], bounds[g + 1])) for g in range(groups)
        )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self.inner.k

    @property
    def n(self) -> int:
        return self.inner.n

    @property
    def fault_tolerance(self) -> int:
        # substripe a is a clean RS codeword and substripe b is one after
        # stripping piggybacks, so any m erasures decode (see module doc).
        return self.m

    def describe(self) -> str:
        return f"PB-RS({self.k},{self.m})"

    def carrier_group(self, j: int) -> tuple[int, frozenset[int]]:
        """``(t, S_t)`` of the carrier parity piggybacking data ``j``."""
        if not self.is_data(j):
            raise ValueError(f"{j} is not a data element index")
        for g, members in enumerate(self._groups):
            if j in members:
                return g + 1, members
        raise AssertionError("groups do not partition the data")  # pragma: no cover

    # ------------------------------------------------------------------
    # substripe plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _halves(payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        size = payload.shape[-1]
        if size % 2:
            raise ValueError(
                f"pb-rs payloads must have even size (two substripes), got {size}"
            )
        half = size // 2
        return payload[..., :half], payload[..., half:]

    def _piggyback(self, a_data: np.ndarray, t: int) -> np.ndarray:
        """``g_t(a)``: XOR of substripe-a data halves in carrier group t."""
        members = sorted(self._groups[t - 1])
        out = a_data[members[0]].copy()
        for i in members[1:]:
            np.bitwise_xor(out, a_data[i], out=out)
        return out

    # ------------------------------------------------------------------
    # coding
    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ValueError(
                f"encode expects ({self.k}, element_size) data, got {data.shape}"
            )
        a, b = self._halves(data)
        pa = self.inner.encode(a)
        q = self.inner.encode(b)
        for t in range(1, self.m):
            np.bitwise_xor(q[t], self._piggyback(a, t), out=q[t])
        return np.concatenate([pa, q], axis=1)

    def can_decode(self, erased: Iterable[int]) -> bool:
        erased_set = frozenset(int(e) for e in erased)
        for e in erased_set:
            if not 0 <= e < self.n:
                raise ValueError(f"element index {e} out of range for n={self.n}")
        return len(erased_set) <= self.m

    def decode(
        self,
        available: Mapping[int, np.ndarray],
        erased: Sequence[int],
        element_size: int,
    ) -> dict[int, np.ndarray]:
        if element_size % 2:
            raise ValueError(
                f"pb-rs payloads must have even size (two substripes), "
                f"got {element_size}"
            )
        erased_list = [int(e) for e in erased]
        erased_set = set(erased_list)
        if erased_set & set(int(i) for i in available):
            raise ValueError("an element cannot be both available and erased")
        half = element_size // 2

        payloads: dict[int, np.ndarray] = {}
        for i, buf in available.items():
            arr = np.asarray(buf, dtype=np.uint8).reshape(-1)
            if arr.shape[0] != element_size:
                raise ValueError(
                    f"element {i} has size {arr.shape[0]}, expected {element_size}"
                )
            payloads[int(i)] = arr

        missing = [i for i in range(self.n) if i not in payloads]

        # Substripe a: every available element contributes a clean RS
        # symbol (data a_i or parity p_t(a)); decode all missing symbols.
        avail_a = {i: buf[:half] for i, buf in payloads.items()}
        solved_a = (
            self.inner.decode(avail_a, missing, half) if missing else {}
        )
        a_data = np.zeros((self.k, half), dtype=np.uint8)
        for i in range(self.k):
            a_data[i] = avail_a[i] if i in avail_a else solved_a[i]

        # Substripe b: strip the piggybacks (computable now that substripe
        # a is fully known) to recover clean p_t(b) symbols, then decode.
        avail_b: dict[int, np.ndarray] = {}
        for i, buf in payloads.items():
            bhalf = buf[half:]
            if i >= self.k and i - self.k >= 1:
                bhalf = np.bitwise_xor(bhalf, self._piggyback(a_data, i - self.k))
            avail_b[i] = bhalf
        solved_b = (
            self.inner.decode(avail_b, missing, half) if missing else {}
        )

        def b_symbol(i: int) -> np.ndarray:
            return avail_b[i] if i in avail_b else solved_b[i]

        out: dict[int, np.ndarray] = {}
        for e in erased_list:
            a_half = avail_a[e] if e in avail_a else solved_a[e]
            b_half = b_symbol(e)
            if e >= self.k and e - self.k >= 1:
                # stored format carries the piggyback; re-add it.
                b_half = np.bitwise_xor(b_half, self._piggyback(a_data, e - self.k))
            out[e] = np.concatenate([a_half, b_half])
        return out

    # ------------------------------------------------------------------
    # repair planning
    # ------------------------------------------------------------------
    def repair_plan(self, lost: int, have: frozenset[int] = frozenset()) -> frozenset[int]:
        """Whole-element planning: any ``k`` survivors (MDS geometry)."""
        if not 0 <= lost < self.n:
            raise ValueError(f"element index {lost} out of range for n={self.n}")
        survivors = [i for i in range(self.n) if i != lost]
        preference = sorted(
            survivors,
            key=lambda i: (i not in have, self.is_parity(i), i),
        )
        return frozenset(preference[: self.k])

    def repair_plan_costed(
        self,
        lost: int,
        cost,
        have: frozenset[int] = frozenset(),
    ) -> frozenset[int]:
        """Cheapest ``k`` survivors under ``cost`` (any k decode)."""
        if not 0 <= lost < self.n:
            raise ValueError(f"element index {lost} out of range for n={self.n}")
        survivors = [i for i in range(self.n) if i != lost]
        preference = sorted(
            survivors,
            key=lambda i: (cost(i), i not in have, self.is_parity(i), i),
        )
        return frozenset(preference[: self.k])

    def repair_candidates(
        self, lost: int, have: frozenset[int] = frozenset()
    ) -> list[dict[int, float]]:
        """The piggyback sub-element schedule, then the conventional set.

        For a lost data element the sub-element candidate reads half of
        every helper except the carrier-group peers (whose *a*-halves are
        needed too): ``(k + |S_t|) / 2`` element-equivalents total.  Its
        whole-element support is ``k + 1`` elements, solvable on its own
        (MDS), so the data plane's full-element fallback always works.
        """
        candidates: list[dict[int, float]] = []
        if self.is_data(lost):
            t, members = self.carrier_group(lost)
            reads: dict[int, float] = {}
            for i in range(self.k):
                if i == lost:
                    continue
                # b_i always; a_i too when i sits in the carrier group.
                reads[i] = 1.0 if i in members else 0.5
            reads[self.k] = 0.5        # q_0 = p_0(b), clean
            reads[self.k + t] = 0.5    # q_t, the piggyback carrier
            candidates.append(reads)
        candidates.append({h: 1.0 for h in self.repair_plan(lost, have)})
        return candidates


@lru_cache(maxsize=None)
def make_pb_rs(k: int, m: int) -> PiggybackRSCode:
    """Memoized piggybacked RS(k, m) constructor over GF(2^8)."""
    return PiggybackRSCode(k, m)
