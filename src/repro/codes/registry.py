"""Name-based registry of code constructors.

Lets the CLI, harness and configuration files refer to codes by compact
spec strings, e.g. ``"rs-6-3"``, ``"lrc-6-2-2"``, ``"cauchy-rs-4-2"``.
"""

from __future__ import annotations

from typing import Callable

from .base import ErasureCode
from .cauchy_rs import make_cauchy_rs
from .lrc import make_lrc
from .piggyback import make_pb_rs
from .reed_solomon import make_rs

__all__ = ["CODE_FACTORIES", "parse_code_spec", "register_code_factory"]

#: name -> (factory, arity) for spec parsing.
CODE_FACTORIES: dict[str, tuple[Callable[..., ErasureCode], int]] = {
    "rs": (make_rs, 2),
    "lrc": (make_lrc, 3),
    "cauchy-rs": (make_cauchy_rs, 2),
    "pb-rs": (make_pb_rs, 2),
}


def register_code_factory(name: str, factory: Callable[..., ErasureCode], arity: int) -> None:
    """Register a custom candidate-code factory under ``name``.

    Raises ValueError if the name is taken (overwriting silently would make
    spec strings ambiguous across a process).
    """
    if name in CODE_FACTORIES:
        raise ValueError(f"code factory {name!r} already registered")
    if arity <= 0:
        raise ValueError("arity must be positive")
    CODE_FACTORIES[name] = (factory, arity)


def parse_code_spec(spec: str) -> ErasureCode:
    """Instantiate a code from a spec string like ``"rs-6-3"``.

    The spec is the factory name followed by its integer parameters,
    joined by dashes.  Factory names may themselves contain dashes
    (``cauchy-rs-4-2``); the longest registered prefix wins.
    """
    parts = spec.strip().lower().split("-")
    for split in range(len(parts) - 1, 0, -1):
        name = "-".join(parts[:split])
        if name in CODE_FACTORIES:
            factory, arity = CODE_FACTORIES[name]
            args = parts[split:]
            if len(args) != arity:
                raise ValueError(
                    f"code {name!r} takes {arity} parameters, got {len(args)} in {spec!r}"
                )
            try:
                numbers = [int(a) for a in args]
            except ValueError as exc:
                raise ValueError(f"non-integer parameter in code spec {spec!r}") from exc
            return factory(*numbers)
    raise ValueError(
        f"unknown code spec {spec!r}; registered: {sorted(CODE_FACTORIES)}"
    )
