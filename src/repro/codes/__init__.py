"""Erasure codes: the candidate codes EC-FRM integrates, plus extensions.

* :mod:`repro.codes.base` — :class:`ErasureCode` / :class:`MatrixCode`
  interfaces shared by every code in the library;
* :mod:`repro.codes.reed_solomon` — systematic Vandermonde RS(k, m);
* :mod:`repro.codes.lrc` — Azure-style LRC(k, l, m);
* :mod:`repro.codes.cauchy_rs` — Cauchy RS with bitmatrix expansion;
* :mod:`repro.codes.piggyback` — piggybacked RS (cheap single repair);
* :mod:`repro.codes.vertical` — X-Code and WEAVER (comparison extensions);
* :mod:`repro.codes.registry` — spec-string parsing (``"rs-6-3"``).
"""

from .base import DecodeFailure, ErasureCode, MatrixCode
from .cauchy_rs import CauchyReedSolomonCode, make_cauchy_rs
from .lrc import LocalReconstructionCode, make_lrc
from .piggyback import PiggybackRSCode, make_pb_rs
from .raid6 import EvenOddCode, RDPCode, StarCode, make_evenodd, make_rdp, make_star
from .reed_solomon import ReedSolomonCode, make_rs
from .registry import CODE_FACTORIES, parse_code_spec, register_code_factory
from .vertical import VerticalCode, WeaverCode, XCode, make_weaver, make_xcode

__all__ = [
    "DecodeFailure",
    "ErasureCode",
    "MatrixCode",
    "ReedSolomonCode",
    "make_rs",
    "LocalReconstructionCode",
    "make_lrc",
    "CauchyReedSolomonCode",
    "make_cauchy_rs",
    "PiggybackRSCode",
    "make_pb_rs",
    "VerticalCode",
    "XCode",
    "WeaverCode",
    "make_xcode",
    "make_weaver",
    "RDPCode",
    "EvenOddCode",
    "make_rdp",
    "make_evenodd",
    "StarCode",
    "make_star",
    "CODE_FACTORIES",
    "parse_code_spec",
    "register_code_factory",
]
