"""Abstract interfaces for single-row erasure codes ("candidate codes").

EC-FRM (paper §IV-A) integrates *candidate codes*: codes whose stripe is a
single row of ``n`` elements, ``k`` of them data.  Reed-Solomon and Azure
LRC are the two candidates the paper evaluates; both are expressed here as
systematic linear codes over GF(2^w) with an ``n x k`` *extended generator*
matrix whose top ``k`` rows are the identity.

Element indexing convention used across the library:

* indices ``0 .. k-1`` are the data elements of the row, in logical order;
* indices ``k .. n-1`` are the parity elements.

Payloads are byte buffers: an element is a 1-D ``uint8`` array, and a row's
worth of elements is a 2-D array of shape ``(count, element_size)``.  All
encode/decode kernels are vectorized across the payload axis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..gf import GF, GF8
from ..gf import matrix as gfm

__all__ = ["DecodeFailure", "ErasureCode", "MatrixCode"]


class DecodeFailure(ValueError):
    """Raised when an erasure pattern exceeds what the code can decode."""


class ErasureCode(ABC):
    """A systematic single-row erasure code.

    Subclasses must provide the code geometry (``k``, ``n``), an
    ``encode``/``decode`` pair, and repair planning for degraded reads.
    """

    #: short registry name, e.g. ``"rs"`` or ``"lrc"``.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def k(self) -> int:
        """Number of data elements per row."""

    @property
    @abstractmethod
    def n(self) -> int:
        """Total number of elements per row (data + parity)."""

    @property
    def num_parity(self) -> int:
        """Number of parity elements per row."""
        return self.n - self.k

    @property
    @abstractmethod
    def fault_tolerance(self) -> int:
        """Largest ``f`` such that *any* ``f`` erasures are decodable."""

    @property
    def storage_overhead(self) -> float:
        """Raw-to-usable storage ratio, ``n / k``."""
        return self.n / self.k

    def is_data(self, index: int) -> bool:
        """True if element ``index`` is a data element."""
        return 0 <= index < self.k

    def is_parity(self, index: int) -> bool:
        """True if element ``index`` is a parity element."""
        return self.k <= index < self.n

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"{self.name}(k={self.k}, n={self.n}, f={self.fault_tolerance})"

    # ------------------------------------------------------------------
    # coding
    # ------------------------------------------------------------------
    @abstractmethod
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Compute parities for one row.

        Parameters
        ----------
        data:
            ``(k, element_size)`` uint8 array of data payloads.

        Returns
        -------
        ``(n - k, element_size)`` uint8 array of parity payloads.
        """

    @abstractmethod
    def decode(
        self,
        available: Mapping[int, np.ndarray],
        erased: Sequence[int],
        element_size: int,
    ) -> dict[int, np.ndarray]:
        """Reconstruct the payloads of ``erased`` element indices.

        Parameters
        ----------
        available:
            Map from surviving element index to its payload.  Need not
            contain every surviving element, only enough to decode.
        erased:
            Element indices to reconstruct.
        element_size:
            Payload size in bytes (used when ``available`` is overdetermined
            or to size outputs).

        Raises
        ------
        DecodeFailure
            If the erasures cannot be reconstructed from ``available``.
        """

    @abstractmethod
    def can_decode(self, erased: Iterable[int]) -> bool:
        """True if the erasure pattern is decodable (given all survivors)."""

    # ------------------------------------------------------------------
    # repair planning (used by the degraded-read planner)
    # ------------------------------------------------------------------
    @abstractmethod
    def repair_plan(self, lost: int, have: frozenset[int] = frozenset()) -> frozenset[int]:
        """A read set sufficient to reconstruct single lost element ``lost``.

        Parameters
        ----------
        lost:
            The erased element index.
        have:
            Element indices whose payloads the caller will already hold
            (e.g. because the user's read request covers them); the plan
            prefers these as helpers to minimise *extra* disk accesses.

        Returns
        -------
        The complete helper set (``have`` members it uses included); never
        contains ``lost``.
        """

    def repair_io_count(self, lost: int) -> int:
        """Number of element reads needed to repair ``lost`` from scratch."""
        return len(self.repair_plan(lost))

    def repair_candidates(
        self, lost: int, have: frozenset[int] = frozenset()
    ) -> list[dict[int, float]]:
        """Alternative repair read-sets for ``lost``, as ``{helper: fraction}``.

        Each candidate maps helper element indices to the fraction of the
        element's bytes the reconstruction consumes — sub-element repair
        (piggybacked codes) reads the whole slot off the disk but only
        ships that fraction over the network.  Contract: every candidate's
        *whole-element* support set must decode ``[lost]`` on its own, so
        the data plane can always fall back to full-element decoding.
        The minimum-transfer planner (:mod:`repro.net.planner`) prices the
        candidates against a rack topology and picks the cheapest.

        The default is the single conventional plan at full fraction.
        """
        return [{h: 1.0 for h in self.repair_plan(lost, have)}]

    # ------------------------------------------------------------------
    # verification helpers
    # ------------------------------------------------------------------
    def verify_codeword(self, elements: np.ndarray) -> bool:
        """Check that a full row ``(n, element_size)`` is a valid codeword."""
        elements = np.asarray(elements, dtype=np.uint8)
        if elements.shape[0] != self.n:
            raise ValueError(f"expected {self.n} elements, got {elements.shape[0]}")
        parity = self.encode(elements[: self.k])
        return bool(np.array_equal(parity, elements[self.k :]))


class MatrixCode(ErasureCode):
    """Systematic linear code defined by an extended generator matrix.

    The extended generator ``G`` has shape ``(n, k)`` with ``G[:k] = I``.
    Element ``i`` of a codeword is ``G[i] @ data`` over GF(2^w).  Decoding
    treats every available element as a linear equation over the erased
    data unknowns and solves by Gaussian elimination, which is *maximally
    recoverable*: any pattern that is information-theoretically decodable
    under these coefficients is decoded.
    """

    def __init__(self, generator: np.ndarray, field: GF = GF8) -> None:
        gen = field.asarray(generator)
        if gen.ndim != 2:
            raise ValueError("generator must be 2-D")
        n, k = gen.shape
        if n <= k:
            raise ValueError(f"generator must have more rows than columns, got {gen.shape}")
        if not np.array_equal(gen[:k], gfm.identity(field, k)):
            raise ValueError("extended generator must start with the identity block")
        self.field = field
        self._generator = gen.copy()
        self._generator.setflags(write=False)
        self._k = k
        self._n = n
        self._fault_tolerance: int | None = None

    # -- geometry -------------------------------------------------------
    @property
    def k(self) -> int:
        return self._k

    @property
    def n(self) -> int:
        return self._n

    @property
    def generator(self) -> np.ndarray:
        """The read-only ``(n, k)`` extended generator matrix."""
        return self._generator

    @property
    def coding_block(self) -> np.ndarray:
        """The bottom ``(n-k, k)`` coefficient block of the generator."""
        return self._generator[self._k :]

    @property
    def fault_tolerance(self) -> int:
        """Computed (and cached) by exhaustive erasure-pattern search."""
        if self._fault_tolerance is None:
            self._fault_tolerance = self._compute_fault_tolerance()
        return self._fault_tolerance

    def _compute_fault_tolerance(self) -> int:
        best = 0
        for f in range(1, self.num_parity + 1):
            if all(self.can_decode(pattern) for pattern in combinations(range(self.n), f)):
                best = f
            else:
                break
        return best

    @property
    def is_mds(self) -> bool:
        """True if the code tolerates the theoretical maximum ``n - k``."""
        return self.fault_tolerance == self.num_parity

    # -- coding ---------------------------------------------------------
    @staticmethod
    def _payload(data, element_size: int | None = None) -> np.ndarray:
        arr = np.asarray(data, dtype=np.uint8)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        if arr.ndim != 2:
            raise ValueError(f"payload must be 1-D or 2-D, got shape {arr.shape}")
        if element_size is not None and arr.shape[1] != element_size:
            raise ValueError(
                f"payload element size {arr.shape[1]} != expected {element_size}"
            )
        return arr

    def _symbols(self, buf: np.ndarray) -> np.ndarray:
        """View a uint8 payload as field symbols (w=8: identity; w=16:
        little-endian uint16 pairs).  Requires the payload length to be a
        multiple of the symbol width."""
        if self.field.w == 8:
            return buf
        width = self.field.w // 8
        if buf.shape[-1] % width:
            raise ValueError(
                f"payload size {buf.shape[-1]} not a multiple of the "
                f"{width}-byte symbol width of GF(2^{self.field.w})"
            )
        return np.ascontiguousarray(buf).view(self.field.dtype)

    @staticmethod
    def _bytes_of(symbols: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`_symbols`: back to a uint8 payload view."""
        if symbols.dtype == np.uint8:
            return symbols
        return symbols.view(np.uint8)

    def encode(self, data: np.ndarray) -> np.ndarray:
        data = self._payload(data)
        if data.shape[0] != self.k:
            raise ValueError(f"encode expects {self.k} data elements, got {data.shape[0]}")
        if self.field.w not in (8, 16):
            raise NotImplementedError("byte payloads require a GF(2^8) or GF(2^16) code")
        symbols = self._symbols(data)
        out = np.zeros((self.num_parity, symbols.shape[1]), dtype=self.field.dtype)
        block = self.coding_block
        for row in range(self.num_parity):
            for col in range(self.k):
                self.field.axpy(out[row], int(block[row, col]), symbols[col], trusted=True)
        return self._bytes_of(out).reshape(self.num_parity, data.shape[1])

    def element_equation(self, index: int) -> np.ndarray:
        """Generator row for element ``index`` (its coefficients over data)."""
        if not 0 <= index < self.n:
            raise ValueError(f"element index {index} out of range for n={self.n}")
        return self._generator[index]

    def can_decode(self, erased: Iterable[int]) -> bool:
        erased_set = frozenset(int(e) for e in erased)
        for e in erased_set:
            if not 0 <= e < self.n:
                raise ValueError(f"element index {e} out of range for n={self.n}")
        available = [i for i in range(self.n) if i not in erased_set]
        sub = self._generator[available]
        return gfm.rank(self.field, sub) == self.k

    def decode(
        self,
        available: Mapping[int, np.ndarray],
        erased: Sequence[int],
        element_size: int,
    ) -> dict[int, np.ndarray]:
        try:
            return self._decode_strict(available, erased, element_size)
        except DecodeFailure:
            # The strict path solves erased data then re-encodes erased
            # parity from the full data row, which rejects sparse helper
            # sets (e.g. a minimum-transfer set mixing a local parity with
            # globals) that are nonetheless sufficient.  Fall back to
            # per-element span reconstruction; re-raise if even that fails.
            out = self._decode_by_span(available, erased, element_size)
            if out is None:
                raise
            return out

    def _decode_strict(
        self,
        available: Mapping[int, np.ndarray],
        erased: Sequence[int],
        element_size: int,
    ) -> dict[int, np.ndarray]:
        erased_list = [int(e) for e in erased]
        erased_set = set(erased_list)
        if erased_set & set(available.keys()):
            raise ValueError("an element cannot be both available and erased")

        payloads = {
            int(i): self._payload(buf, element_size)[0] for i, buf in available.items()
        }
        erased_data = sorted(e for e in erased_set if self.is_data(e))
        known_data = {i: payloads[i] for i in payloads if self.is_data(i)}

        solved: dict[int, np.ndarray] = {}
        if erased_data:
            solved.update(
                self._solve_data(payloads, known_data, erased_data, element_size)
            )
        # Every data element is now known (directly or reconstructed);
        # erased parities are recomputed from the generator row.
        full_data = np.zeros((self.k, element_size), dtype=np.uint8)
        for j in range(self.k):
            if j in known_data:
                full_data[j] = known_data[j]
            elif j in solved:
                full_data[j] = solved[j]
            elif j in erased_set:
                raise AssertionError("erased data left unsolved")  # pragma: no cover
            else:
                # Data element neither provided nor erased: only legal if no
                # erased parity depends on it... recomputing parity needs all
                # data, so require it.
                needed = any(
                    self.is_parity(e) and self._generator[e, j] for e in erased_set
                )
                if needed:
                    raise DecodeFailure(
                        f"data element {j} required to rebuild an erased parity "
                        "but was neither provided nor listed as erased"
                    )
        full_symbols = self._symbols(full_data)
        for e in erased_list:
            if self.is_parity(e):
                row = self._generator[e]
                buf = np.zeros(full_symbols.shape[1], dtype=self.field.dtype)
                for j in range(self.k):
                    self.field.axpy(buf, int(row[j]), full_symbols[j], trusted=True)
                solved[e] = self._bytes_of(buf)
        return {e: solved[e] for e in erased_list}

    def _decode_by_span(
        self,
        available: Mapping[int, np.ndarray],
        erased: Sequence[int],
        element_size: int,
    ) -> dict[int, np.ndarray] | None:
        """Reconstruct each erased element as a GF-linear combination of the
        available payloads, or None if any erased row is outside their span.

        This realizes the maximally-recoverable contract for helper subsets
        the strict path cannot use: an element is recoverable from a helper
        set iff its generator row lies in the span of the helpers' rows, in
        which case the same combination applied to the payloads yields the
        element bytes.
        """
        f = self.field
        payloads = {
            int(i): self._payload(buf, element_size)[0] for i, buf in available.items()
        }
        helpers = sorted(payloads)
        symbols = {
            h: self._symbols(payloads[h][np.newaxis, :])[0] for h in helpers
        }
        symbol_count = self._symbols(
            np.zeros((1, element_size), dtype=np.uint8)
        ).shape[1]
        out: dict[int, np.ndarray] = {}
        for e in (int(x) for x in erased):
            coeffs = self._span_coefficients(helpers, e)
            if coeffs is None:
                return None
            acc = np.zeros(symbol_count, dtype=f.dtype)
            for h, c in coeffs.items():
                f.axpy(acc, c, symbols[h], trusted=True)
            out[e] = self._bytes_of(acc)
        return out

    def _span_coefficients(
        self, helpers: Sequence[int], target: int
    ) -> dict[int, int] | None:
        """Coefficients ``{helper: c}`` with ``row(target) = Σ c·row(helper)``
        over the field, or None when the target row is outside the span."""
        f = self.field
        rows = self._generator[list(helpers)]
        r = gfm.rank(f, rows)
        if r == 0:
            return None
        basis = self._independent_rows(rows.copy(), r)
        sub = rows[basis]
        cols = self._independent_rows(np.ascontiguousarray(sub.T), r)
        square = sub[:, cols].T
        b = self._generator[target][cols]
        y = gfm.solve(f, square, b)
        combo = np.zeros(self.k, dtype=f.dtype)
        for i in range(r):
            f.axpy(combo, int(y[i]), sub[i], trusted=True)
        if not np.array_equal(combo, self._generator[target]):
            return None
        return {
            helpers[basis[i]]: int(y[i]) for i in range(r) if int(y[i])
        }

    def _solve_data(
        self,
        payloads: Mapping[int, np.ndarray],
        known_data: Mapping[int, np.ndarray],
        erased_data: list[int],
        element_size: int,
    ) -> dict[int, np.ndarray]:
        """Solve for erased data elements from available parity equations."""
        f = self.field
        unknowns = erased_data
        col_of = {j: c for c, j in enumerate(unknowns)}

        avail_parity = sorted(i for i in payloads if self.is_parity(i))
        if len(avail_parity) < len(unknowns):
            raise DecodeFailure(
                f"{len(unknowns)} data erasures but only {len(avail_parity)} "
                "parity elements available"
            )

        # Coefficient matrix restricted to erased-data columns, plus the
        # right-hand side (in field symbols) with known-data folded in.
        symbol_count = self._symbols(
            np.zeros((1, element_size), dtype=np.uint8)
        ).shape[1]
        a = np.zeros((len(avail_parity), len(unknowns)), dtype=f.dtype)
        rhs = np.zeros((len(avail_parity), symbol_count), dtype=f.dtype)
        for r, p in enumerate(avail_parity):
            row = self._generator[p]
            rhs[r] = self._symbols(payloads[p][np.newaxis, :])[0]
            for j in range(self.k):
                coeff = int(row[j])
                if coeff == 0:
                    continue
                if j in col_of:
                    a[r, col_of[j]] = coeff
                else:
                    if j not in known_data:
                        raise DecodeFailure(
                            f"parity {p} depends on data {j} which is neither "
                            "available nor erased"
                        )
                    f.axpy(rhs[r], coeff, self._symbols(known_data[j][np.newaxis, :])[0], trusted=True)

        # Select an invertible square system by row reduction over a copy.
        rows = self._independent_rows(a, len(unknowns))
        if rows is None:
            raise DecodeFailure(
                f"erasure pattern {sorted(unknowns)} not decodable from "
                f"available parities {avail_parity}"
            )
        square = a[rows]
        rhs_sel = rhs[rows]
        solution = gfm.solve(f, square, rhs_sel)
        return {j: self._bytes_of(solution[c]) for j, c in col_of.items()}

    def _independent_rows(self, a: np.ndarray, need: int) -> list[int] | None:
        """Indices of ``need`` linearly independent rows of ``a``, or None."""
        f = self.field
        work = a.copy()
        chosen: list[int] = []
        used = np.zeros(len(work), dtype=bool)
        for _ in range(need):
            pivot_row = None
            for r in range(len(work)):
                if not used[r] and work[r].any():
                    pivot_row = r
                    break
            if pivot_row is None:
                return None
            used[pivot_row] = True
            chosen.append(pivot_row)
            pivot_col = int(np.nonzero(work[pivot_row])[0][0])
            pivot_inv = f.inv(int(work[pivot_row, pivot_col]))
            work[pivot_row] = f.scalar_mul_vec(pivot_inv, work[pivot_row])
            for r in range(len(work)):
                if r != pivot_row and work[r, pivot_col]:
                    factor = int(work[r, pivot_col])
                    work[r] ^= f.scalar_mul_vec(factor, work[pivot_row], trusted=True)
        return chosen

    # -- repair planning --------------------------------------------------
    def repair_plan(self, lost: int, have: frozenset[int] = frozenset()) -> frozenset[int]:
        """Generic repair planning for matrix codes.

        Greedily assembles a helper set preferring (1) elements the caller
        already holds, then (2) data elements, then (3) parities, and
        verifies solvability; falls back to widening the set if the greedy
        pick is singular (cannot happen for MDS codes but can for LRC-style
        coefficient structures handled by subclasses).
        """
        if not 0 <= lost < self.n:
            raise ValueError(f"element index {lost} out of range for n={self.n}")
        survivors = [i for i in range(self.n) if i != lost]
        preference = sorted(
            survivors,
            key=lambda i: (i not in have, self.is_parity(i), i),
        )
        for size in range(self.k, len(survivors) + 1):
            candidate = frozenset(preference[:size])
            if self._repairable_from(lost, candidate):
                return candidate
        raise DecodeFailure(f"element {lost} cannot be repaired from survivors")

    def repair_plan_costed(
        self,
        lost: int,
        cost,
        have: frozenset[int] = frozenset(),
    ) -> frozenset[int]:
        """Cost-directed variant of :meth:`repair_plan`.

        ``cost(element) -> float`` prices each survivor (the topology
        planner charges cross-rack helpers above in-rack ones); the greedy
        prefix prefers cheap survivors first, then ``have`` members, then
        data over parity, and widens until solvable — same solvability
        guarantee as :meth:`repair_plan`, different preference order.
        """
        if not 0 <= lost < self.n:
            raise ValueError(f"element index {lost} out of range for n={self.n}")
        survivors = [i for i in range(self.n) if i != lost]
        preference = sorted(
            survivors,
            key=lambda i: (cost(i), i not in have, self.is_parity(i), i),
        )
        for size in range(self.k, len(survivors) + 1):
            candidate = frozenset(preference[:size])
            if self._repairable_from(lost, candidate):
                return candidate
        raise DecodeFailure(f"element {lost} cannot be repaired from survivors")

    def _repairable_from(self, lost: int, helpers: frozenset[int]) -> bool:
        """True if ``lost`` is a GF-linear combination of ``helpers``' rows."""
        f = self.field
        rows = self._generator[sorted(helpers)]
        target = self._generator[lost]
        stacked = np.vstack([rows, target[np.newaxis, :]])
        return gfm.rank(f, stacked) == gfm.rank(f, rows)
