"""Azure-style Local Reconstruction Codes LRC(k, l, m) over GF(2^8).

The LRC of Huang et al. (USENIX ATC'12), as used by Windows Azure Storage
and evaluated by the EC-FRM paper: ``k`` data elements split into ``l``
local groups of ``k/l`` elements each, one XOR *local parity* per group,
plus ``m`` *global parities* over all data elements.

Element layout within a row (indices):

* ``0 .. k-1``            data, group ``g`` owns ``g*k/l .. (g+1)*k/l - 1``;
* ``k .. k+l-1``          local parities, one per group;
* ``k+l .. k+l+m-1``      global parities.

Global parity ``t`` uses coefficient ``beta_j ** (t+1)`` on data element
``j`` where the ``beta_j`` are distinct non-zero field elements (powers of
the primitive element by default).  With distinct betas the code decodes
any ``m + 1`` erasures — the "(6,2,2) LRC recovers any triple failure"
property the paper relies on (its Eq. (12) Vandermonde argument) — and the
degraded-read win comes from single-data-element repair touching only its
local group (``k/l`` reads instead of ``k``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..gf import GF, GF8
from ..gf import matrix as gfm
from .base import MatrixCode

__all__ = ["LocalReconstructionCode", "make_lrc"]


class LocalReconstructionCode(MatrixCode):
    """Azure LRC with ``k`` data, ``l`` local parities, ``m`` global parities.

    Parameters
    ----------
    k, l, m:
        Code parameters; ``l`` must divide ``k``.
    field:
        Coefficient field, GF(2^8) by default.
    beta_exponents:
        Optional explicit exponents ``e_j`` assigning ``beta_j = alpha**e_j``
        to data element ``j``; must be distinct mod the group order.  The
        default assigns ``e_j = j``.
    """

    name = "lrc"

    def __init__(
        self,
        k: int,
        l: int,
        m: int,
        field: GF = GF8,
        beta_exponents: tuple[int, ...] | None = None,
    ) -> None:
        if k <= 0 or l <= 0 or m <= 0:
            raise ValueError(f"LRC requires positive parameters, got ({k},{l},{m})")
        if k % l != 0:
            raise ValueError(f"l={l} must divide k={k}")
        if k >= field.order:
            raise ValueError(f"k={k} too large for GF(2^{field.w})")
        if beta_exponents is None:
            beta_exponents = tuple(range(k))
        if len(beta_exponents) != k:
            raise ValueError(f"need {k} beta exponents, got {len(beta_exponents)}")
        if len({e % field.group_order for e in beta_exponents}) != k:
            raise ValueError("beta exponents must be distinct modulo the group order")

        self.l = l
        self.m = m
        self.group_size = k // l
        self.betas = tuple(field.exp(e) for e in beta_exponents)

        gen = np.zeros((k + l + m, k), dtype=field.dtype)
        gen[:k] = gfm.identity(field, k)
        for g in range(l):
            gen[k + g, g * self.group_size : (g + 1) * self.group_size] = 1
        for t in range(m):
            for j, beta in enumerate(self.betas):
                gen[k + l + t, j] = field.pow(beta, t + 1)
        super().__init__(gen, field)

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def describe(self) -> str:
        return f"LRC({self.k},{self.l},{self.m})"

    def group_of_data(self, j: int) -> int:
        """Local group owning data element ``j``."""
        if not self.is_data(j):
            raise ValueError(f"{j} is not a data element index")
        return j // self.group_size

    def data_of_group(self, g: int) -> range:
        """Data element indices of local group ``g``."""
        if not 0 <= g < self.l:
            raise ValueError(f"group {g} out of range for l={self.l}")
        return range(g * self.group_size, (g + 1) * self.group_size)

    def local_parity_index(self, g: int) -> int:
        """Element index of the local parity of group ``g``."""
        if not 0 <= g < self.l:
            raise ValueError(f"group {g} out of range for l={self.l}")
        return self.k + g

    def global_parity_index(self, t: int) -> int:
        """Element index of global parity ``t``."""
        if not 0 <= t < self.m:
            raise ValueError(f"global parity {t} out of range for m={self.m}")
        return self.k + self.l + t

    def is_local_parity(self, index: int) -> bool:
        """True if ``index`` is one of the ``l`` local parities."""
        return self.k <= index < self.k + self.l

    def is_global_parity(self, index: int) -> bool:
        """True if ``index`` is one of the ``m`` global parities."""
        return self.k + self.l <= index < self.n

    # ------------------------------------------------------------------
    # repair planning: this is where LRC shines on degraded reads
    # ------------------------------------------------------------------
    def repair_plan(self, lost: int, have: frozenset[int] = frozenset()) -> frozenset[int]:
        """Single-erasure repair using the smallest helper set.

        * lost data element: the rest of its local group plus its local
          parity (``k/l`` reads);
        * lost local parity: its group's data (``k/l`` reads);
        * lost global parity: all ``k`` data elements.
        """
        if not 0 <= lost < self.n:
            raise ValueError(f"element index {lost} out of range for n={self.n}")
        if self.is_data(lost):
            g = self.group_of_data(lost)
            helpers = set(self.data_of_group(g))
            helpers.discard(lost)
            helpers.add(self.local_parity_index(g))
            return frozenset(helpers)
        if self.is_local_parity(lost):
            return frozenset(self.data_of_group(lost - self.k))
        return frozenset(range(self.k))

    def repair_candidates(
        self, lost: int, have: frozenset[int] = frozenset()
    ) -> list[dict[int, float]]:
        """Local-group plan first, then the generic global set.

        The local set is what makes LRC cheap, but when the group is
        scattered across racks and the global parities are co-located
        with the repair site, the k-element global set can ship fewer
        cross-rack bytes — so both are offered and the topology planner
        prices them.
        """
        candidates = [{h: 1.0 for h in self.repair_plan(lost, have)}]
        global_set = MatrixCode.repair_plan(self, lost, have)
        if global_set != frozenset(candidates[0]):
            candidates.append({h: 1.0 for h in global_set})
        return candidates

    # ------------------------------------------------------------------
    # information-theoretic decodability oracle (topology-level)
    # ------------------------------------------------------------------
    def information_theoretically_decodable(self, erased) -> bool:
        """Whether ``erased`` could be decoded by *some* coefficient choice.

        Evaluates the topology's matroid rank with random coefficients over
        GF(2^16) on the same support; by Schwartz-Zippel this matches the
        generic rank with overwhelming probability.  Used in tests to show
        the default GF(2^8) coefficients achieve (near-)maximal
        recoverability.
        """
        from ..gf import get_field

        big = get_field(16)
        rng = np.random.default_rng(0xECF12)
        erased_set = frozenset(int(e) for e in erased)
        gen = np.zeros((self.n, self.k), dtype=big.dtype)
        gen[: self.k] = gfm.identity(big, self.k)
        for g in range(self.l):
            gen[self.k + g, g * self.group_size : (g + 1) * self.group_size] = 1
        for t in range(self.m):
            gen[self.k + self.l + t] = big.random(rng, self.k, nonzero=True)
        available = [i for i in range(self.n) if i not in erased_set]
        return gfm.rank(big, gen[available]) == self.k


@lru_cache(maxsize=None)
def make_lrc(k: int, l: int, m: int) -> LocalReconstructionCode:
    """Memoized LRC(k, l, m) constructor over GF(2^8)."""
    return LocalReconstructionCode(k, l, m)
