"""Classic RAID-6 horizontal XOR array codes: RDP and EVENODD.

The EC-FRM paper's related-work section (§II-B) positions these as the
XOR-based horizontal codes EC-FRM's candidates compete with; they are
also the substrate for the single-failure recovery-I/O optimization of
Xiang et al. (SIGMETRICS'10), which the paper cites as the other "crucial
metric" (§II-D) — reproduced in :mod:`repro.recovery`.

Both are multi-row array codes over a prime ``p``, expressed here on the
:class:`~repro.codes.vertical.VerticalCode` grid base (which, despite its
name, models any rows-x-disks grid code):

* **RDP** (Corbett et al., FAST'04): ``p+1`` disks, ``p-1`` rows.  Disks
  ``0..p-2`` hold data, disk ``p-1`` row parity, disk ``p`` diagonal
  parity.  Diagonal ``i`` collects the blocks ``(r, c)`` (including row
  parity) with ``(r + c) mod p == i``; diagonal ``p-1`` is not stored.
* **EVENODD** (Blaum et al., 1995): ``p+2`` disks, ``p-1`` rows.  Disks
  ``0..p-1`` hold data, disk ``p`` row parity, disk ``p+1`` diagonal
  parity with the adjuster ``S`` (the XOR of the missing diagonal) folded
  into every diagonal parity block.

Both tolerate any 2 disk failures (verified exhaustively in tests).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .vertical import VerticalCode, _is_prime

__all__ = ["RDPCode", "EvenOddCode", "StarCode", "make_rdp", "make_evenodd", "make_star"]


class RDPCode(VerticalCode):
    """Row-Diagonal Parity over a prime ``p``: ``p+1`` disks, ``p-1`` rows."""

    name = "rdp"

    def __init__(self, p: int) -> None:
        if not _is_prime(p) or p < 3:
            raise ValueError(f"RDP requires a prime p >= 3, got {p}")
        self.p = p
        rows = p - 1
        data_disks = p - 1
        k = rows * data_disks
        n = rows * (p + 1)

        def data_index(r: int, c: int) -> int:
            return r * data_disks + c

        gen = np.zeros((n, k), dtype=np.uint8)
        gen[:k] = np.eye(k, dtype=np.uint8)

        # Row parity: disk p-1, one block per row.
        row_parity_base = k
        for r in range(rows):
            for c in range(data_disks):
                gen[row_parity_base + r, data_index(r, c)] = 1

        # Diagonal parity: disk p, block i covers diagonal i over data
        # disks AND the row-parity disk.  Row parity (r, p-1) lies on
        # diagonal (r + p - 1) mod p; substitute its data expansion.
        diag_parity_base = k + rows
        for i in range(rows):
            row_vec = np.zeros(k, dtype=np.uint8)
            for c in range(data_disks):
                r = (i - c) % p
                if r < rows:
                    row_vec[data_index(r, c)] ^= 1
            # row-parity block on this diagonal: column p-1
            r = (i - (p - 1)) % p
            if r < rows:
                for c in range(data_disks):
                    row_vec[data_index(r, c)] ^= 1
            gen[diag_parity_base + i] = row_vec

        grid = np.zeros((rows, p + 1), dtype=np.int64)
        for r in range(rows):
            for c in range(data_disks):
                grid[r, c] = data_index(r, c)
            grid[r, p - 1] = row_parity_base + r
            grid[r, p] = diag_parity_base + r
        super().__init__(gen, grid)

    def describe(self) -> str:
        return f"RDP(p={self.p})"

    def xor_equations(self) -> list[frozenset[int]]:
        """RDP's structural XOR equations in element space.

        * row ``r``: ``{d(r,0..p-2), rowP(r)}``;
        * diagonal ``i``: the diagonal's data blocks **plus the row-parity
          element lying on the diagonal** plus ``diagP(i)`` — the
        element-space form that lets hybrid recovery reuse row-parity
        blocks (Xiang et al.).
        """
        p = self.p
        rows = p - 1
        data_disks = p - 1

        def data_index(r: int, c: int) -> int:
            return r * data_disks + c

        row_parity_base = self.k
        diag_parity_base = self.k + rows
        equations: list[frozenset[int]] = []
        for r in range(rows):
            eq = {data_index(r, c) for c in range(data_disks)}
            eq.add(row_parity_base + r)
            equations.append(frozenset(eq))
        for i in range(rows):
            eq = set()
            for c in range(data_disks):
                r = (i - c) % p
                if r < rows:
                    eq.add(data_index(r, c))
            r = (i - (p - 1)) % p
            if r < rows:
                eq.add(row_parity_base + r)  # the row-parity element itself
            eq.add(diag_parity_base + i)
            equations.append(frozenset(eq))
        return equations


class EvenOddCode(VerticalCode):
    """EVENODD over a prime ``p``: ``p+2`` disks, ``p-1`` rows."""

    name = "evenodd"

    def __init__(self, p: int) -> None:
        if not _is_prime(p) or p < 3:
            raise ValueError(f"EVENODD requires a prime p >= 3, got {p}")
        self.p = p
        rows = p - 1
        data_disks = p
        k = rows * data_disks
        n = rows * (p + 2)

        def data_index(r: int, c: int) -> int:
            return r * data_disks + c

        gen = np.zeros((n, k), dtype=np.uint8)
        gen[:k] = np.eye(k, dtype=np.uint8)

        row_parity_base = k
        for r in range(rows):
            for c in range(data_disks):
                gen[row_parity_base + r, data_index(r, c)] = 1

        # Adjuster S = XOR of the missing diagonal (r + c) mod p == p-1.
        s_vec = np.zeros(k, dtype=np.uint8)
        for c in range(data_disks):
            r = (p - 1 - c) % p
            if r < rows:
                s_vec[data_index(r, c)] ^= 1

        diag_parity_base = k + rows
        for i in range(rows):
            row_vec = s_vec.copy()
            for c in range(data_disks):
                r = (i - c) % p
                if r < rows:
                    row_vec[data_index(r, c)] ^= 1
            gen[diag_parity_base + i] = row_vec

        grid = np.zeros((rows, p + 2), dtype=np.int64)
        for r in range(rows):
            for c in range(data_disks):
                grid[r, c] = data_index(r, c)
            grid[r, p] = row_parity_base + r
            grid[r, p + 1] = diag_parity_base + r
        super().__init__(gen, grid)

    def describe(self) -> str:
        return f"EVENODD(p={self.p})"


class StarCode(VerticalCode):
    """STAR code (Huang & Xu, FAST'05): EVENODD plus an anti-diagonal
    parity column — tolerates any **3** disk failures with XOR only.

    Grid: ``p-1`` rows by ``p+3`` disks over a prime ``p``; disks
    ``0..p-1`` data, then row parity, diagonal parity (slope +1, EVENODD
    adjuster), and anti-diagonal parity (slope -1 with its own adjuster).
    The paper lists STAR among the XOR horizontal codes EC-FRM's
    candidates compete with (§II-B ref [20]).
    """

    name = "star"

    def __init__(self, p: int) -> None:
        if not _is_prime(p) or p < 3:
            raise ValueError(f"STAR requires a prime p >= 3, got {p}")
        self.p = p
        rows = p - 1
        data_disks = p
        k = rows * data_disks
        n = rows * (p + 3)

        def data_index(r: int, c: int) -> int:
            return r * data_disks + c

        gen = np.zeros((n, k), dtype=np.uint8)
        gen[:k] = np.eye(k, dtype=np.uint8)

        row_base = k
        for r in range(rows):
            for c in range(data_disks):
                gen[row_base + r, data_index(r, c)] = 1

        # slope +1 diagonals with the EVENODD adjuster (missing diag p-1)
        diag_base = k + rows
        s_diag = np.zeros(k, dtype=np.uint8)
        for c in range(data_disks):
            r = (p - 1 - c) % p
            if r < rows:
                s_diag[data_index(r, c)] ^= 1
        for i in range(rows):
            vec = s_diag.copy()
            for c in range(data_disks):
                r = (i - c) % p
                if r < rows:
                    vec[data_index(r, c)] ^= 1
            gen[diag_base + i] = vec

        # slope -1 anti-diagonals with their own adjuster (missing p-1)
        anti_base = k + 2 * rows
        s_anti = np.zeros(k, dtype=np.uint8)
        for c in range(data_disks):
            r = (p - 1 + c) % p
            if r < rows:
                s_anti[data_index(r, c)] ^= 1
        for i in range(rows):
            vec = s_anti.copy()
            for c in range(data_disks):
                r = (i + c) % p
                if r < rows:
                    vec[data_index(r, c)] ^= 1
            gen[anti_base + i] = vec

        grid = np.zeros((rows, p + 3), dtype=np.int64)
        for r in range(rows):
            for c in range(data_disks):
                grid[r, c] = data_index(r, c)
            grid[r, p] = row_base + r
            grid[r, p + 1] = diag_base + r
            grid[r, p + 2] = anti_base + r
        super().__init__(gen, grid)

    def describe(self) -> str:
        return f"STAR(p={self.p})"


@lru_cache(maxsize=None)
def make_rdp(p: int) -> RDPCode:
    """Memoized RDP constructor."""
    return RDPCode(p)


@lru_cache(maxsize=None)
def make_star(p: int) -> StarCode:
    """Memoized STAR constructor."""
    return StarCode(p)


@lru_cache(maxsize=None)
def make_evenodd(p: int) -> EvenOddCode:
    """Memoized EVENODD constructor."""
    return EvenOddCode(p)
