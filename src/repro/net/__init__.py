"""Network topology and minimum-transfer repair planning.

* :mod:`repro.net.topology` — :class:`Topology` (disk→rack map +
  :class:`LinkCost`), :class:`InvalidTopologyError`;
* :mod:`repro.net.planner` — :func:`plan_min_transfer_repair` and the
  :class:`TransferSummary` counters behind the ``net.*`` metrics.
"""

from .planner import (
    RepairTransferPlan,
    TransferSummary,
    plan_min_transfer_repair,
    score_reads,
    ship_bytes,
)
from .topology import DEFAULT_LINK, InvalidTopologyError, LinkCost, Topology

__all__ = [
    "Topology",
    "LinkCost",
    "DEFAULT_LINK",
    "InvalidTopologyError",
    "TransferSummary",
    "RepairTransferPlan",
    "plan_min_transfer_repair",
    "score_reads",
    "ship_bytes",
]
