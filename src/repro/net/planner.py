"""Minimum-transfer repair planning over a rack topology.

A conventional degraded read repairs a lost element from *any* solvable
helper set — usually "the first k survivors" — and every helper byte
fetched is a helper byte shipped.  With a :class:`~repro.net.Topology`
attached, two extra degrees of freedom open up:

* **which** helper set to use: codes expose alternatives through
  :meth:`ErasureCode.repair_candidates` (an LRC's local group vs a
  global set; a piggybacked code's sub-element schedule vs plain RS) and
  through cost-directed greedy assembly
  (:meth:`MatrixCode.repair_plan_costed`);
* **how much** of each helper to ship: sub-element repair reads whole
  slots off the platters (checksum verification stays intact) but ships
  only the needed fraction over the network.

:func:`plan_min_transfer_repair` scores every candidate by
``(cross_rack_bytes, bytes_moved, reads, tie)`` against the repair
site's rack and returns the cheapest — deterministically, so plans are
cacheable and replayable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

from ..codes.base import DecodeFailure, ErasureCode

__all__ = [
    "TransferSummary",
    "RepairTransferPlan",
    "ship_bytes",
    "score_reads",
    "plan_min_transfer_repair",
]


def ship_bytes(fraction: float, element_size: int) -> int:
    """Network bytes shipped for reading ``fraction`` of one element."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"read fraction must be in (0, 1], got {fraction}")
    return min(element_size, max(1, math.ceil(fraction * element_size)))


@dataclass
class TransferSummary:
    """Accumulated ``net.*`` repair-traffic counters.

    ``bytes_moved`` is every network byte shipped for reconstruction
    (helpers shared with requested fetches included — they travel either
    way, and counting them keeps planner comparisons honest);
    ``cross_rack_bytes`` is the subset that left the repair site's rack.
    """

    bytes_moved: int = 0
    cross_rack_bytes: int = 0
    repair_sets: int = 0
    repair_elements: int = 0

    @property
    def intra_rack_bytes(self) -> int:
        return self.bytes_moved - self.cross_rack_bytes

    def add(self, other: "TransferSummary") -> None:
        self.bytes_moved += other.bytes_moved
        self.cross_rack_bytes += other.cross_rack_bytes
        self.repair_sets += other.repair_sets
        self.repair_elements += other.repair_elements

    def snapshot(self) -> dict:
        """Plain-dict view for metrics export."""
        return {
            "bytes_moved": self.bytes_moved,
            "cross_rack_bytes": self.cross_rack_bytes,
            "intra_rack_bytes": self.intra_rack_bytes,
            "repair_sets": self.repair_sets,
            "repair_elements": self.repair_elements,
            "repair_set_size": (
                self.repair_elements / self.repair_sets if self.repair_sets else 0.0
            ),
        }


@dataclass(frozen=True)
class RepairTransferPlan:
    """One lost element's chosen repair read-set, priced.

    ``reads`` is ``((helper element, fraction), ...)`` sorted by element;
    the fraction is the share of the element's bytes that must travel
    (disks still read whole slots — verification is unchanged — the
    fraction prices the *network*).  The whole-element support
    (:attr:`elements`) is always solvable for ``lost`` on its own.
    """

    lost: int
    reads: tuple[tuple[int, float], ...]
    bytes_moved: int
    cross_rack_bytes: int
    site_rack: int

    @property
    def elements(self) -> frozenset[int]:
        """The whole-element helper support set."""
        return frozenset(e for e, _ in self.reads)

    def summary(self) -> TransferSummary:
        return TransferSummary(
            bytes_moved=self.bytes_moved,
            cross_rack_bytes=self.cross_rack_bytes,
            repair_sets=1,
            repair_elements=len(self.reads),
        )


def score_reads(
    reads,
    element_rack: Callable[[int], int],
    site_rack: int,
    element_size: int,
) -> tuple[int, int]:
    """``(bytes_moved, cross_rack_bytes)`` of a fractional read-set."""
    moved = 0
    cross = 0
    for element, fraction in reads:
        nbytes = ship_bytes(fraction, element_size)
        moved += nbytes
        if element_rack(element) != site_rack:
            cross += nbytes
    return moved, cross


def _normalize_candidate(candidate: Mapping[int, float]) -> tuple[tuple[int, float], ...]:
    return tuple(sorted((int(e), float(f)) for e, f in candidate.items()))


def plan_min_transfer_repair(
    code: ErasureCode,
    lost: int,
    *,
    element_rack: Callable[[int], int],
    site_rack: int,
    element_size: int,
    have: frozenset[int] = frozenset(),
) -> RepairTransferPlan:
    """Choose the repair read-set for ``lost`` that moves the fewest bytes.

    Candidates come from two sources: the code's own
    :meth:`~ErasureCode.repair_candidates` (structural alternatives,
    possibly sub-element), and — for codes exposing
    ``repair_plan_costed`` — a greedy whole-element set assembled with
    cross-rack helpers priced above in-rack ones.  The winner minimizes
    ``(cross_rack_bytes, bytes_moved, len(reads))`` with the read tuple
    itself as the deterministic tiebreak.

    Parameters
    ----------
    code / lost / have:
        As for :meth:`ErasureCode.repair_plan`.
    element_rack:
        ``element index -> rack id`` under the row's placement.
    site_rack:
        Rack where the reconstruction happens (the failed/rebuilt disk's
        rack); bytes entering it from elsewhere are cross-rack.
    element_size:
        Element payload size in bytes.
    """
    candidates: list[tuple[tuple[int, float], ...]] = []
    seen: set[tuple[tuple[int, float], ...]] = set()
    for cand in code.repair_candidates(lost, have):
        reads = _normalize_candidate(cand)
        if reads and reads not in seen:
            seen.add(reads)
            candidates.append(reads)

    costed = getattr(code, "repair_plan_costed", None)
    if costed is not None:
        def rack_cost(element: int) -> float:
            return 0.0 if element_rack(element) == site_rack else 1.0

        try:
            helpers = costed(lost, rack_cost, have)
        except DecodeFailure:
            helpers = None
        if helpers:
            reads = tuple((int(h), 1.0) for h in sorted(helpers))
            if reads not in seen:
                seen.add(reads)
                candidates.append(reads)

    if not candidates:
        raise DecodeFailure(f"element {lost} has no repair candidates")

    best: RepairTransferPlan | None = None
    best_key = None
    for reads in candidates:
        moved, cross = score_reads(reads, element_rack, site_rack, element_size)
        key = (cross, moved, len(reads), reads)
        if best_key is None or key < best_key:
            best_key = key
            best = RepairTransferPlan(
                lost=lost,
                reads=reads,
                bytes_moved=moved,
                cross_rack_bytes=cross,
                site_rack=site_rack,
            )
    assert best is not None
    return best
