"""Rack/network topology for the simulated cluster.

The paper's disk model times what the *spindles* do; production EC
clusters are additionally gated by what the *network* does, and the two
costs are wildly asymmetric: intra-rack links run at full line rate
while cross-rack traffic shares an oversubscribed aggregation layer
(Rashmi et al.'s Facebook-warehouse study measures repair traffic
saturating exactly that layer).  :class:`Topology` gives every disk a
rack and prices a transfer by whether it crosses racks, in the same
seconds-per-byte units as :meth:`repro.disks.model.DiskModel.service_time_s`
— so a batch makespan can add "ship the fetched bytes to the reader" on
top of "read the bytes off the platters" per disk and take the max.

The model is deliberately two-level (intra-rack vs cross-rack): that is
the distinction the minimum-transfer repair planner optimizes for, and
the one the repair-bandwidth literature measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["InvalidTopologyError", "LinkCost", "DEFAULT_LINK", "Topology"]


class InvalidTopologyError(ValueError):
    """A rack map that cannot describe the array it is attached to.

    Raised for maps that do not cover every disk exactly once (missing or
    out-of-range disk ids), maps whose size disagrees with the array being
    opened, unparsable ``--topology`` specs, and out-of-range rack lookups.
    """


@dataclass(frozen=True)
class LinkCost:
    """Two-level link model, in bytes/second and seconds.

    Defaults approximate a 10 GbE access layer with a 10:1 oversubscribed
    aggregation layer: intra-rack moves at 1.25 GB/s, cross-rack at an
    effective 125 MB/s, with a small fixed per-transfer latency each.
    """

    intra_rack_bps: float = 1.25e9
    cross_rack_bps: float = 1.25e8
    intra_rack_rtt_s: float = 0.05e-3
    cross_rack_rtt_s: float = 0.5e-3

    def __post_init__(self) -> None:
        if self.intra_rack_bps <= 0 or self.cross_rack_bps <= 0:
            raise ValueError("link bandwidths must be > 0")
        if self.intra_rack_rtt_s < 0 or self.cross_rack_rtt_s < 0:
            raise ValueError("link RTTs must be >= 0")

    def transfer_time_s(self, nbytes: int, cross_rack: bool) -> float:
        """Seconds to ship ``nbytes`` over one link (0 bytes costs 0)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        if cross_rack:
            return self.cross_rack_rtt_s + nbytes / self.cross_rack_bps
        return self.intra_rack_rtt_s + nbytes / self.intra_rack_bps


#: the stock link model used when a topology does not supply its own.
DEFAULT_LINK = LinkCost()


class Topology:
    """Immutable disk→rack assignment plus a :class:`LinkCost`.

    Parameters
    ----------
    rack_map:
        ``rack_map[disk] -> rack`` as a sequence (disk id is the position)
        or a mapping whose keys must be exactly ``0..num_disks-1``.  Rack
        ids are arbitrary non-negative ints.
    link:
        Link-cost model; :data:`DEFAULT_LINK` when omitted.
    reader_rack:
        Rack the frontend/reader sits in (where fetched bytes terminate);
        defaults to the smallest rack id.
    """

    def __init__(
        self,
        rack_map: Sequence[int] | Mapping[int, int],
        *,
        link: LinkCost | None = None,
        reader_rack: int | None = None,
    ) -> None:
        if isinstance(rack_map, Mapping):
            keys = sorted(rack_map)
            if keys != list(range(len(keys))):
                raise InvalidTopologyError(
                    f"rack map keys {keys} must be exactly 0..{len(keys) - 1}: "
                    "every disk needs a rack"
                )
            racks = [rack_map[d] for d in keys]
        else:
            racks = list(rack_map)
        if not racks:
            raise InvalidTopologyError("rack map is empty; no disks covered")
        for d, r in enumerate(racks):
            if not isinstance(r, int) or isinstance(r, bool) or r < 0:
                raise InvalidTopologyError(
                    f"disk {d} assigned invalid rack {r!r} (need an int >= 0)"
                )
        self._racks = tuple(racks)
        self.link = link if link is not None else DEFAULT_LINK
        self.racks: tuple[int, ...] = tuple(sorted(set(self._racks)))
        self.reader_rack = self.racks[0] if reader_rack is None else reader_rack
        if self.reader_rack not in self.racks:
            raise InvalidTopologyError(
                f"reader rack {self.reader_rack} is not one of {self.racks}"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def flat(cls, num_disks: int, **kwargs) -> "Topology":
        """Every disk in one rack: network cost is uniform (intra-rack)."""
        if num_disks <= 0:
            raise InvalidTopologyError(f"num_disks must be > 0, got {num_disks}")
        return cls([0] * num_disks, **kwargs)

    @classmethod
    def uniform(cls, num_disks: int, racks: int, **kwargs) -> "Topology":
        """``racks`` contiguous, near-equal rack blocks over the disks."""
        if num_disks <= 0:
            raise InvalidTopologyError(f"num_disks must be > 0, got {num_disks}")
        if not 0 < racks <= num_disks:
            raise InvalidTopologyError(
                f"racks must be in 1..{num_disks}, got {racks}"
            )
        return cls([d * racks // num_disks for d in range(num_disks)], **kwargs)

    @classmethod
    def from_spec(cls, spec: "str | Topology", num_disks: int, **kwargs) -> "Topology":
        """Parse a CLI/config topology spec for an array of ``num_disks``.

        Accepted forms: ``"flat"``; ``"racks:R"`` for R contiguous rack
        blocks; an explicit comma-separated disk→rack list (``"0,0,1,1"``).
        A pre-built :class:`Topology` passes through after a size check.
        """
        if isinstance(spec, Topology):
            spec.validate_for(num_disks)
            return spec
        text = spec.strip().lower()
        if text == "flat":
            return cls.flat(num_disks, **kwargs)
        if text.startswith("racks:"):
            try:
                racks = int(text.split(":", 1)[1])
            except ValueError as exc:
                raise InvalidTopologyError(f"bad rack count in spec {spec!r}") from exc
            return cls.uniform(num_disks, racks, **kwargs)
        if "," in text:
            try:
                rack_map = [int(part) for part in text.split(",")]
            except ValueError as exc:
                raise InvalidTopologyError(
                    f"non-integer rack id in spec {spec!r}"
                ) from exc
            topo = cls(rack_map, **kwargs)
            topo.validate_for(num_disks)
            return topo
        raise InvalidTopologyError(
            f"unknown topology spec {spec!r}; expected 'flat', 'racks:R', "
            "or an explicit disk->rack list like '0,0,1,1'"
        )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_disks(self) -> int:
        return len(self._racks)

    @property
    def num_racks(self) -> int:
        return len(self.racks)

    def rack_of(self, disk: int) -> int:
        """Rack id of ``disk``."""
        if not 0 <= disk < len(self._racks):
            raise InvalidTopologyError(
                f"disk {disk} out of range for {len(self._racks)}-disk topology"
            )
        return self._racks[disk]

    def disks_in(self, rack: int) -> list[int]:
        """Disk ids assigned to ``rack`` (possibly empty), ascending."""
        return [d for d, r in enumerate(self._racks) if r == rack]

    def is_cross_rack(self, disk: int, rack: int) -> bool:
        """True if a ``disk -> rack`` transfer crosses racks."""
        return self.rack_of(disk) != rack

    def validate_for(self, num_disks: int, what: str = "disks") -> None:
        """Raise :class:`InvalidTopologyError` unless the map covers
        exactly ``num_disks`` entries."""
        if self.num_disks != num_disks:
            raise InvalidTopologyError(
                f"topology covers {self.num_disks} {what}, "
                f"but the array has {num_disks}"
            )

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def transfer_time_s(self, nbytes: int, src_disk: int, dst_rack: int | None = None) -> float:
        """Seconds to ship ``nbytes`` from ``src_disk`` to ``dst_rack``
        (the reader rack when omitted).  Composable with
        ``DiskModel.service_time_s``: completion of a disk's contribution
        is its service time plus this."""
        dst = self.reader_rack if dst_rack is None else dst_rack
        return self.link.transfer_time_s(nbytes, self.is_cross_rack(src_disk, dst))

    def describe(self) -> str:
        """Human-readable one-line description."""
        sizes = "+".join(str(len(self.disks_in(r))) for r in self.racks)
        return (
            f"topology({self.num_disks} disks / {self.num_racks} racks "
            f"[{sizes}], reader in rack {self.reader_rack})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology({list(self._racks)!r}, reader_rack={self.reader_rack})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self._racks == other._racks
            and self.link == other.link
            and self.reader_rack == other.reader_rack
        )

    def __hash__(self) -> int:
        return hash((self._racks, self.link, self.reader_rack))
