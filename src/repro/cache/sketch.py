"""Access-frequency sketches for hot-tier admission.

The hot tier must answer "is this stripe Zipf-hot?" without keeping a
counter per stripe of a million-stripe cluster.  A Count-Min sketch
(Cormode & Muthukrishnan) answers with bounded overestimation in O(width
x depth) integers: each key increments one counter per row (chosen by an
independent hash), and the estimate is the *minimum* over its rows, so
collisions can only inflate a count, never hide a hot key.

Two refinements matter for admission specifically:

* **conservative update** — an increment only raises the counters that
  equal the current minimum, which tightens the overestimate exactly
  where admission thresholds live (cold keys colliding with hot ones);
* **periodic halving** — every ``decay_every`` observations all counters
  are halved, so the sketch tracks the *current* working set rather than
  all history (a formerly hot stripe must re-earn admission after the
  workload shifts).

Hashing is the same explicit splitmix64 mixer the shard maps use — never
Python's ``hash`` — so estimates are identical across interpreter runs
and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

__all__ = ["CountMinSketch"]

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a well-distributed 64-bit mix of ``x``."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class CountMinSketch:
    """Conservative-update Count-Min sketch with periodic halving.

    Parameters
    ----------
    width:
        Counters per row.  The expected overestimate of a key is about
        ``observations / width`` (before conservative update, which only
        helps), so size width to a small multiple of the hot-set size.
    depth:
        Independent hash rows; the estimate is the min across them.
    decay_every:
        Observations between halving sweeps; ``0`` disables aging.
    seed:
        Salts the row hashes, so two sketches see uncorrelated collisions.
    """

    __slots__ = ("width", "depth", "decay_every", "_rows", "_salts",
                 "observations", "decays")

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        *,
        decay_every: int = 0,
        seed: int = 0,
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if decay_every < 0:
            raise ValueError(f"decay_every must be >= 0, got {decay_every}")
        self.width = width
        self.depth = depth
        self.decay_every = decay_every
        self._rows = [[0] * width for _ in range(depth)]
        self._salts = [
            _mix64((seed << 8) ^ (r * 0xD1B54A32D192ED03) ^ 0x9E3779B97F4A7C15)
            for r in range(depth)
        ]
        #: total observations folded in (drives the halving cadence).
        self.observations = 0
        #: halving sweeps performed.
        self.decays = 0

    # ------------------------------------------------------------------
    def _cells(self, key: int) -> list[int]:
        return [
            _mix64(key ^ salt) % self.width for salt in self._salts
        ]

    def add(self, key: int, n: int = 1) -> int:
        """Observe ``key`` ``n`` more times; returns the new estimate.

        Conservative update: only counters at the current minimum move,
        so a cold key sharing cells with a hot one is not dragged up.
        """
        if n < 0:
            raise ValueError(f"cannot observe a negative count: {n}")
        cells = self._cells(key)
        current = min(
            row[c] for row, c in zip(self._rows, cells)
        )
        target = current + n
        for row, c in zip(self._rows, cells):
            if row[c] < target:
                row[c] = target
        self.observations += n
        if self.decay_every and self.observations % self.decay_every == 0:
            self._halve()
            target = min(row[c] for row, c in zip(self._rows, cells))
        return target

    def estimate(self, key: int) -> int:
        """Estimated observation count of ``key`` (never underestimates
        relative to the decayed stream)."""
        return min(row[c] for row, c in zip(self._rows, self._cells(key)))

    def _halve(self) -> None:
        for row in self._rows:
            for i, v in enumerate(row):
                if v:
                    row[i] = v >> 1
        self.decays += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view for the ``cache.sketch.*`` metrics namespace."""
        return {
            "width": self.width,
            "depth": self.depth,
            "observations": self.observations,
            "decays": self.decays,
        }
