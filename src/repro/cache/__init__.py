"""Hot-tier fractional replication over the EC cluster.

A Count-Min-admitted, cost-aware-LRU replica cache that serves Zipf-hot
stripes without touching the erasure path at all.  See
:mod:`repro.cache.tier` for the policy discussion.
"""

from .sketch import CountMinSketch
from .tier import CacheConfig, HotTierCache, TierCounters

__all__ = ["CountMinSketch", "CacheConfig", "HotTierCache", "TierCounters"]
