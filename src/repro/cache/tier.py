"""The hot-tier replica cache: fractional replication for Zipf-hot stripes.

EC-FRM speeds reads *inside* the erasure path; this tier keeps most
traffic from entering it at all.  The HFR-code line of work (PAPERS.md)
argues replication should be *fractional* — spent exactly where read and
repair efficiency matter most — and the Facebook warehouse study shows
production read traffic is heavily skewed: a small hot set dominates both
reads and degraded-read cost.  :class:`HotTierCache` converts that skew
into cache hits over whole stripes:

* **admission** is earned, not granted: a stripe is only replicated into
  the tier once the :class:`~repro.cache.sketch.CountMinSketch` has seen
  it ``admit_after`` times, so one-shot scans cannot wash the hot set out
  of a capacity-limited tier;
* **eviction** is a cost-aware LRU: victims are sampled from the cold end
  of the recency order, and each candidate's weight folds in its
  *current* degraded-read cost — a stripe whose shard is serving through
  reconstruction (failed disk, rebuilding spare) is worth more to keep
  than an equally-recent stripe on a healthy shard, because a miss on it
  costs a k-element decode instead of one aligned read;
* **invalidation** is write-through: the cluster drops a stripe's replica
  the moment its backing row moves (rebalance / migration) or is
  rewritten, so cached bytes can never go stale.

The tier stores whole physical stripes keyed by global stripe id; any
byte sub-range of a resident stripe is a hit that bypasses the disk
simulator entirely (zero ``DiskStats`` accesses — the property the
hot-tier benchmark pins).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from .sketch import CountMinSketch

__all__ = ["CacheConfig", "TierCounters", "HotTierCache"]


@dataclass(frozen=True)
class CacheConfig:
    """Hot-tier sizing and policy knobs.

    Attributes
    ----------
    capacity_stripes:
        Maximum resident stripes (the tier's fractional-replication
        budget; multiply by the cluster's ``stripe_bytes`` for bytes).
    admit_after:
        Sketch estimate at which a missed stripe is promoted.  ``1``
        admits on first touch (classic cache); the default ``2`` makes
        stripes earn residency, which protects the tier from scans.
    sketch_width / sketch_depth / sketch_decay_every:
        Count-Min geometry and aging cadence (see
        :class:`~repro.cache.sketch.CountMinSketch`); ``decay_every=0``
        disables aging.
    evict_sample:
        Cold-end candidates examined per eviction.  ``1`` degenerates to
        plain LRU; larger samples let the cost weighting matter more.
    degraded_cost:
        Eviction-weight multiplier for stripes whose shard currently
        serves degraded reads.  Must be >= 1; the cluster supplies the
        live per-stripe cost through its ``cost_of`` callback.
    seed:
        Salts the sketch hashes.
    """

    capacity_stripes: int = 64
    admit_after: int = 2
    sketch_width: int = 1024
    sketch_depth: int = 4
    sketch_decay_every: int = 0
    evict_sample: int = 8
    degraded_cost: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.capacity_stripes < 1:
            raise ValueError(
                f"capacity_stripes must be >= 1, got {self.capacity_stripes}"
            )
        if self.admit_after < 1:
            raise ValueError(f"admit_after must be >= 1, got {self.admit_after}")
        if self.evict_sample < 1:
            raise ValueError(f"evict_sample must be >= 1, got {self.evict_sample}")
        if self.degraded_cost < 1.0:
            raise ValueError(
                f"degraded_cost must be >= 1, got {self.degraded_cost}"
            )


@dataclass
class TierCounters:
    """Cumulative hot-tier counters (the ``cache.`` namespace scalars)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    promotions: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: lookups that missed but stayed below the admission threshold.
    admission_rejects: int = 0
    bytes_promoted: int = 0
    bytes_evicted: int = 0
    #: evictions where the cost weighting overrode pure recency order.
    cost_saves: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class HotTierCache:
    """Count-Min-admitted, cost-aware-LRU replica tier over whole stripes.

    Parameters
    ----------
    config:
        Sizing and policy (:class:`CacheConfig`).
    cost_of:
        ``stripe_id -> float`` live degraded-read-cost weight (>= 1.0).
        The cluster binds this to its recovery-plane detector state:
        stripes on a shard with a failed or rebuilding disk report
        ``config.degraded_cost``, healthy shards report 1.0.  ``None``
        weighs everything 1.0 (pure sampled LRU).
    """

    def __init__(
        self,
        config: CacheConfig | None = None,
        *,
        cost_of: Callable[[int], float] | None = None,
    ) -> None:
        self.config = config if config is not None else CacheConfig()
        self.cost_of = cost_of
        self.sketch = CountMinSketch(
            self.config.sketch_width,
            self.config.sketch_depth,
            decay_every=self.config.sketch_decay_every,
            seed=self.config.seed,
        )
        self.counters = TierCounters()
        #: stripe id -> stripe payload, LRU order (coldest first).
        self._entries: "OrderedDict[int, bytes]" = OrderedDict()
        self._bytes_resident = 0

    # ------------------------------------------------------------------
    # geometry / introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, stripe: int) -> bool:
        return stripe in self._entries

    @property
    def bytes_resident(self) -> int:
        """Payload bytes currently replicated in the tier."""
        return self._bytes_resident

    def resident_stripes(self) -> list[int]:
        """Resident stripe ids, coldest (next eviction candidates) first."""
        return list(self._entries)

    def peek(self, stripe: int) -> bytes | None:
        """Read a resident payload without touching recency or counters."""
        return self._entries.get(stripe)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def lookup(self, stripe: int) -> bytes | None:
        """One tier consult: feeds the sketch, counts the outcome.

        A hit refreshes the stripe's recency and returns the whole
        payload; a miss returns ``None`` (the caller decides whether to
        promote via :meth:`wants_promotion`).
        """
        self.counters.lookups += 1
        estimate = self.sketch.add(stripe)
        payload = self._entries.get(stripe)
        if payload is not None:
            self.counters.hits += 1
            self._entries.move_to_end(stripe)
            return payload
        self.counters.misses += 1
        if estimate < self.config.admit_after:
            self.counters.admission_rejects += 1
        return payload

    def wants_promotion(self, stripe: int) -> bool:
        """Whether a just-missed stripe has earned admission."""
        return (
            stripe not in self._entries
            and self.sketch.estimate(stripe) >= self.config.admit_after
        )

    def insert(self, stripe: int, payload: bytes) -> None:
        """Replicate one whole stripe into the tier (evicting as needed)."""
        old = self._entries.pop(stripe, None)
        if old is not None:
            self._bytes_resident -= len(old)
        while len(self._entries) >= self.config.capacity_stripes:
            self._evict_one()
        self._entries[stripe] = payload
        self._bytes_resident += len(payload)
        self.counters.promotions += 1
        self.counters.bytes_promoted += len(payload)

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _evict_one(self) -> None:
        """Evict the cheapest-to-lose of the coldest ``evict_sample``
        entries.

        Sampled GreedyDual-style policy: candidates come from the cold
        end of the recency order; the victim is the candidate with the
        lowest ``cost_of`` weight, ties broken toward the colder entry.
        With every weight equal this is exactly LRU; with a degraded
        shard in the cluster its stripes outlive equally-cold healthy
        ones — the tier literally holds on to what is expensive to
        re-read.
        """
        sample: list[int] = []
        for stripe in self._entries:
            sample.append(stripe)
            if len(sample) >= self.config.evict_sample:
                break
        if self.cost_of is None or len(sample) == 1:
            victim = sample[0]
        else:
            victim = min(enumerate(sample), key=lambda iv: (self.cost_of(iv[1]), iv[0]))[1]
            if victim != sample[0]:
                self.counters.cost_saves += 1
        payload = self._entries.pop(victim)
        self._bytes_resident -= len(payload)
        self.counters.evictions += 1
        self.counters.bytes_evicted += len(payload)

    # ------------------------------------------------------------------
    # write-through invalidation
    # ------------------------------------------------------------------
    def invalidate(self, stripe: int) -> bool:
        """Drop a stripe's replica (its backing row moved or changed).

        Returns whether a replica was actually resident.  Cheap on a
        miss, so write paths call it unconditionally.
        """
        payload = self._entries.pop(stripe, None)
        if payload is None:
            return False
        self._bytes_resident -= len(payload)
        self.counters.invalidations += 1
        return True

    def invalidate_all(self) -> int:
        """Drop every replica; returns how many were resident."""
        n = len(self._entries)
        self.counters.invalidations += n
        self._entries.clear()
        self._bytes_resident = 0
        return n

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``cache.*`` namespace payload."""
        c = self.counters
        return {
            "enabled": True,
            "lookups": c.lookups,
            "hits": c.hits,
            "misses": c.misses,
            "hit_rate": c.hit_rate,
            "promotions": c.promotions,
            "evictions": c.evictions,
            "invalidations": c.invalidations,
            "admission_rejects": c.admission_rejects,
            "cost_saves": c.cost_saves,
            "stripes_resident": len(self._entries),
            "bytes_resident": self._bytes_resident,
            "bytes_promoted": c.bytes_promoted,
            "bytes_evicted": c.bytes_evicted,
            "capacity_stripes": self.config.capacity_stripes,
            "admit_after": self.config.admit_after,
            "sketch": self.sketch.snapshot(),
        }
