"""A functional erasure-coded block store over the simulated disk array.

This is the end-to-end verification layer the paper's claims implicitly
rest on: data written through a (code, placement) pair must come back
byte-exact through normal reads, degraded reads (any single disk down, or
any pattern the code tolerates), and full disk rebuilds.

The store follows the paper's cloud-storage write model (§I): writes are
append-only and buffered until a whole candidate row is available, then
encoded and flushed ("full stripe writes").
"""

from __future__ import annotations

import numpy as np

from ..codes.base import DecodeFailure, ErasureCode
from ..disks.array import DiskArray
from ..disks.model import DiskModel
from ..disks.presets import SAVVIO_10K3
from ..engine.degraded import plan_degraded_read
from ..engine.executor import ReadOutcome, execute_plan
from ..engine.planner import plan_normal_read
from ..engine.requests import AccessPlan, ReadRequest
from ..layout import Placement, make_placement

__all__ = ["BlockStore"]


class BlockStore:
    """Append-only erasure-coded store with normal/degraded byte reads.

    Parameters
    ----------
    code:
        The candidate erasure code.
    form:
        Placement form name (``standard`` / ``rotated`` / ``ec-frm``) or a
        ready-made :class:`Placement`.
    element_size:
        Element payload size in bytes.
    disk_model:
        Service model for the backing array (timing statistics only; the
        data plane is exact regardless).
    """

    def __init__(
        self,
        code: ErasureCode,
        form: str | Placement = "ec-frm",
        element_size: int = 1024,
        disk_model: DiskModel = SAVVIO_10K3,
    ) -> None:
        if element_size <= 0:
            raise ValueError(f"element size must be > 0, got {element_size}")
        self.code = code
        self.placement = form if isinstance(form, Placement) else make_placement(form, code)
        if self.placement.code is not code:
            raise ValueError("placement was built for a different code")
        self.element_size = element_size
        self.array = DiskArray(code.n, disk_model)
        self._pending = bytearray()
        self._elements_written = 0  # completed logical data elements

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def row_bytes(self) -> int:
        """User bytes per candidate row (the append/flush unit)."""
        return self.code.k * self.element_size

    @property
    def size_bytes(self) -> int:
        """Bytes durably stored (flushed), excluding the pending buffer."""
        return self._elements_written * self.element_size

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a full row."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, data: bytes) -> int:
        """Append bytes; full rows are encoded and flushed immediately.

        Returns the logical offset at which ``data`` begins.
        """
        offset = self.size_bytes + len(self._pending)
        self._pending.extend(data)
        while len(self._pending) >= self.row_bytes:
            chunk = bytes(self._pending[: self.row_bytes])
            del self._pending[: self.row_bytes]
            self._flush_row(chunk)
        return offset

    def flush(self) -> None:
        """Zero-pad and flush any partial pending row."""
        if self._pending:
            chunk = bytes(self._pending).ljust(self.row_bytes, b"\0")
            self._pending.clear()
            self._flush_row(chunk)

    def _flush_row(self, row_payload: bytes) -> None:
        k, s = self.code.k, self.element_size
        data = np.frombuffer(row_payload, dtype=np.uint8).reshape(k, s)
        parity = self.code.encode(data)
        row = self._elements_written // k
        for e in range(self.code.n):
            addr = self.placement.locate_row_element(row, e)
            payload = data[e] if e < k else parity[e - k]
            disk = self.array[addr.disk]
            if not disk.failed:
                disk.write_slot(addr.slot, payload)
        self._elements_written += k

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at logical ``offset``.

        Transparently degrades: if exactly one disk is down, the degraded
        planner reconstructs through repair sets; with zero failures the
        normal planner is used.  (Multi-failure reads go through
        :meth:`read_degraded_multi`.)
        """
        data, _ = self.read_with_outcome(offset, length)
        return data

    def read_with_outcome(self, offset: int, length: int) -> tuple[bytes, ReadOutcome]:
        """Like :meth:`read` but also returns the simulated timing outcome."""
        request = self._byte_range_to_request(offset, length)
        failed = self.array.failed_disks
        if not failed:
            plan = plan_normal_read(self.placement, request, self.element_size)
        elif len(failed) == 1:
            plan = plan_degraded_read(
                self.placement, request, failed[0], self.element_size
            )
        else:
            raise DecodeFailure(
                f"{len(failed)} disks down; use read_degraded_multi for "
                "multi-failure reads"
            )
        outcome = execute_plan(plan, self.array)
        elements = self._materialize_plan(plan)
        return self._slice_bytes(elements, request, offset, length), outcome

    def read_degraded_multi(self, offset: int, length: int) -> bytes:
        """Read under any decodable multi-disk failure pattern.

        Fetches *all* surviving elements of every affected row and decodes;
        not I/O-minimal (the paper only evaluates single-failure degraded
        reads), but exercises the full fault-tolerance envelope.
        """
        request = self._byte_range_to_request(offset, length)
        failed = set(self.array.failed_disks)
        elements: dict[int, bytes] = {}
        rows = sorted({t // self.code.k for t in request.elements})
        for row in rows:
            available: dict[int, np.ndarray] = {}
            lost_data: list[int] = []
            for e in range(self.code.n):
                addr = self.placement.locate_row_element(row, e)
                if addr.disk in failed:
                    if e < self.code.k:
                        lost_data.append(e)
                    continue
                buf = self.array[addr.disk].read_slot(addr.slot)
                available[e] = np.frombuffer(buf, dtype=np.uint8)
            wanted = [
                t % self.code.k
                for t in request.elements
                if t // self.code.k == row
            ]
            # Decode every lost data element of the row, not only the
            # wanted ones: surviving parity equations reference them all.
            if any(e in lost_data for e in wanted):
                recovered = self.code.decode(available, lost_data, self.element_size)
            else:
                recovered = {}
            for e in wanted:
                t = row * self.code.k + e
                if e in recovered:
                    elements[t] = recovered[e].tobytes()
                else:
                    elements[t] = available[e].tobytes()
        return self._slice_bytes(elements, request, offset, length)

    # ------------------------------------------------------------------
    # rebuild
    # ------------------------------------------------------------------
    def rebuild_disk(self, disk_id: int) -> int:
        """Reconstruct a failed disk's contents onto a fresh replacement.

        Returns the number of elements rebuilt.  Uses each code's repair
        plan per row (LRC rebuilds a lost data element from its local
        group only).
        """
        disk = self.array[disk_id]
        if not disk.failed:
            raise ValueError(f"disk {disk_id} has not failed; nothing to rebuild")
        others = set(self.array.failed_disks) - {disk_id}
        if others:
            raise DecodeFailure(
                f"cannot rebuild disk {disk_id} while disks {sorted(others)} are down"
            )
        disk.restore(wipe=True)

        rebuilt = 0
        total_rows = self._elements_written // self.code.k
        for row in range(total_rows):
            lost = [
                e
                for e in range(self.code.n)
                if self.placement.locate_row_element(row, e).disk == disk_id
            ]
            for e in lost:
                helpers = self.code.repair_plan(e)
                available = {}
                for h in helpers:
                    addr = self.placement.locate_row_element(row, h)
                    available[h] = np.frombuffer(
                        self.array[addr.disk].read_slot(addr.slot), dtype=np.uint8
                    )
                recovered = self.code.decode(available, [e], self.element_size)
                addr = self.placement.locate_row_element(row, e)
                disk.write_slot(addr.slot, recovered[e])
                rebuilt += 1
        return rebuilt

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _byte_range_to_request(self, offset: int, length: int) -> ReadRequest:
        if offset < 0 or length <= 0:
            raise ValueError(f"invalid byte range offset={offset} length={length}")
        if offset + length > self.size_bytes:
            raise ValueError(
                f"range [{offset}, {offset + length}) beyond stored "
                f"{self.size_bytes} bytes (flush() pending data first)"
            )
        first = offset // self.element_size
        last = (offset + length - 1) // self.element_size
        return ReadRequest(start=first, count=last - first + 1)

    def _materialize_plan(self, plan: AccessPlan) -> dict[int, bytes]:
        """Fetch payloads for a plan and decode any lost requested elements."""
        k = self.code.k
        fetched: dict[tuple[int, int], bytes] = {}
        for access in plan.accesses:
            buf = self.array[access.address.disk].read_slot(access.address.slot)
            fetched[(access.row, access.element)] = buf

        elements: dict[int, bytes] = {}
        lost_by_row: dict[int, list[int]] = {}
        for t in plan.request.elements:
            row, e = divmod(t, k)
            if (row, e) in fetched:
                elements[t] = fetched[(row, e)]
            else:
                lost_by_row.setdefault(row, []).append(e)
        for row, lost in lost_by_row.items():
            available = {
                e: np.frombuffer(buf, dtype=np.uint8)
                for (r, e), buf in fetched.items()
                if r == row
            }
            recovered = self.code.decode(available, lost, self.element_size)
            for e in lost:
                elements[row * k + e] = recovered[e].tobytes()
        return elements

    def _slice_bytes(
        self,
        elements: dict[int, bytes],
        request: ReadRequest,
        offset: int,
        length: int,
    ) -> bytes:
        joined = b"".join(elements[t] for t in request.elements)
        skip = offset - request.start * self.element_size
        return joined[skip : skip + length]
