"""A functional erasure-coded block store over the simulated disk array.

This is the end-to-end verification layer the paper's claims implicitly
rest on: data written through a (code, placement) pair must come back
byte-exact through normal reads, degraded reads (any single disk down, or
any pattern the code tolerates), and full disk rebuilds.

The store follows the paper's cloud-storage write model (§I): writes are
append-only and buffered until a whole candidate row is available, then
encoded and flushed ("full stripe writes").

Offsets are *logical*: they address the stream of bytes the user appended.
:meth:`BlockStore.flush` zero-pads a partial row to make it durable; the
pad bytes occupy physical slots but are invisible to the logical stream —
``append`` offsets and ``read`` ranges never include them (see
:attr:`user_bytes` vs :attr:`size_bytes`).

Every physical element access a read performs is accounted into the owning
disk's :class:`~repro.disks.disk.DiskStats` exactly once (accesses, bytes
read, and busy time together), via :meth:`DiskArray.execute_batch` — the
single accounting pass shared by :meth:`read`, :meth:`read_with_outcome`,
:meth:`read_many`, :meth:`read_degraded_multi` and :meth:`rebuild_disk`.

Integrity: every element payload is checksummed (CRC32C) at write time and
verified on every read.  A mismatch (silent bit rot) or an unreadable slot
(latent sector error) demotes that element to an *erasure*: the read
reconstructs it through the code, returns the correct bytes, and
**self-heals** by rewriting the repaired element in place — so the next
read of the same range is clean and fault-free.  :class:`HealthCounters`
tracks detections and repairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..codes.base import DecodeFailure, ErasureCode
from ..disks.array import DiskArray
from ..disks.disk import DiskFailedError
from ..disks.model import DiskModel
from ..disks.presets import SAVVIO_10K3
from ..engine.degraded import plan_degraded_read
from ..engine.executor import ReadOutcome
from ..engine.planner import plan_normal_read
from ..engine.requests import AccessPlan, ReadRequest
from ..layout import Placement, make_placement
from ..layout.base import Address
from ..net import Topology, TransferSummary, plan_min_transfer_repair
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from .verify import crc32c

__all__ = ["BlockStore", "HealthCounters"]


@dataclass
class HealthCounters:
    """Cumulative integrity/self-heal counters for one store.

    ``*_detected`` counts every time a read-side verification flags an
    element (scrubs included); ``*_repaired`` counts the subset that was
    reconstructed *and* rewritten in place.  ``self_heal_writes`` is the
    total number of heal rewrites (corrupt + latent).
    """

    corruptions_detected: int = 0
    corruptions_repaired: int = 0
    latent_errors_detected: int = 0
    latent_errors_repaired: int = 0
    self_heal_writes: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view for metrics export."""
        return {
            "corruptions_detected": self.corruptions_detected,
            "corruptions_repaired": self.corruptions_repaired,
            "latent_errors_detected": self.latent_errors_detected,
            "latent_errors_repaired": self.latent_errors_repaired,
            "self_heal_writes": self.self_heal_writes,
        }


class BlockStore:
    """Append-only erasure-coded store with normal/degraded byte reads.

    Parameters
    ----------
    code:
        The candidate erasure code.
    form:
        Placement form name (``standard`` / ``rotated`` / ``ec-frm``) or a
        ready-made :class:`Placement`.
    element_size:
        Element payload size in bytes.
    disk_model:
        Service model for the backing array (timing statistics only; the
        data plane is exact regardless).
    tracer:
        Span tracer for the read path (``disk_io`` / ``decode`` / ``heal``
        stages).  Defaults to the shared disabled tracer: zero overhead,
        identical behaviour.
    registry:
        Metrics registry to publish ``health`` and ``disks`` collectors
        into (and the array's batch-service histogram).  ``None`` (the
        default) skips registration entirely.
    topology:
        Optional :class:`repro.net.Topology` (or a spec string for
        :meth:`Topology.from_spec`) assigning the array's disks to racks.
        When set, degraded reads and rebuilds plan minimum-transfer
        repair sets, read makespans include network shipping time (the
        ``net_transfer`` tracer stage), and repair traffic is counted
        into the ``net.*`` metrics namespace.
    """

    def __init__(
        self,
        code: ErasureCode,
        form: str | Placement = "ec-frm",
        element_size: int = 1024,
        disk_model: DiskModel = SAVVIO_10K3,
        *,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        topology: Topology | str | None = None,
    ) -> None:
        if element_size <= 0:
            raise ValueError(f"element size must be > 0, got {element_size}")
        self.code = code
        self.placement = form if isinstance(form, Placement) else make_placement(form, code)
        if self.placement.code is not code:
            raise ValueError("placement was built for a different code")
        self.element_size = element_size
        self.array = DiskArray(code.n, disk_model)
        self._pending = bytearray()
        self._elements_written = 0  # completed logical data elements
        self._user_bytes = 0  # durable bytes the user wrote (pad excluded)
        #: write-time CRC32C per physical address; verified on every read.
        self._checksums: dict[tuple[int, int], int] = {}
        self.health = HealthCounters()
        self.topology = (
            Topology.from_spec(topology, code.n) if topology is not None else None
        )
        #: ``net.*`` repair-traffic counters (None without a topology).
        self.net: TransferSummary | None = (
            TransferSummary() if self.topology is not None else None
        )
        self._net_time_s = 0.0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry
        if registry is not None:
            registry.register_collector("health", self.health.snapshot)
            registry.register_collector("disks", self.array.stats_snapshot)
            if self.topology is not None:
                registry.register_collector("net", self.net_snapshot)
            self.array.bind_registry(registry)
        #: physical (start, length) of every flush-inserted zero-pad run,
        #: ascending and disjoint; the logical<->physical translation walks
        #: this list.
        self._pad_runs: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def row_bytes(self) -> int:
        """User bytes per candidate row (the append/flush unit)."""
        return self.code.k * self.element_size

    @property
    def size_bytes(self) -> int:
        """Physical bytes durably stored (flushed), *including* flush
        padding; excludes the pending buffer.  See :attr:`user_bytes` for
        the logical stream length."""
        return self._elements_written * self.element_size

    @property
    def user_bytes(self) -> int:
        """Durable bytes the user actually appended — the high-water mark
        of the logical stream.  ``read`` offsets address ``[0,
        user_bytes)``; flush padding is excluded."""
        return self._user_bytes

    @property
    def padding_bytes(self) -> int:
        """Durable zero-pad bytes inserted by :meth:`flush`."""
        return self.size_bytes - self._user_bytes

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a full row."""
        return len(self._pending)

    @property
    def rows_written(self) -> int:
        """Candidate rows durably flushed (the migration planning unit)."""
        return self._elements_written // self.code.k

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, data: bytes) -> int:
        """Append bytes; full rows are encoded and flushed immediately.

        Returns the true logical offset at which ``data`` begins: the
        number of user bytes written before it, *excluding* any zero
        padding earlier ``flush`` calls inserted.  The offset is directly
        usable with :meth:`read`.
        """
        offset = self._user_bytes + len(self._pending)
        self._pending.extend(data)
        while len(self._pending) >= self.row_bytes:
            chunk = bytes(self._pending[: self.row_bytes])
            del self._pending[: self.row_bytes]
            self._flush_row(chunk, user_len=self.row_bytes)
        return offset

    def flush(self) -> None:
        """Zero-pad and flush any partial pending row.

        The pad bytes become durable physically (they participate in
        parity and occupy slots — see :attr:`padding_bytes`) but are *not*
        part of the logical stream: subsequent ``append`` offsets and
        ``read`` ranges skip them, so ``flush`` never perturbs logical
        addressing.
        """
        if self._pending:
            pending_len = len(self._pending)
            pad_start = self.size_bytes + pending_len
            self._pad_runs.append((pad_start, self.row_bytes - pending_len))
            chunk = bytes(self._pending).ljust(self.row_bytes, b"\0")
            self._pending.clear()
            self._flush_row(chunk, user_len=pending_len)

    def _flush_row(self, row_payload: bytes, user_len: int) -> None:
        k, s = self.code.k, self.element_size
        data = np.frombuffer(row_payload, dtype=np.uint8).reshape(k, s)
        parity = self.code.encode(data)
        row = self._elements_written // k
        for e in range(self.code.n):
            addr = self.placement.locate_row_element(row, e)
            payload = data[e] if e < k else parity[e - k]
            if not self.array[addr.disk].failed:
                self._write_element(addr, payload)
        self._elements_written += k
        self._user_bytes += user_len

    def _write_element(self, addr: Address, payload: bytes | np.ndarray) -> None:
        """The single element-write point: store the payload and record its
        write-time CRC32C.  Every write path (flush, rebuild, in-place
        update, scrub repair, self-heal) must come through here, or reads
        would flag the stale checksum as corruption."""
        buf = (
            np.asarray(payload, dtype=np.uint8).tobytes()
            if isinstance(payload, np.ndarray)
            else bytes(payload)
        )
        self.array[addr.disk].write_slot(addr.slot, buf)
        self._checksums[(addr.disk, addr.slot)] = crc32c(buf)

    def put_element(self, addr: Address, payload: bytes | np.ndarray) -> bool:
        """Write one element payload at ``addr``; returns True if written.

        The migration mover's write point.  When ``addr.disk`` is down the
        write is skipped but the *new* payload's checksum is still
        recorded — so after the disk comes back (``restore(wipe=False)``)
        the stale on-disk content fails verification and the regular
        read-side self-heal machinery rewrites the correct bytes.  Without
        the recorded intent, the stale element would carry a *matching*
        stale checksum and read back silently wrong.
        """
        buf = (
            np.asarray(payload, dtype=np.uint8).tobytes()
            if isinstance(payload, np.ndarray)
            else bytes(payload)
        )
        if self.array[addr.disk].failed:
            self._checksums[(addr.disk, addr.slot)] = crc32c(buf)
            return False
        self._write_element(addr, buf)
        return True

    def fetch_row_data(self, row: int) -> list[bytes]:
        """Verified data payloads of candidate ``row``, candidate order.

        Fetches the ``k`` data elements in one accounted batch and repairs
        any that are lost, corrupt, or unreadable (self-healing live disks
        as usual).  Parity is *not* returned: a caller that needs it
        (e.g. the migration mover re-laying a row) re-encodes from data —
        encoding is deterministic and placement-independent, so the bytes
        are identical, and this sidesteps parity stranded on a crashed
        disk, which the repair path deliberately never reconstructs.
        """
        if not 0 <= row < self.rows_written:
            raise ValueError(f"row {row} out of range [0, {self.rows_written})")
        # A disk can fail at the batch boundary (fault injection fires on
        # execute_batch entry), after the batch was planned against the
        # previous failure set.  Re-plan against the refreshed set, like
        # the read service does; each retry excludes the newly dead disk,
        # so the loop is bounded by the array width.
        for _ in range(len(self.array) + 1):
            try:
                good, bad = self._fetch_elements(row, range(self.code.k))
                if bad:
                    good.update(self._repair_row(row, good, bad))
                return [good[e] for e in range(self.code.k)]
            except DiskFailedError:
                continue
        raise DiskFailedError(f"row {row}: disks kept failing mid-fetch")

    def fetch_repair_payloads(self, row: int, lost: Sequence[int]) -> dict[int, bytes]:
        """Reconstruct the payloads of ``lost`` elements of candidate
        ``row`` from a minimum-transfer helper set.

        The staging primitive of topology-aware rebuilds: with a topology
        attached (and a single lost element, the rebuild case) the helper
        set comes from :func:`repro.net.plan_min_transfer_repair` against
        the lost element's rack and its traffic lands in the ``net.*``
        counters; otherwise every surviving row element is fetched.  A
        faulted helper escalates to a whole-row repair exactly like
        :meth:`rebuild_disk` (self-healing the helper on the way).
        Raises :class:`DecodeFailure` when the row is undecodable.
        """
        lost = sorted(set(lost))
        if not lost:
            return {}
        if not 0 <= row < self.rows_written:
            raise ValueError(f"row {row} out of range [0, {self.rows_written})")
        for _ in range(len(self.array) + 1):
            try:
                transfer = None
                if self.topology is not None and len(lost) == 1:
                    e = lost[0]
                    site_disk = self.placement.locate_row_element(row, e).disk
                    transfer = plan_min_transfer_repair(
                        self.code,
                        e,
                        element_rack=lambda h: self.topology.rack_of(
                            self.placement.locate_row_element(row, h).disk
                        ),
                        site_rack=self.topology.rack_of(site_disk),
                        element_size=self.element_size,
                    )
                    need = sorted(transfer.elements)
                else:
                    need = [i for i in range(self.code.n) if i not in lost]
                good, bad = self._fetch_elements(row, need)
                if not bad:
                    available = {
                        h: np.frombuffer(buf, dtype=np.uint8)
                        for h, buf in good.items()
                    }
                    recovered = self.code.decode(available, lost, self.element_size)
                    if transfer is not None and self.net is not None:
                        self.net.add(transfer.summary())
                    return {e: recovered[e].tobytes() for e in lost}
                # a helper is faulted: escalate to a whole-row repair,
                # which reconstructs the targets and self-heals the helper.
                for e in lost:
                    bad[e] = "rebuild"
                repaired = self._repair_row(row, good, bad)
                return {e: repaired[e] for e in lost}
            except DiskFailedError:
                continue
        raise DiskFailedError(f"row {row}: disks kept failing mid-fetch")

    # ------------------------------------------------------------------
    # logical <-> physical offset translation
    # ------------------------------------------------------------------
    def _logical_to_physical(self, offset: int) -> int:
        """Physical stream position of logical byte ``offset``."""
        phys = offset
        for pad_start, pad_len in self._pad_runs:
            if phys >= pad_start:
                phys += pad_len
            else:
                break
        return phys

    def _excise_padding(self, buf: bytes, phys_start: int) -> bytes:
        """Drop pad bytes from ``buf`` covering physical ``[phys_start,
        phys_start + len(buf))``, yielding contiguous logical bytes."""
        end = phys_start + len(buf)
        pieces: list[bytes] = []
        cursor = phys_start
        for pad_start, pad_len in self._pad_runs:
            pad_end = pad_start + pad_len
            if pad_end <= cursor:
                continue
            if pad_start >= end:
                break
            if pad_start > cursor:
                pieces.append(buf[cursor - phys_start : pad_start - phys_start])
            cursor = min(pad_end, end)
        if cursor < end:
            pieces.append(buf[cursor - phys_start :])
        return b"".join(pieces)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at logical ``offset``.

        Transparently degrades: if exactly one disk is down, the degraded
        planner reconstructs through repair sets; with zero failures the
        normal planner is used.  (Multi-failure reads go through
        :meth:`read_degraded_multi`.)
        """
        data, _ = self.read_with_outcome(offset, length)
        return data

    def read_with_outcome(self, offset: int, length: int) -> tuple[bytes, ReadOutcome]:
        """Like :meth:`read` but also returns the simulated timing outcome."""
        plan = self.plan_read(offset, length)
        return self.execute_read(plan, offset, length)

    def plan_read(self, offset: int, length: int) -> AccessPlan:
        """Build (but do not execute) the access plan of a byte read.

        This is the planning half of :meth:`read_with_outcome`, exposed so
        a plan cache (:class:`repro.engine.plancache.PlanCache`) or a
        batched service can reuse plans across requests.  The plan depends
        only on the placement, the element-aligned request, and the
        current failure signature.
        """
        request = self.byte_request(offset, length)
        failed = self.array.failed_disks
        if not failed:
            return plan_normal_read(self.placement, request, self.element_size)
        if len(failed) == 1:
            return plan_degraded_read(
                self.placement,
                request,
                failed[0],
                self.element_size,
                topology=self.topology,
            )
        raise DecodeFailure(
            f"{len(failed)} disks down; use read_degraded_multi for "
            "multi-failure reads"
        )

    def execute_read(
        self, plan: AccessPlan, offset: int, length: int
    ) -> tuple[bytes, ReadOutcome]:
        """Execute a previously built plan: one accounted pass that times
        the batch, fetches payloads, decodes losses, and slices bytes.

        ``plan`` must have been built by :meth:`plan_read` for the same
        ``(offset, length)`` under the current failure signature (a cached
        plan is fine — byte ranges with the same element request share
        plans).
        """
        with self.tracer.span("disk_io") as sp:
            timing = self.array.execute_batch(plan.per_disk_batches(), fetch=True)
            sp.set(
                sim_service_s=timing.completion_time_s,
                accesses=timing.total_accesses,
            )
        if timing.completion_time_s <= 0.0:
            raise ValueError("plan has no accesses; cannot compute a speed")
        completion_s = timing.completion_time_s
        if self.topology is not None:
            completion_s = self._account_network(plan, timing)
        outcome = ReadOutcome(
            plan=plan,
            completion_time_s=completion_s,
            speed_bps=plan.requested_bytes / completion_s,
        )
        elements = self._materialize_plan(plan, timing.payloads or {})
        return self._slice_bytes(elements, plan.request, offset, length), outcome

    def read_many(self, ranges: Sequence[tuple[int, int]]) -> list[bytes]:
        """Read several ``(offset, length)`` ranges; returns their payloads.

        The batch-submission primitive under
        :class:`repro.engine.service.ReadService` — each range is planned
        and executed through the unified accounting pass.  For concurrent
        timing and plan caching, use the service; this method models the
        data plane only.
        """
        return [self.read(offset, length) for offset, length in ranges]

    def read_degraded_multi(self, offset: int, length: int) -> bytes:
        """Read under any decodable multi-disk failure pattern.

        Fetches *all* surviving elements of every affected row and decodes;
        not I/O-minimal (the paper only evaluates single-failure degraded
        reads), but exercises the full fault-tolerance envelope.  Fetched
        elements are checksum-verified like every other read path;
        corrupt/unreadable survivors become additional erasures and are
        self-healed when their disks are alive.
        """
        request = self.byte_request(offset, length)
        elements: dict[int, bytes] = {}
        k = self.code.k
        for row in sorted({t // k for t in request.elements}):
            good, bad = self._fetch_elements(row, range(self.code.n))
            wanted = [t % k for t in request.elements if t // k == row]
            if bad:
                try:
                    good.update(self._repair_row(row, good, bad))
                except DecodeFailure:
                    if any(e in bad for e in wanted):
                        raise
                    # unneeded elements are beyond repair; serve what we have
            for e in wanted:
                elements[row * k + e] = good[e]
        return self._slice_bytes(elements, request, offset, length)

    # ------------------------------------------------------------------
    # rebuild
    # ------------------------------------------------------------------
    def rebuild_disk(self, disk_id: int) -> int:
        """Reconstruct a failed disk's contents onto a fresh replacement.

        Returns the number of elements rebuilt.  Uses each code's repair
        plan per row (LRC rebuilds a lost data element from its local
        group only).  Helper reads are accounted through the unified batch
        pass, so per-disk stats (accesses, bytes, busy time) reflect the
        rebuild I/O exactly.
        """
        disk = self.array[disk_id]
        if not disk.failed:
            raise ValueError(f"disk {disk_id} has not failed; nothing to rebuild")
        others = set(self.array.failed_disks) - {disk_id}
        if others:
            raise DecodeFailure(
                f"cannot rebuild disk {disk_id} while disks {sorted(others)} are down"
            )
        disk.restore(wipe=True)

        rebuilt = 0
        total_rows = self._elements_written // self.code.k
        for row in range(total_rows):
            lost = [
                e
                for e in range(self.code.n)
                if self.placement.locate_row_element(row, e).disk == disk_id
            ]
            for e in lost:
                transfer = None
                if self.topology is not None:
                    transfer = plan_min_transfer_repair(
                        self.code,
                        e,
                        element_rack=lambda h, row=row: self.topology.rack_of(
                            self.placement.locate_row_element(row, h).disk
                        ),
                        site_rack=self.topology.rack_of(disk_id),
                        element_size=self.element_size,
                    )
                    helpers = sorted(transfer.elements)
                else:
                    helpers = self.code.repair_plan(e)
                batch: dict[int, list[tuple[int, int]]] = {}
                helper_addrs: list[tuple[int, Address]] = []
                for h in helpers:
                    addr = self.placement.locate_row_element(row, h)
                    batch.setdefault(addr.disk, []).append(
                        (addr.slot, self.element_size)
                    )
                    helper_addrs.append((h, addr))
                timing = self.array.execute_batch(batch, fetch=True)
                payloads = timing.payloads or {}
                good: dict[int, bytes] = {}
                bad: dict[int, str] = {}
                for h, addr in helper_addrs:
                    buf = payloads.get((addr.disk, addr.slot))
                    if buf is None:
                        bad[h] = "latent"
                        self.health.latent_errors_detected += 1
                    elif not self._element_ok(addr.disk, addr.slot, buf):
                        bad[h] = "corrupt"
                        self.health.corruptions_detected += 1
                    else:
                        good[h] = buf
                addr = self.placement.locate_row_element(row, e)
                if not bad:
                    available = {
                        h: np.frombuffer(buf, dtype=np.uint8)
                        for h, buf in good.items()
                    }
                    recovered = self.code.decode(available, [e], self.element_size)
                    self._write_element(addr, recovered[e])
                    if transfer is not None and self.net is not None:
                        self.net.add(transfer.summary())
                else:
                    # a helper is corrupt or unreadable: escalate to a
                    # whole-row repair, which rebuilds the target *and*
                    # self-heals the bad helper in one decode.
                    bad[e] = "rebuild"
                    self._repair_row(row, good, bad)
                rebuilt += 1
        return rebuilt

    # ------------------------------------------------------------------
    # network accounting (topology-attached stores only)
    # ------------------------------------------------------------------
    def _account_network(self, plan: AccessPlan, timing) -> float:
        """Price the plan's network shipping on top of the disk batch.

        Every fetched element ships to the reader rack — whole elements
        for requested fetches, only the planned fraction for
        reconstruction-only helpers (disks read whole slots; the wire
        carries less).  Each disk's contribution completes at its service
        time plus its ship time; the batch completes at the max, so the
        returned makespan composes ``DiskModel.service_time_s`` with the
        link model.  Repair traffic is accumulated into :attr:`net`
        against the failed disk's rack, and the added network time is
        emitted as a ``net_transfer`` span.
        """
        from ..engine.requests import AccessKind

        topo = self.topology
        ship: dict[int, int] = {}
        requested: set[Address] = set()
        for a in plan.accesses:
            if a.kind is AccessKind.REQUESTED:
                ship[a.address.disk] = ship.get(a.address.disk, 0) + self.element_size
                requested.add(a.address)
        for addr, nbytes in plan.repair_reads:
            if addr not in requested:
                ship[addr.disk] = ship.get(addr.disk, 0) + nbytes
        completion = timing.completion_time_s
        for disk, disk_time_s in timing.per_disk_time_s.items():
            total = disk_time_s + topo.transfer_time_s(ship.get(disk, 0), disk)
            completion = max(completion, total)
        net_s = completion - timing.completion_time_s
        self._net_time_s += net_s
        if plan.repair_reads:
            site = (
                topo.rack_of(plan.failed_disk)
                if plan.failed_disk is not None
                else topo.reader_rack
            )
            moved = plan.repair_bytes_moved
            cross = sum(
                nbytes
                for addr, nbytes in plan.repair_reads
                if topo.rack_of(addr.disk) != site
            )
            self.net.add(
                TransferSummary(
                    bytes_moved=moved,
                    cross_rack_bytes=cross,
                    repair_sets=plan.repair_sets,
                    repair_elements=len(plan.repair_reads),
                )
            )
        with self.tracer.span("net_transfer") as sp:
            sp.set(sim_net_s=net_s, bytes_shipped=sum(ship.values()))
        return completion

    def net_snapshot(self) -> dict:
        """The ``net.*`` namespace: repair traffic and network time."""
        out = self.net.snapshot()
        out["net_time_s"] = self._net_time_s
        out["racks"] = self.topology.num_racks
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def byte_request(self, offset: int, length: int) -> ReadRequest:
        """Element-aligned :class:`ReadRequest` covering a logical byte range.

        Public because the read service keys its plan cache on the request;
        the mapping is stable for any already-written range (flush padding
        is only ever appended past the current high-water mark).
        """
        if offset < 0 or length <= 0:
            raise ValueError(f"invalid byte range offset={offset} length={length}")
        if offset + length > self.user_bytes:
            raise ValueError(
                f"range [{offset}, {offset + length}) beyond stored "
                f"{self.user_bytes} user bytes (flush() pending data first)"
            )
        phys_first = self._logical_to_physical(offset)
        phys_last = self._logical_to_physical(offset + length - 1)
        first = phys_first // self.element_size
        last = phys_last // self.element_size
        return ReadRequest(start=first, count=last - first + 1)

    def _element_ok(self, disk: int, slot: int, buf: bytes) -> bool:
        """Verify one fetched payload against its write-time CRC32C.

        Payloads with no recorded checksum (written directly to the disk
        plane, bypassing the store) are trusted and fingerprinted on first
        read.
        """
        key = (disk, slot)
        expected = self._checksums.get(key)
        if expected is None:
            self._checksums[key] = crc32c(buf)
            return True
        return crc32c(buf) == expected

    def _fetch_elements(
        self, row: int, need: Sequence[int]
    ) -> tuple[dict[int, bytes], dict[int, str]]:
        """Fetch and verify elements ``need`` of candidate ``row`` in one
        accounted batch.

        Returns ``(good, bad)``: verified payloads keyed by element, and
        undeliverable elements keyed to a reason — ``"failed-disk"``
        (crashed disk, not fetched), ``"latent"`` (unreadable slot), or
        ``"corrupt"`` (checksum mismatch).  Detections are counted into
        :attr:`health`.
        """
        failed = set(self.array.failed_disks)
        batch: dict[int, list[tuple[int, int]]] = {}
        addrs: list[tuple[int, Address]] = []
        good: dict[int, bytes] = {}
        bad: dict[int, str] = {}
        for e in need:
            addr = self.placement.locate_row_element(row, e)
            if addr.disk in failed:
                bad[e] = "failed-disk"
                continue
            batch.setdefault(addr.disk, []).append((addr.slot, self.element_size))
            addrs.append((e, addr))
        with self.tracer.span("disk_io", row=row) as sp:
            timing = self.array.execute_batch(batch, fetch=True)
            sp.set(sim_service_s=timing.completion_time_s)
        payloads = timing.payloads or {}
        for e, addr in addrs:
            buf = payloads.get((addr.disk, addr.slot))
            if buf is None:
                bad[e] = "latent"
                self.health.latent_errors_detected += 1
            elif not self._element_ok(addr.disk, addr.slot, buf):
                bad[e] = "corrupt"
                self.health.corruptions_detected += 1
            else:
                good[e] = buf
        return good, bad

    def _repair_row(
        self, row: int, good: dict[int, bytes], bad: dict[int, str]
    ) -> dict[int, bytes]:
        """Reconstruct the ``bad`` elements of ``row`` and self-heal.

        ``good`` holds already-verified payloads (mutated in place as the
        remaining row elements are fetched).  Decodes every bad *data*
        element plus every healable bad element, rewrites repaired elements
        whose disks are alive (``corrupt``/``latent`` reasons — plus
        ``"rebuild"``, the rebuild escalation target), and returns the
        repaired payloads keyed by element.

        Raises :class:`DecodeFailure` when the combined erasure pattern
        exceeds the code's tolerance.
        """
        with self.tracer.span("heal", row=row) as sp:
            need = [
                e for e in range(self.code.n) if e not in good and e not in bad
            ]
            if need:
                more_good, more_bad = self._fetch_elements(row, need)
                good.update(more_good)
                bad.update(more_bad)
            # Parity on a crashed disk is neither requested nor healable; do
            # not make the decode harder by asking for it.
            lost = sorted(
                e
                for e, reason in bad.items()
                if e < self.code.k or reason in ("corrupt", "latent", "rebuild")
            )
            sp.set(lost=lost)
            available = {
                e: np.frombuffer(buf, dtype=np.uint8) for e, buf in good.items()
            }
            recovered = self.code.decode(available, lost, self.element_size)
            failed = set(self.array.failed_disks)
            out: dict[int, bytes] = {}
            for e in lost:
                payload = recovered[e]
                out[e] = payload.tobytes()
                reason = bad[e]
                addr = self.placement.locate_row_element(row, e)
                if addr.disk in failed:
                    continue
                if reason == "corrupt":
                    self._write_element(addr, payload)
                    self.health.corruptions_repaired += 1
                    self.health.self_heal_writes += 1
                elif reason == "latent":
                    self._write_element(addr, payload)
                    self.health.latent_errors_repaired += 1
                    self.health.self_heal_writes += 1
                elif reason == "rebuild":
                    self._write_element(addr, payload)
            return out

    def _materialize_plan(
        self, plan: AccessPlan, payloads: dict[tuple[int, int], bytes]
    ) -> dict[int, bytes]:
        """Assemble fetched payloads and decode any lost requested elements.

        ``payloads`` comes from the accounted batch execution.  Every
        payload is checksum-verified; corrupt or unreadable elements are
        demoted to erasures, reconstructed (fetching the rest of their row
        in a further accounted batch) and self-healed in place.  On the
        fault-free path — including planned degraded decodes — this method
        performs no disk I/O of its own.
        """
        k = self.code.k
        good_by_row: dict[int, dict[int, bytes]] = {}
        bad_by_row: dict[int, dict[int, str]] = {}
        for access in plan.accesses:
            row, e = access.row, access.element
            buf = payloads.get((access.address.disk, access.address.slot))
            if buf is None:
                bad_by_row.setdefault(row, {})[e] = "latent"
                self.health.latent_errors_detected += 1
            elif not self._element_ok(access.address.disk, access.address.slot, buf):
                bad_by_row.setdefault(row, {})[e] = "corrupt"
                self.health.corruptions_detected += 1
            else:
                good_by_row.setdefault(row, {})[e] = buf

        for t in plan.request.elements:
            row, e = divmod(t, k)
            if e not in good_by_row.get(row, {}) and e not in bad_by_row.get(row, {}):
                # never fetched: the degraded planner deliberately skipped
                # it and scheduled a repair set instead.
                bad_by_row.setdefault(row, {})[e] = "planned"

        resolved: dict[int, dict[int, bytes]] = {}
        for row, bad in bad_by_row.items():
            good = good_by_row.get(row, {})
            if set(bad.values()) == {"planned"}:
                # fault-free degraded decode from the planned repair set:
                # exactly the fetched elements, no extra I/O.
                with self.tracer.span("decode", row=row, lost=sorted(bad)):
                    available = {
                        e: np.frombuffer(buf, dtype=np.uint8)
                        for e, buf in good.items()
                    }
                    lost = sorted(bad)
                    recovered = self.code.decode(
                        available, lost, self.element_size
                    )
                    resolved[row] = {e: recovered[e].tobytes() for e in lost}
            else:
                resolved[row] = self._repair_row(row, dict(good), bad)

        elements: dict[int, bytes] = {}
        for t in plan.request.elements:
            row, e = divmod(t, k)
            if e in good_by_row.get(row, {}):
                elements[t] = good_by_row[row][e]
            else:
                elements[t] = resolved[row][e]
        return elements

    def _slice_bytes(
        self,
        elements: dict[int, bytes],
        request: ReadRequest,
        offset: int,
        length: int,
    ) -> bytes:
        joined = b"".join(elements[t] for t in request.elements)
        phys_start = request.start * self.element_size
        logical = self._excise_padding(joined, phys_start)
        skip = self._logical_to_physical(offset) - phys_start
        # translate the skip into the pad-free buffer: subtract pad bytes
        # that preceded the target inside the fetched physical window.
        pad_before = sum(
            min(pad_start + pad_len, self._logical_to_physical(offset)) - pad_start
            for pad_start, pad_len in self._pad_runs
            if phys_start <= pad_start < self._logical_to_physical(offset)
        )
        skip -= pad_before
        return logical[skip : skip + length]
