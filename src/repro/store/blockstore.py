"""A functional erasure-coded block store over the simulated disk array.

This is the end-to-end verification layer the paper's claims implicitly
rest on: data written through a (code, placement) pair must come back
byte-exact through normal reads, degraded reads (any single disk down, or
any pattern the code tolerates), and full disk rebuilds.

The store follows the paper's cloud-storage write model (§I): writes are
append-only and buffered until a whole candidate row is available, then
encoded and flushed ("full stripe writes").

Offsets are *logical*: they address the stream of bytes the user appended.
:meth:`BlockStore.flush` zero-pads a partial row to make it durable; the
pad bytes occupy physical slots but are invisible to the logical stream —
``append`` offsets and ``read`` ranges never include them (see
:attr:`user_bytes` vs :attr:`size_bytes`).

Every physical element access a read performs is accounted into the owning
disk's :class:`~repro.disks.disk.DiskStats` exactly once (accesses, bytes
read, and busy time together), via :meth:`DiskArray.execute_batch` — the
single accounting pass shared by :meth:`read`, :meth:`read_with_outcome`,
:meth:`read_many`, :meth:`read_degraded_multi` and :meth:`rebuild_disk`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..codes.base import DecodeFailure, ErasureCode
from ..disks.array import DiskArray
from ..disks.model import DiskModel
from ..disks.presets import SAVVIO_10K3
from ..engine.degraded import plan_degraded_read
from ..engine.executor import ReadOutcome
from ..engine.planner import plan_normal_read
from ..engine.requests import AccessPlan, ReadRequest
from ..layout import Placement, make_placement

__all__ = ["BlockStore"]


class BlockStore:
    """Append-only erasure-coded store with normal/degraded byte reads.

    Parameters
    ----------
    code:
        The candidate erasure code.
    form:
        Placement form name (``standard`` / ``rotated`` / ``ec-frm``) or a
        ready-made :class:`Placement`.
    element_size:
        Element payload size in bytes.
    disk_model:
        Service model for the backing array (timing statistics only; the
        data plane is exact regardless).
    """

    def __init__(
        self,
        code: ErasureCode,
        form: str | Placement = "ec-frm",
        element_size: int = 1024,
        disk_model: DiskModel = SAVVIO_10K3,
    ) -> None:
        if element_size <= 0:
            raise ValueError(f"element size must be > 0, got {element_size}")
        self.code = code
        self.placement = form if isinstance(form, Placement) else make_placement(form, code)
        if self.placement.code is not code:
            raise ValueError("placement was built for a different code")
        self.element_size = element_size
        self.array = DiskArray(code.n, disk_model)
        self._pending = bytearray()
        self._elements_written = 0  # completed logical data elements
        self._user_bytes = 0  # durable bytes the user wrote (pad excluded)
        #: physical (start, length) of every flush-inserted zero-pad run,
        #: ascending and disjoint; the logical<->physical translation walks
        #: this list.
        self._pad_runs: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def row_bytes(self) -> int:
        """User bytes per candidate row (the append/flush unit)."""
        return self.code.k * self.element_size

    @property
    def size_bytes(self) -> int:
        """Physical bytes durably stored (flushed), *including* flush
        padding; excludes the pending buffer.  See :attr:`user_bytes` for
        the logical stream length."""
        return self._elements_written * self.element_size

    @property
    def user_bytes(self) -> int:
        """Durable bytes the user actually appended — the high-water mark
        of the logical stream.  ``read`` offsets address ``[0,
        user_bytes)``; flush padding is excluded."""
        return self._user_bytes

    @property
    def padding_bytes(self) -> int:
        """Durable zero-pad bytes inserted by :meth:`flush`."""
        return self.size_bytes - self._user_bytes

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a full row."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, data: bytes) -> int:
        """Append bytes; full rows are encoded and flushed immediately.

        Returns the true logical offset at which ``data`` begins: the
        number of user bytes written before it, *excluding* any zero
        padding earlier ``flush`` calls inserted.  The offset is directly
        usable with :meth:`read`.
        """
        offset = self._user_bytes + len(self._pending)
        self._pending.extend(data)
        while len(self._pending) >= self.row_bytes:
            chunk = bytes(self._pending[: self.row_bytes])
            del self._pending[: self.row_bytes]
            self._flush_row(chunk, user_len=self.row_bytes)
        return offset

    def flush(self) -> None:
        """Zero-pad and flush any partial pending row.

        The pad bytes become durable physically (they participate in
        parity and occupy slots — see :attr:`padding_bytes`) but are *not*
        part of the logical stream: subsequent ``append`` offsets and
        ``read`` ranges skip them, so ``flush`` never perturbs logical
        addressing.
        """
        if self._pending:
            pending_len = len(self._pending)
            pad_start = self.size_bytes + pending_len
            self._pad_runs.append((pad_start, self.row_bytes - pending_len))
            chunk = bytes(self._pending).ljust(self.row_bytes, b"\0")
            self._pending.clear()
            self._flush_row(chunk, user_len=pending_len)

    def _flush_row(self, row_payload: bytes, user_len: int) -> None:
        k, s = self.code.k, self.element_size
        data = np.frombuffer(row_payload, dtype=np.uint8).reshape(k, s)
        parity = self.code.encode(data)
        row = self._elements_written // k
        for e in range(self.code.n):
            addr = self.placement.locate_row_element(row, e)
            payload = data[e] if e < k else parity[e - k]
            disk = self.array[addr.disk]
            if not disk.failed:
                disk.write_slot(addr.slot, payload)
        self._elements_written += k
        self._user_bytes += user_len

    # ------------------------------------------------------------------
    # logical <-> physical offset translation
    # ------------------------------------------------------------------
    def _logical_to_physical(self, offset: int) -> int:
        """Physical stream position of logical byte ``offset``."""
        phys = offset
        for pad_start, pad_len in self._pad_runs:
            if phys >= pad_start:
                phys += pad_len
            else:
                break
        return phys

    def _excise_padding(self, buf: bytes, phys_start: int) -> bytes:
        """Drop pad bytes from ``buf`` covering physical ``[phys_start,
        phys_start + len(buf))``, yielding contiguous logical bytes."""
        end = phys_start + len(buf)
        pieces: list[bytes] = []
        cursor = phys_start
        for pad_start, pad_len in self._pad_runs:
            pad_end = pad_start + pad_len
            if pad_end <= cursor:
                continue
            if pad_start >= end:
                break
            if pad_start > cursor:
                pieces.append(buf[cursor - phys_start : pad_start - phys_start])
            cursor = min(pad_end, end)
        if cursor < end:
            pieces.append(buf[cursor - phys_start :])
        return b"".join(pieces)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at logical ``offset``.

        Transparently degrades: if exactly one disk is down, the degraded
        planner reconstructs through repair sets; with zero failures the
        normal planner is used.  (Multi-failure reads go through
        :meth:`read_degraded_multi`.)
        """
        data, _ = self.read_with_outcome(offset, length)
        return data

    def read_with_outcome(self, offset: int, length: int) -> tuple[bytes, ReadOutcome]:
        """Like :meth:`read` but also returns the simulated timing outcome."""
        plan = self.plan_read(offset, length)
        return self.execute_read(plan, offset, length)

    def plan_read(self, offset: int, length: int) -> AccessPlan:
        """Build (but do not execute) the access plan of a byte read.

        This is the planning half of :meth:`read_with_outcome`, exposed so
        a plan cache (:class:`repro.engine.plancache.PlanCache`) or a
        batched service can reuse plans across requests.  The plan depends
        only on the placement, the element-aligned request, and the
        current failure signature.
        """
        request = self.byte_request(offset, length)
        failed = self.array.failed_disks
        if not failed:
            return plan_normal_read(self.placement, request, self.element_size)
        if len(failed) == 1:
            return plan_degraded_read(
                self.placement, request, failed[0], self.element_size
            )
        raise DecodeFailure(
            f"{len(failed)} disks down; use read_degraded_multi for "
            "multi-failure reads"
        )

    def execute_read(
        self, plan: AccessPlan, offset: int, length: int
    ) -> tuple[bytes, ReadOutcome]:
        """Execute a previously built plan: one accounted pass that times
        the batch, fetches payloads, decodes losses, and slices bytes.

        ``plan`` must have been built by :meth:`plan_read` for the same
        ``(offset, length)`` under the current failure signature (a cached
        plan is fine — byte ranges with the same element request share
        plans).
        """
        timing = self.array.execute_batch(plan.per_disk_batches(), fetch=True)
        if timing.completion_time_s <= 0.0:
            raise ValueError("plan has no accesses; cannot compute a speed")
        outcome = ReadOutcome(
            plan=plan,
            completion_time_s=timing.completion_time_s,
            speed_bps=plan.requested_bytes / timing.completion_time_s,
        )
        elements = self._materialize_plan(plan, timing.payloads or {})
        return self._slice_bytes(elements, plan.request, offset, length), outcome

    def read_many(self, ranges: Sequence[tuple[int, int]]) -> list[bytes]:
        """Read several ``(offset, length)`` ranges; returns their payloads.

        The batch-submission primitive under
        :class:`repro.engine.service.ReadService` — each range is planned
        and executed through the unified accounting pass.  For concurrent
        timing and plan caching, use the service; this method models the
        data plane only.
        """
        return [self.read(offset, length) for offset, length in ranges]

    def read_degraded_multi(self, offset: int, length: int) -> bytes:
        """Read under any decodable multi-disk failure pattern.

        Fetches *all* surviving elements of every affected row and decodes;
        not I/O-minimal (the paper only evaluates single-failure degraded
        reads), but exercises the full fault-tolerance envelope.
        """
        request = self.byte_request(offset, length)
        failed = set(self.array.failed_disks)
        elements: dict[int, bytes] = {}
        rows = sorted({t // self.code.k for t in request.elements})
        for row in rows:
            available: dict[int, np.ndarray] = {}
            lost_data: list[int] = []
            batch: dict[int, list[tuple[int, int]]] = {}
            survivors: list[tuple[int, int, int]] = []  # (element, disk, slot)
            for e in range(self.code.n):
                addr = self.placement.locate_row_element(row, e)
                if addr.disk in failed:
                    if e < self.code.k:
                        lost_data.append(e)
                    continue
                batch.setdefault(addr.disk, []).append((addr.slot, self.element_size))
                survivors.append((e, addr.disk, addr.slot))
            timing = self.array.execute_batch(batch, fetch=True)
            payloads = timing.payloads or {}
            for e, disk, slot in survivors:
                available[e] = np.frombuffer(payloads[(disk, slot)], dtype=np.uint8)
            wanted = [
                t % self.code.k
                for t in request.elements
                if t // self.code.k == row
            ]
            # Decode every lost data element of the row, not only the
            # wanted ones: surviving parity equations reference them all.
            if any(e in lost_data for e in wanted):
                recovered = self.code.decode(available, lost_data, self.element_size)
            else:
                recovered = {}
            for e in wanted:
                t = row * self.code.k + e
                if e in recovered:
                    elements[t] = recovered[e].tobytes()
                else:
                    elements[t] = available[e].tobytes()
        return self._slice_bytes(elements, request, offset, length)

    # ------------------------------------------------------------------
    # rebuild
    # ------------------------------------------------------------------
    def rebuild_disk(self, disk_id: int) -> int:
        """Reconstruct a failed disk's contents onto a fresh replacement.

        Returns the number of elements rebuilt.  Uses each code's repair
        plan per row (LRC rebuilds a lost data element from its local
        group only).  Helper reads are accounted through the unified batch
        pass, so per-disk stats (accesses, bytes, busy time) reflect the
        rebuild I/O exactly.
        """
        disk = self.array[disk_id]
        if not disk.failed:
            raise ValueError(f"disk {disk_id} has not failed; nothing to rebuild")
        others = set(self.array.failed_disks) - {disk_id}
        if others:
            raise DecodeFailure(
                f"cannot rebuild disk {disk_id} while disks {sorted(others)} are down"
            )
        disk.restore(wipe=True)

        rebuilt = 0
        total_rows = self._elements_written // self.code.k
        for row in range(total_rows):
            lost = [
                e
                for e in range(self.code.n)
                if self.placement.locate_row_element(row, e).disk == disk_id
            ]
            for e in lost:
                helpers = self.code.repair_plan(e)
                batch: dict[int, list[tuple[int, int]]] = {}
                helper_addrs: list[tuple[int, int, int]] = []
                for h in helpers:
                    addr = self.placement.locate_row_element(row, h)
                    batch.setdefault(addr.disk, []).append(
                        (addr.slot, self.element_size)
                    )
                    helper_addrs.append((h, addr.disk, addr.slot))
                timing = self.array.execute_batch(batch, fetch=True)
                payloads = timing.payloads or {}
                available = {
                    h: np.frombuffer(payloads[(d, s)], dtype=np.uint8)
                    for h, d, s in helper_addrs
                }
                recovered = self.code.decode(available, [e], self.element_size)
                addr = self.placement.locate_row_element(row, e)
                disk.write_slot(addr.slot, recovered[e])
                rebuilt += 1
        return rebuilt

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def byte_request(self, offset: int, length: int) -> ReadRequest:
        """Element-aligned :class:`ReadRequest` covering a logical byte range.

        Public because the read service keys its plan cache on the request;
        the mapping is stable for any already-written range (flush padding
        is only ever appended past the current high-water mark).
        """
        if offset < 0 or length <= 0:
            raise ValueError(f"invalid byte range offset={offset} length={length}")
        if offset + length > self.user_bytes:
            raise ValueError(
                f"range [{offset}, {offset + length}) beyond stored "
                f"{self.user_bytes} user bytes (flush() pending data first)"
            )
        phys_first = self._logical_to_physical(offset)
        phys_last = self._logical_to_physical(offset + length - 1)
        first = phys_first // self.element_size
        last = phys_last // self.element_size
        return ReadRequest(start=first, count=last - first + 1)

    def _materialize_plan(
        self, plan: AccessPlan, payloads: dict[tuple[int, int], bytes]
    ) -> dict[int, bytes]:
        """Assemble fetched payloads and decode any lost requested elements.

        ``payloads`` comes from the accounted batch execution; this method
        performs no disk I/O of its own.
        """
        k = self.code.k
        fetched: dict[tuple[int, int], bytes] = {}
        for access in plan.accesses:
            buf = payloads[(access.address.disk, access.address.slot)]
            fetched[(access.row, access.element)] = buf

        elements: dict[int, bytes] = {}
        lost_by_row: dict[int, list[int]] = {}
        for t in plan.request.elements:
            row, e = divmod(t, k)
            if (row, e) in fetched:
                elements[t] = fetched[(row, e)]
            else:
                lost_by_row.setdefault(row, []).append(e)
        for row, lost in lost_by_row.items():
            available = {
                e: np.frombuffer(buf, dtype=np.uint8)
                for (r, e), buf in fetched.items()
                if r == row
            }
            recovered = self.code.decode(available, lost, self.element_size)
            for e in lost:
                elements[row * k + e] = recovered[e].tobytes()
        return elements

    def _slice_bytes(
        self,
        elements: dict[int, bytes],
        request: ReadRequest,
        offset: int,
        length: int,
    ) -> bytes:
        joined = b"".join(elements[t] for t in request.elements)
        phys_start = request.start * self.element_size
        logical = self._excise_padding(joined, phys_start)
        skip = self._logical_to_physical(offset) - phys_start
        # translate the skip into the pad-free buffer: subtract pad bytes
        # that preceded the target inside the fetched physical window.
        pad_before = sum(
            min(pad_start + pad_len, self._logical_to_physical(offset)) - pad_start
            for pad_start, pad_len in self._pad_runs
            if phys_start <= pad_start < self._logical_to_physical(offset)
        )
        skip -= pad_before
        return logical[skip : skip + length]
