"""Functional storage layer: real bytes through every code and placement.

* :mod:`repro.store.blockstore` — append-only erasure-coded block store
  with transparent degraded reads and disk rebuild;
* :mod:`repro.store.objects` — named immutable objects with checksums;
* :mod:`repro.store.verify` — integrity utilities.
"""

from .blockstore import BlockStore
from .objects import ObjectManifest, ObjectStore
from .scrub import ScrubReport, Scrubber
from .update import UpdateResult, update_bytes, update_element
from .verify import ChecksumMismatchError, checksum, verify_checksum

__all__ = [
    "BlockStore",
    "ObjectStore",
    "ObjectManifest",
    "Scrubber",
    "ScrubReport",
    "UpdateResult",
    "update_element",
    "update_bytes",
    "checksum",
    "verify_checksum",
    "ChecksumMismatchError",
]
