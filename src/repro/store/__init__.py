"""Functional storage layer: real bytes through every code and placement.

* :mod:`repro.store.blockstore` — append-only erasure-coded block store
  with transparent degraded reads and disk rebuild;
* :mod:`repro.store.objects` — named immutable objects with checksums;
* :mod:`repro.store.verify` — integrity utilities.
"""

from .blockstore import BlockStore, HealthCounters
from .objects import ObjectManifest, ObjectStore
from .scrub import ScrubReport, Scrubber
from .update import UpdateResult, update_bytes, update_element
from .verify import (
    ChecksumMismatchError,
    CorruptPayloadError,
    checksum,
    crc32c,
    verify_checksum,
)

__all__ = [
    "BlockStore",
    "HealthCounters",
    "ObjectStore",
    "ObjectManifest",
    "Scrubber",
    "ScrubReport",
    "UpdateResult",
    "update_element",
    "update_bytes",
    "checksum",
    "crc32c",
    "verify_checksum",
    "ChecksumMismatchError",
    "CorruptPayloadError",
]
