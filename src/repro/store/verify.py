"""Checksum utilities for the object layer."""

from __future__ import annotations

import zlib

__all__ = ["checksum", "ChecksumMismatchError", "verify_checksum"]


class ChecksumMismatchError(ValueError):
    """Raised when stored data fails its integrity check on read."""


def checksum(data: bytes) -> int:
    """CRC32 of ``data`` (stable across runs and platforms)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def verify_checksum(data: bytes, expected: int, *, context: str = "") -> None:
    """Raise :class:`ChecksumMismatchError` if ``data`` does not match."""
    actual = checksum(data)
    if actual != expected:
        where = f" for {context}" if context else ""
        raise ChecksumMismatchError(
            f"checksum mismatch{where}: expected {expected:#010x}, got {actual:#010x}"
        )
