"""Checksum utilities for the object and block layers."""

from __future__ import annotations

import struct
import zlib

__all__ = [
    "checksum",
    "crc32c",
    "ChecksumMismatchError",
    "CorruptPayloadError",
    "verify_checksum",
]


class ChecksumMismatchError(ValueError):
    """Raised when stored data fails its integrity check on read."""


class CorruptPayloadError(ChecksumMismatchError):
    """A stored element's payload no longer matches its write-time CRC32C.

    This is the *silent bit rot* failure class: the disk served the slot
    without error, but the bytes changed since the store wrote them.  The
    block store raises this only when corruption cannot be repaired; on
    the read path a corrupt element is normally demoted to an erasure,
    reconstructed, and self-healed without surfacing an exception.
    """


def checksum(data: bytes) -> int:
    """CRC32 of ``data`` (stable across runs and platforms)."""
    return zlib.crc32(data) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# CRC32C (Castagnoli) — the polynomial storage systems standardised on
# (iSCSI, ext4, Btrfs).  Pure-python slicing-by-4: one table lookup per
# byte but only one loop iteration per 32-bit word, which is fast enough
# for the element sizes the simulator moves.  Reflected polynomial.
# ----------------------------------------------------------------------
_CRC32C_POLY = 0x82F63B78


def _build_tables() -> tuple[tuple[int, ...], ...]:
    t0 = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        t0.append(crc)
    tables = [tuple(t0)]
    prev = t0
    for _ in range(3):
        nxt = [t0[c & 0xFF] ^ (c >> 8) for c in prev]
        tables.append(tuple(nxt))
        prev = nxt
    return tuple(tables)


_T0, _T1, _T2, _T3 = _build_tables()


def crc32c(data: bytes | bytearray | memoryview, crc: int = 0) -> int:
    """CRC32C (Castagnoli) of ``data``, optionally continuing ``crc``."""
    crc = ~crc & 0xFFFFFFFF
    buf = bytes(data)
    n4 = len(buf) & ~3
    if n4:
        for word in struct.unpack(f"<{n4 >> 2}I", buf[:n4]):
            crc ^= word
            crc = (
                _T3[crc & 0xFF]
                ^ _T2[(crc >> 8) & 0xFF]
                ^ _T1[(crc >> 16) & 0xFF]
                ^ _T0[crc >> 24]
            )
    for b in buf[n4:]:
        crc = _T0[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return ~crc & 0xFFFFFFFF


def verify_checksum(data: bytes, expected: int, *, context: str = "") -> None:
    """Raise :class:`ChecksumMismatchError` if ``data`` does not match."""
    actual = checksum(data)
    if actual != expected:
        where = f" for {context}" if context else ""
        raise ChecksumMismatchError(
            f"checksum mismatch{where}: expected {expected:#010x}, got {actual:#010x}"
        )
