"""In-place updates: the write path the paper's append-only model avoids.

The paper's systems buffer appends and encode full stripes (§I), because
in-place updates pay a read-modify-write penalty on every parity.  This
module implements that alternative faithfully — linear codes admit *delta
updates*: if data element ``j`` changes by ``delta = new ^ old``, every
parity ``q`` changes by ``G[q, j] * delta`` — so the analysis module's
penalty numbers (:mod:`repro.analysis.updates`) can be measured, not just
counted.

Provided as a mixin-style helper over :class:`BlockStore` rather than a
store mode: updates are the exception in cloud stores, and keeping them
out of the hot read path matches the deployments the paper describes.
"""

from __future__ import annotations

import numpy as np

from ..codes.base import MatrixCode
from .blockstore import BlockStore

__all__ = ["UpdateResult", "update_element", "update_bytes"]


from dataclasses import dataclass


@dataclass(frozen=True)
class UpdateResult:
    """Accounting for one in-place update."""

    elements_read: int
    elements_written: int
    completion_time_s: float

    @property
    def io_count(self) -> int:
        """Total element I/Os (reads + writes)."""
        return self.elements_read + self.elements_written


def update_element(store: BlockStore, t: int, payload: bytes) -> UpdateResult:
    """Overwrite logical data element ``t`` in place, delta-updating parity.

    Reads the old element and every dependent parity, XORs in the coded
    delta, writes all of them back.  Requires a healthy array (degraded
    in-place updates would need full-row re-encoding).
    """
    code = store.code
    if not isinstance(code, MatrixCode):
        raise TypeError("delta updates require a MatrixCode")
    if store.array.failed_disks:
        raise RuntimeError(
            f"cannot update in place with failed disks {store.array.failed_disks}"
        )
    if len(payload) != store.element_size:
        raise ValueError(
            f"payload must be exactly {store.element_size} bytes, got {len(payload)}"
        )
    if not 0 <= t < store.size_bytes // store.element_size:
        raise ValueError(f"element {t} is not stored")

    row, j = store.placement.row_of_data(t)
    addr = store.placement.locate_data(t)
    disk = store.array[addr.disk]

    old = np.frombuffer(disk.read_slot(addr.slot), dtype=np.uint8)
    new = np.frombuffer(payload, dtype=np.uint8)
    delta = old ^ new

    reads: dict[int, list[tuple[int, int]]] = {addr.disk: [(addr.slot, store.element_size)]}
    writes: dict[int, list[tuple[int, int]]] = {addr.disk: [(addr.slot, store.element_size)]}
    # through the store's write point so the element checksum follows the
    # new payload (a raw disk write would read back as bit rot)
    store._write_element(addr, payload)
    elements_read = 1
    elements_written = 1

    delta_symbols = code._symbols(delta[np.newaxis, :])[0]
    for q in range(code.k, code.n):
        coeff = int(code.generator[q, j])
        if coeff == 0:
            continue
        p_addr = store.placement.locate_row_element(row, q)
        p_disk = store.array[p_addr.disk]
        old_parity = np.frombuffer(p_disk.read_slot(p_addr.slot), dtype=np.uint8)
        parity_symbols = code._symbols(old_parity[np.newaxis, :])[0].copy()
        code.field.axpy(parity_symbols, coeff, delta_symbols)
        store._write_element(p_addr, code._bytes_of(parity_symbols))
        reads.setdefault(p_addr.disk, []).append((p_addr.slot, store.element_size))
        writes.setdefault(p_addr.disk, []).append((p_addr.slot, store.element_size))
        elements_read += 1
        elements_written += 1

    # Timing: each involved disk does its read then its write; request
    # completes when the slowest disk finishes both passes.
    completion = 0.0
    for d in set(reads) | set(writes):
        service = store.array.model.service_time_s(
            reads.get(d, []) + writes.get(d, [])
        )
        completion = max(completion, service)
    return UpdateResult(
        elements_read=elements_read,
        elements_written=elements_written,
        completion_time_s=completion,
    )


def update_bytes(store: BlockStore, offset: int, data: bytes) -> list[UpdateResult]:
    """Overwrite a byte range in place (element-aligned ranges only).

    Returns one :class:`UpdateResult` per element updated.  Unaligned
    updates would need read-merge-write of the boundary elements; cloud
    stores simply don't do that (the paper's append-only argument), so we
    reject them loudly instead of hiding the cost.
    """
    s = store.element_size
    if offset % s or len(data) % s:
        raise ValueError(
            f"in-place updates must be element-aligned ({s} bytes); "
            "use append() for general writes"
        )
    if not data:
        raise ValueError("empty update")
    results = []
    for i in range(len(data) // s):
        t = offset // s + i
        results.append(update_element(store, t, data[i * s : (i + 1) * s]))
    return results
