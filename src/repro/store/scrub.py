"""Background scrubbing: detect, locate and repair silent corruption.

Erasure codes as deployed in cloud storage are also the defence against
*silent* data corruption (bit rot, torn writes) and *latent sector errors*
(slots that stopped reading back): periodically re-verify every stripe and
repair what is wrong.  The paper's SD/STAIR citations (§II-B) are about
exactly this failure class at sector granularity; this module provides the
store-level operational loop:

* :meth:`Scrubber.scrub` — sweep all rows; flag checksum mismatches
  (bit rot), unreadable slots (latent errors), and parity inconsistencies;
* :meth:`Scrubber.repair_row` — reconstruct and rewrite every flagged
  element of a row through the store's self-heal machinery;
* :meth:`Scrubber.locate` — the checksum-free fallback: identify *which*
  element of a parity-inconsistent row is corrupt by trial re-encode
  (unique for a single corruption when the code tolerates >= 2 erasures).

Detection and repair both run through the store's accounted batch pass and
its :class:`~repro.store.blockstore.HealthCounters`, so a scrub shows up
in the same operational metrics as read-path self-healing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codes.base import DecodeFailure
from .blockstore import BlockStore

__all__ = ["ScrubReport", "Scrubber"]


@dataclass
class ScrubReport:
    """Outcome of one scrub sweep."""

    rows_checked: int
    corrupt_rows: list[int] = field(default_factory=list)
    #: ``(row, element)`` flagged by a write-time CRC32C mismatch (bit rot).
    checksum_mismatches: list[tuple[int, int]] = field(default_factory=list)
    #: ``(row, element)`` that could not be read (latent sector errors or
    #: never-written slots, e.g. a replaced disk awaiting rebuild).
    unreadable: list[tuple[int, int]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True if every checked row verified."""
        return not self.corrupt_rows


class Scrubber:
    """Integrity scrubber over a :class:`BlockStore`.

    Parameters
    ----------
    store:
        Target store.
    registry:
        Optional :class:`repro.obs.MetricsRegistry`.  When given, the
        scrubber publishes cumulative sweep counters under the ``health``
        namespace (as a nested ``scrub`` dict, alongside the store's
        :class:`HealthCounters`).
    """

    def __init__(self, store: BlockStore, *, registry=None) -> None:
        self.store = store
        self.sweeps = 0
        self.rows_checked = 0
        self.rows_flagged = 0
        self.repairs_made = 0
        #: next row the incremental scrub will check (wraps at the end).
        self.cursor = 0
        self.incremental_sweeps = 0
        if registry is not None:
            self.register_metrics(registry)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def register_metrics(self, registry) -> "Scrubber":
        """Publish scrub counters into the ``health`` namespace."""
        registry.register_collector("health", self.stats_snapshot)
        return self

    def stats_snapshot(self) -> dict:
        """Cumulative scrub counters, nested for the health namespace.

        ``scrub_progress`` sits at the top level (flattening to
        ``health.scrub_progress``): the fraction of the store the
        incremental cursor has covered in its current lap, 0.0..1.0
        (1.0 for an empty store — nothing left to scrub).
        """
        rows = self._row_count()
        return {
            "scrub_progress": (self.cursor / rows) if rows else 1.0,
            "scrub": {
                "sweeps": self.sweeps,
                "incremental_sweeps": self.incremental_sweeps,
                "rows_checked": self.rows_checked,
                "rows_flagged": self.rows_flagged,
                "repairs_made": self.repairs_made,
                "cursor": self.cursor,
            },
        }

    # ------------------------------------------------------------------
    def _read_row(self, row: int) -> np.ndarray:
        """Raw row fetch for the trial-decode fallback (no verification)."""
        code = self.store.code
        s = self.store.element_size
        batch: dict[int, list[tuple[int, int]]] = {}
        addrs = []
        for e in range(code.n):
            addr = self.store.placement.locate_row_element(row, e)
            batch.setdefault(addr.disk, []).append((addr.slot, s))
            addrs.append(addr)
        # One accounted batch per row: accesses, bytes and busy time land
        # on the disks together, same as the store's read path.
        timing = self.store.array.execute_batch(batch, fetch=True)
        if timing.unreadable:
            disk, slot = timing.unreadable[0]
            raise DecodeFailure(
                f"row {row}: slot {slot} on disk {disk} is unreadable; "
                "repair_row handles latent errors"
            )
        payloads = timing.payloads or {}
        out = np.zeros((code.n, s), dtype=np.uint8)
        for e, addr in enumerate(addrs):
            out[e] = np.frombuffer(payloads[(addr.disk, addr.slot)], dtype=np.uint8)
        return out

    def _row_count(self) -> int:
        return self.store.size_bytes // self.store.row_bytes

    # ------------------------------------------------------------------
    def scrub(self) -> ScrubReport:
        """Verify every flushed row: checksums, readability, parity.

        Requires all disks healthy (scrubbing a degraded array would
        conflate disk-level erasures with corruption).
        """
        if self.store.array.failed_disks:
            raise RuntimeError(
                f"cannot scrub with failed disks {self.store.array.failed_disks}"
            )
        report = ScrubReport(rows_checked=self._row_count())
        for row in range(report.rows_checked):
            self._check_row(row, report)
        self.sweeps += 1
        self.rows_checked += report.rows_checked
        self.rows_flagged += len(report.corrupt_rows)
        return report

    def scrub_incremental(self, max_rows: int) -> ScrubReport:
        """Verify at most ``max_rows`` rows from the cursor; resumable.

        The stop-the-world-free variant the recovery orchestrator runs as
        background work: each call picks up where the last left off,
        wrapping to row 0 at the end of the store (a completed lap counts
        as one :attr:`sweeps` increment, so full-coverage accounting
        matches :meth:`scrub`).  ``health.scrub_progress`` gauges the
        current lap's position.  Same degraded-array guard as
        :meth:`scrub`.
        """
        if max_rows <= 0:
            raise ValueError(f"max_rows must be > 0, got {max_rows}")
        if self.store.array.failed_disks:
            raise RuntimeError(
                f"cannot scrub with failed disks {self.store.array.failed_disks}"
            )
        total = self._row_count()
        if total == 0:
            return ScrubReport(rows_checked=0)
        if self.cursor >= total:
            # the store shrank-proof guard (stores only grow, but a stale
            # cursor from a different store instance must not index out)
            self.cursor = 0
        todo = min(max_rows, total)
        report = ScrubReport(rows_checked=todo)
        for _ in range(todo):
            self._check_row(self.cursor, report)
            self.cursor += 1
            if self.cursor >= total:
                self.cursor = 0
                self.sweeps += 1
        self.incremental_sweeps += 1
        self.rows_checked += todo
        self.rows_flagged += len(report.corrupt_rows)
        return report

    def _check_row(self, row: int, report: ScrubReport) -> None:
        """Verify one row (checksums, readability, parity) into ``report``."""
        code = self.store.code
        good, bad = self.store._fetch_elements(row, range(code.n))
        for e in sorted(bad):
            if bad[e] == "corrupt":
                report.checksum_mismatches.append((row, e))
            else:
                report.unreadable.append((row, e))
        flagged = bool(bad)
        if not bad:
            elements = np.stack(
                [np.frombuffer(good[e], dtype=np.uint8) for e in range(code.n)]
            )
            flagged = not code.verify_codeword(elements)
        if flagged:
            report.corrupt_rows.append(row)

    def locate(self, row: int) -> int | None:
        """Locate the single corrupt element of a parity-inconsistent row.

        The checksum-free fallback (it never consults the store's CRCs):
        returns the element index, or None if the row is consistent or the
        corruption is not uniquely locatable (more corruption than the
        code can disambiguate).
        """
        code = self.store.code
        elements = self._read_row(row)
        if code.verify_codeword(elements):
            return None
        s = self.store.element_size
        suspects = []
        for e in range(code.n):
            available = {i: elements[i] for i in range(code.n) if i != e}
            try:
                rebuilt = code.decode(available, [e], s)[e]
            except Exception:
                continue
            trial = elements.copy()
            trial[e] = rebuilt
            if code.verify_codeword(trial) and not np.array_equal(rebuilt, elements[e]):
                suspects.append(e)
        if len(suspects) == 1:
            return suspects[0]
        return None

    # ------------------------------------------------------------------
    def repair_row(self, row: int) -> list[int]:
        """Reconstruct and rewrite every flagged element of ``row``.

        Checksum mismatches and unreadable slots are demoted to erasures
        and healed through the store's repair machinery.  If the checksums
        are silent but the parity equations disagree (corruption that
        predates checksum tracking), falls back to trial-decode location.

        Returns the repaired element indices, ascending (empty if the row
        was clean).

        Raises
        ------
        ValueError
            If flagged elements cannot be reconstructed (erasure pattern
            beyond the code's tolerance, or unlocatable corruption).
        """
        good, bad = self.store._fetch_elements(row, range(self.store.code.n))
        if bad:
            try:
                self.store._repair_row(row, good, bad)
            except DecodeFailure as exc:
                raise ValueError(f"row {row}: cannot repair: {exc}") from exc
            self.repairs_made += len(bad)
            return sorted(bad)
        culprit = self.locate(row)
        if culprit is None:
            return []
        code = self.store.code
        elements = self._read_row(row)
        available = {i: elements[i] for i in range(code.n) if i != culprit}
        rebuilt = code.decode(available, [culprit], self.store.element_size)[culprit]
        addr = self.store.placement.locate_row_element(row, culprit)
        self.store._write_element(addr, rebuilt)
        self.repairs_made += 1
        return [culprit]

    def repair(self, row: int) -> int:
        """Legacy single-corruption repair: fix ``row`` and return the
        (first) repaired element index.

        Raises
        ------
        ValueError
            If the row is consistent or the corruption cannot be located.
        """
        fixed = self.repair_row(row)
        if not fixed:
            raise ValueError(
                f"row {row}: no uniquely locatable corruption to repair"
            )
        return fixed[0]

    def scrub_and_repair(self) -> tuple[ScrubReport, list[tuple[int, int]]]:
        """Full sweep: scrub, then repair every repairable flagged row.

        Returns the report and a list of ``(row, element)`` repairs made.
        """
        report = self.scrub()
        repairs: list[tuple[int, int]] = []
        for row in report.corrupt_rows:
            try:
                repairs.extend((row, e) for e in self.repair_row(row))
            except ValueError:
                continue
        return report, repairs

    # ------------------------------------------------------------------
    def inject_corruption(
        self, row: int, element: int, rng: np.random.Generator | None = None
    ) -> None:
        """Testing hook: overwrite one element with random garbage.

        Uses :meth:`SimDisk.corrupt_slot`, which bypasses the service
        model and counters entirely — bit rot is not an I/O — and leaves
        the store's write-time checksum stale, exactly like real silent
        corruption.
        """
        rng = rng or np.random.default_rng(0xBAD)
        addr = self.store.placement.locate_row_element(row, element)
        self.store.array[addr.disk].corrupt_slot(addr.slot, rng)
