"""Background scrubbing: detect, locate and repair silent corruption.

Erasure codes as deployed in cloud storage are also the defence against
*silent* data corruption (bit rot, torn writes): periodically re-verify
every stripe's parity equations and repair mismatches.  The paper's SD/
STAIR citations (§II-B) are about exactly this failure class at sector
granularity; this module provides the store-level operational loop:

* :meth:`Scrubber.scrub` — sweep all rows, flag parity mismatches;
* :meth:`Scrubber.locate` — identify *which* element of a flagged row is
  corrupt (unique for a single corruption when the code tolerates >= 2
  erasures: erasing the true culprit is the only erasure that yields a
  consistent re-encode matching every surviving element);
* :meth:`Scrubber.repair` — rewrite the located element from the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .blockstore import BlockStore

__all__ = ["ScrubReport", "Scrubber"]


@dataclass
class ScrubReport:
    """Outcome of one scrub sweep."""

    rows_checked: int
    corrupt_rows: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True if every checked row verified."""
        return not self.corrupt_rows


class Scrubber:
    """Parity-consistency scrubber over a :class:`BlockStore`."""

    def __init__(self, store: BlockStore) -> None:
        self.store = store

    # ------------------------------------------------------------------
    def _read_row(self, row: int) -> np.ndarray:
        code = self.store.code
        s = self.store.element_size
        batch: dict[int, list[tuple[int, int]]] = {}
        addrs = []
        for e in range(code.n):
            addr = self.store.placement.locate_row_element(row, e)
            batch.setdefault(addr.disk, []).append((addr.slot, s))
            addrs.append(addr)
        # One accounted batch per row: accesses, bytes and busy time land
        # on the disks together, same as the store's read path.
        timing = self.store.array.execute_batch(batch, fetch=True)
        payloads = timing.payloads or {}
        out = np.zeros((code.n, s), dtype=np.uint8)
        for e, addr in enumerate(addrs):
            out[e] = np.frombuffer(payloads[(addr.disk, addr.slot)], dtype=np.uint8)
        return out

    def _row_count(self) -> int:
        return self.store.size_bytes // self.store.row_bytes

    # ------------------------------------------------------------------
    def scrub(self) -> ScrubReport:
        """Verify every flushed row's parity equations.

        Requires all disks healthy (scrubbing a degraded array would
        conflate erasures with corruption).
        """
        if self.store.array.failed_disks:
            raise RuntimeError(
                f"cannot scrub with failed disks {self.store.array.failed_disks}"
            )
        report = ScrubReport(rows_checked=self._row_count())
        for row in range(report.rows_checked):
            elements = self._read_row(row)
            if not self.store.code.verify_codeword(elements):
                report.corrupt_rows.append(row)
        return report

    def locate(self, row: int) -> int | None:
        """Locate the single corrupt element of a flagged row.

        Returns the element index, or None if the row is consistent or
        the corruption is not uniquely locatable (more corruption than
        the code can disambiguate).
        """
        code = self.store.code
        elements = self._read_row(row)
        if code.verify_codeword(elements):
            return None
        s = self.store.element_size
        suspects = []
        for e in range(code.n):
            available = {i: elements[i] for i in range(code.n) if i != e}
            try:
                rebuilt = code.decode(available, [e], s)[e]
            except Exception:
                continue
            trial = elements.copy()
            trial[e] = rebuilt
            if code.verify_codeword(trial) and not np.array_equal(rebuilt, elements[e]):
                suspects.append(e)
        if len(suspects) == 1:
            return suspects[0]
        return None

    def repair(self, row: int) -> int:
        """Locate and rewrite the corrupt element of ``row``.

        Returns the repaired element index.

        Raises
        ------
        ValueError
            If the row is consistent or the corruption cannot be located.
        """
        culprit = self.locate(row)
        if culprit is None:
            raise ValueError(
                f"row {row}: no uniquely locatable corruption to repair"
            )
        code = self.store.code
        elements = self._read_row(row)
        available = {i: elements[i] for i in range(code.n) if i != culprit}
        rebuilt = code.decode(available, [culprit], self.store.element_size)[culprit]
        addr = self.store.placement.locate_row_element(row, culprit)
        self.store.array[addr.disk].write_slot(addr.slot, rebuilt)
        return culprit

    def scrub_and_repair(self) -> tuple[ScrubReport, list[tuple[int, int]]]:
        """Full sweep: scrub, then repair every locatable corruption.

        Returns the report and a list of ``(row, element)`` repairs made.
        """
        report = self.scrub()
        repairs: list[tuple[int, int]] = []
        for row in report.corrupt_rows:
            try:
                repairs.append((row, self.repair(row)))
            except ValueError:
                continue
        return report, repairs

    # ------------------------------------------------------------------
    def inject_corruption(
        self, row: int, element: int, rng: np.random.Generator | None = None
    ) -> None:
        """Testing hook: overwrite one element with random garbage.

        Uses :meth:`SimDisk.peek_slot` for the probe read so corruption
        injection does not perturb the read counters under test.
        """
        rng = rng or np.random.default_rng(0xBAD)
        addr = self.store.placement.locate_row_element(row, element)
        disk = self.store.array[addr.disk]
        original = np.frombuffer(disk.peek_slot(addr.slot), dtype=np.uint8)
        garbage = original.copy()
        while np.array_equal(garbage, original):
            garbage = rng.integers(0, 256, size=original.shape, dtype=np.uint8)
        disk.write_slot(addr.slot, garbage)
