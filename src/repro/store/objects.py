"""A named-object layer over the block store.

Gives the integration tests and examples a realistic cloud-storage
surface: put/get whole objects by name, with per-object checksums
verified on every read (normal or degraded).
"""

from __future__ import annotations

from dataclasses import dataclass

from .blockstore import BlockStore
from .verify import checksum, verify_checksum

__all__ = ["ObjectManifest", "ObjectStore"]


@dataclass(frozen=True)
class ObjectManifest:
    """Where an object lives and how to verify it."""

    name: str
    offset: int
    length: int
    crc32: int


class ObjectStore:
    """Immutable named objects on top of a :class:`BlockStore`.

    Objects are append-only (cloud blob semantics): a name can be written
    once; re-putting the same name raises.
    """

    def __init__(self, blockstore: BlockStore) -> None:
        self.blocks = blockstore
        self._manifests: dict[str, ObjectManifest] = {}

    # ------------------------------------------------------------------
    def put(self, name: str, data: bytes) -> ObjectManifest:
        """Store ``data`` under ``name``; returns the manifest."""
        if not name:
            raise ValueError("object name must be non-empty")
        if name in self._manifests:
            raise KeyError(f"object {name!r} already exists (objects are immutable)")
        if not data:
            raise ValueError("refusing to store an empty object")
        offset = self.blocks.append(data)
        # Objects must be durably readable immediately; pad out the row.
        self.blocks.flush()
        manifest = ObjectManifest(
            name=name, offset=offset, length=len(data), crc32=checksum(data)
        )
        self._manifests[name] = manifest
        return manifest

    def get(self, name: str) -> bytes:
        """Fetch and verify an object (degrades transparently)."""
        manifest = self.manifest(name)
        data = self.blocks.read(manifest.offset, manifest.length)
        verify_checksum(data, manifest.crc32, context=name)
        return data

    def get_range(self, name: str, start: int, length: int) -> bytes:
        """Fetch a byte range of an object (no checksum — partial read)."""
        manifest = self.manifest(name)
        if start < 0 or length <= 0 or start + length > manifest.length:
            raise ValueError(
                f"range [{start}, {start + length}) outside object of "
                f"{manifest.length} bytes"
            )
        return self.blocks.read(manifest.offset + start, length)

    def manifest(self, name: str) -> ObjectManifest:
        """Manifest lookup; KeyError for unknown names."""
        try:
            return self._manifests[name]
        except KeyError:
            raise KeyError(f"no such object {name!r}") from None

    def list_objects(self) -> list[str]:
        """All object names, in insertion order."""
        return list(self._manifests)

    def __contains__(self, name: str) -> bool:
        return name in self._manifests

    def __len__(self) -> int:
        return len(self._manifests)
