"""Result export: serialize figure tables to CSV and JSON.

Lets users regenerate the paper's figures into files they can plot with
their own tooling (`repro-ecfrm sweep --out results/`), and gives CI a
stable artifact format for regression-tracking the reproduction.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Callable, Mapping

from .experiment import ExperimentConfig
from .report import SeriesTable

__all__ = ["table_to_csv", "table_to_json", "export_all_figures", "FIGURE_BUILDERS"]


def table_to_csv(table: SeriesTable) -> str:
    """Render a series table as CSV text (one row per series)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["series", *table.x_labels])
    for name, values in table.series.items():
        writer.writerow([name, *[f"{v:.6g}" for v in values]])
    return buf.getvalue()


def table_to_json(table: SeriesTable) -> str:
    """Render a series table as pretty JSON text."""
    payload = {
        "title": table.title,
        "unit": table.unit,
        "x_labels": list(table.x_labels),
        "series": {name: list(values) for name, values in table.series.items()},
    }
    return json.dumps(payload, indent=2) + "\n"


def _builders() -> Mapping[str, Callable[[ExperimentConfig], SeriesTable]]:
    from .paperfigs import figure8a, figure8b, figure9a, figure9b, figure9c, figure9d

    return {
        "fig8a": figure8a,
        "fig8b": figure8b,
        "fig9a": figure9a,
        "fig9b": figure9b,
        "fig9c": figure9c,
        "fig9d": figure9d,
    }


#: measured-figure ids -> builder, resolved lazily to avoid import cycles.
FIGURE_BUILDERS = _builders()


def export_all_figures(
    out_dir: str | Path,
    config: ExperimentConfig | None = None,
    *,
    formats: tuple[str, ...] = ("csv", "json"),
) -> list[Path]:
    """Regenerate every measured figure into ``out_dir``.

    Returns the list of files written (``fig8a.csv``, ``fig8a.json``, ...).
    """
    allowed = {"csv", "json"}
    if not set(formats) <= allowed:
        raise ValueError(f"unknown formats {set(formats) - allowed}; known: {allowed}")
    config = config or ExperimentConfig()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name, builder in FIGURE_BUILDERS.items():
        table = builder(config)
        if "csv" in formats:
            path = out / f"{name}.csv"
            path.write_text(table_to_csv(table))
            written.append(path)
        if "json" in formats:
            path = out / f"{name}.json"
            path.write_text(table_to_json(table))
            written.append(path)
    return written
