"""Experiment runner: the paper's evaluation protocol end to end.

Builds placements for each form of each tested code (Table I), replays the
paper's random workloads through the planners and the disk simulator, and
aggregates the three metrics of §VI: normal read speed, degraded read cost
and degraded read speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..codes.base import ErasureCode
from ..codes.lrc import make_lrc
from ..codes.reed_solomon import make_rs
from ..disks.model import DiskModel
from ..disks.presets import SAVVIO_10K3
from ..engine.degraded import plan_degraded_read
from ..engine.executor import simulate_plan
from ..engine.planner import plan_normal_read
from ..layout import Placement, make_placement
from ..workloads.random_reads import (
    PAPER_DEGRADED_TRIALS,
    PAPER_NORMAL_TRIALS,
    RandomDegradedWorkload,
    RandomReadWorkload,
)
from .metrics import SampleSummary, summarize

__all__ = [
    "PAPER_RS_PARAMS",
    "PAPER_LRC_PARAMS",
    "PAPER_FORMS",
    "MiB",
    "ExperimentConfig",
    "NormalReadResult",
    "DegradedReadResult",
    "run_normal_read_experiment",
    "run_degraded_read_experiment",
    "compare_normal_forms",
    "compare_degraded_forms",
    "paper_codes",
]

MiB = 1024 * 1024

#: Table I, column 1: the tested Reed-Solomon parameters.
PAPER_RS_PARAMS: tuple[tuple[int, int], ...] = ((6, 3), (8, 4), (10, 5))
#: Table I, column 2: the tested LRC parameters.
PAPER_LRC_PARAMS: tuple[tuple[int, int, int], ...] = ((6, 2, 2), (8, 2, 3), (10, 2, 4))
#: The three placement forms compared in every figure.
PAPER_FORMS: tuple[str, ...] = ("standard", "rotated", "ec-frm")


def paper_codes() -> dict[str, ErasureCode]:
    """All Table I codes, keyed by their spec string."""
    out: dict[str, ErasureCode] = {}
    for k, m in PAPER_RS_PARAMS:
        out[f"rs-{k}-{m}"] = make_rs(k, m)
    for k, l, m in PAPER_LRC_PARAMS:
        out[f"lrc-{k}-{l}-{m}"] = make_lrc(k, l, m)
    return out


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of a read experiment.

    Defaults mirror the paper: 1 MiB elements (§III-A), a Savvio-class
    disk model (§VI-A), reads of 1..20 elements, and the paper's trial
    counts.  ``address_space_rows`` sizes the logical space in candidate
    rows; big enough that start points are effectively arbitrary.
    """

    element_size: int = 1 * MiB
    disk_model: DiskModel = SAVVIO_10K3
    normal_trials: int = PAPER_NORMAL_TRIALS
    degraded_trials: int = PAPER_DEGRADED_TRIALS
    min_read: int = 1
    max_read: int = 20
    address_space_rows: int = 1000
    seed: int = 2015

    def address_space(self, code: ErasureCode) -> int:
        """Logical data elements available to the workload."""
        return self.address_space_rows * code.k

    def normal_workload(self, code: ErasureCode) -> RandomReadWorkload:
        """The paper's normal-read workload for ``code``."""
        return RandomReadWorkload(
            address_space=self.address_space(code),
            trials=self.normal_trials,
            min_size=self.min_read,
            max_size=self.max_read,
            seed=self.seed,
        )

    def degraded_workload(self, code: ErasureCode) -> RandomDegradedWorkload:
        """The paper's degraded-read workload for ``code``."""
        return RandomDegradedWorkload(
            address_space=self.address_space(code),
            num_disks=code.n,
            trials=self.degraded_trials,
            min_size=self.min_read,
            max_size=self.max_read,
            seed=self.seed + 1,
        )


@dataclass(frozen=True)
class NormalReadResult:
    """Aggregated normal-read metrics for one (code, form)."""

    placement_name: str
    code_name: str
    speed_mib_s: SampleSummary
    max_disk_load: SampleSummary
    disks_touched: SampleSummary

    @property
    def mean_speed(self) -> float:
        """Mean speed in MiB/s — the paper's Figure 8 bar height."""
        return self.speed_mib_s.mean


@dataclass(frozen=True)
class DegradedReadResult:
    """Aggregated degraded-read metrics for one (code, form)."""

    placement_name: str
    code_name: str
    speed_mib_s: SampleSummary
    read_cost: SampleSummary
    max_disk_load: SampleSummary

    @property
    def mean_speed(self) -> float:
        """Mean degraded speed in MiB/s — Figure 9(c)/(d) bar height."""
        return self.speed_mib_s.mean

    @property
    def mean_cost(self) -> float:
        """Mean degraded read cost — Figure 9(a)/(b) bar height."""
        return self.read_cost.mean


def run_normal_read_experiment(
    placement: Placement, config: ExperimentConfig | None = None
) -> NormalReadResult:
    """Replay the normal-read workload through one placement."""
    config = config or ExperimentConfig()
    workload = config.normal_workload(placement.code)
    speeds: list[float] = []
    max_loads: list[float] = []
    touched: list[float] = []
    for request in workload:
        plan = plan_normal_read(placement, request, config.element_size)
        outcome = simulate_plan(plan, config.disk_model)
        speeds.append(outcome.speed_mib_s)
        max_loads.append(float(plan.max_disk_load))
        touched.append(float(plan.disks_touched))
    return NormalReadResult(
        placement_name=placement.name,
        code_name=placement.code.describe(),
        speed_mib_s=summarize(speeds),
        max_disk_load=summarize(max_loads),
        disks_touched=summarize(touched),
    )


def run_degraded_read_experiment(
    placement: Placement, config: ExperimentConfig | None = None
) -> DegradedReadResult:
    """Replay the degraded-read workload through one placement."""
    config = config or ExperimentConfig()
    workload = config.degraded_workload(placement.code)
    speeds: list[float] = []
    costs: list[float] = []
    max_loads: list[float] = []
    for trial in workload:
        plan = plan_degraded_read(
            placement, trial.request, trial.failed_disk, config.element_size
        )
        outcome = simulate_plan(plan, config.disk_model)
        speeds.append(outcome.speed_mib_s)
        costs.append(plan.read_cost)
        max_loads.append(float(plan.max_disk_load))
    return DegradedReadResult(
        placement_name=placement.name,
        code_name=placement.code.describe(),
        speed_mib_s=summarize(speeds),
        read_cost=summarize(costs),
        max_disk_load=summarize(max_loads),
    )


def compare_normal_forms(
    code: ErasureCode,
    forms: Sequence[str] = PAPER_FORMS,
    config: ExperimentConfig | None = None,
) -> dict[str, NormalReadResult]:
    """Normal-read results for every form of one code, same workload."""
    return {
        form: run_normal_read_experiment(make_placement(form, code), config)
        for form in forms
    }


def compare_degraded_forms(
    code: ErasureCode,
    forms: Sequence[str] = PAPER_FORMS,
    config: ExperimentConfig | None = None,
) -> dict[str, DegradedReadResult]:
    """Degraded-read results for every form of one code, same workload."""
    return {
        form: run_degraded_read_experiment(make_placement(form, code), config)
        for form in forms
    }
