"""Experiment harness: the paper's evaluation protocol and figure builders.

* :mod:`repro.harness.metrics` — summary statistics and improvement math;
* :mod:`repro.harness.experiment` — workload replay and form comparison;
* :mod:`repro.harness.report` — plain-text figure-shaped tables;
* :mod:`repro.harness.paperfigs` — regeneration of Figures 1-9.
"""

from .experiment import (
    PAPER_FORMS,
    PAPER_LRC_PARAMS,
    PAPER_RS_PARAMS,
    DegradedReadResult,
    ExperimentConfig,
    NormalReadResult,
    compare_degraded_forms,
    compare_normal_forms,
    paper_codes,
    run_degraded_read_experiment,
    run_normal_read_experiment,
)
from .export import export_all_figures, table_to_csv, table_to_json
from .metrics import SampleSummary, improvement_pct, service_report, summarize
from .report import SeriesTable, format_pct_range, render_improvements

__all__ = [
    "ExperimentConfig",
    "NormalReadResult",
    "DegradedReadResult",
    "run_normal_read_experiment",
    "run_degraded_read_experiment",
    "compare_normal_forms",
    "compare_degraded_forms",
    "paper_codes",
    "PAPER_FORMS",
    "PAPER_RS_PARAMS",
    "PAPER_LRC_PARAMS",
    "SampleSummary",
    "summarize",
    "improvement_pct",
    "service_report",
    "SeriesTable",
    "render_improvements",
    "format_pct_range",
    "export_all_figures",
    "table_to_csv",
    "table_to_json",
]
