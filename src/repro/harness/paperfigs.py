"""Regeneration of every figure of the paper.

Figures 1-7 are layout/construction illustrations: the functions here
rebuild them as text from the actual library objects (not hard-coded
strings), so they double as end-to-end checks of the construction.
Figures 8-9 are the measured results: builders return
:class:`~repro.harness.report.SeriesTable` objects with one series per
form, reproducing the bar groups of the paper.
"""

from __future__ import annotations

import numpy as np

from ..codes.lrc import make_lrc
from ..codes.reed_solomon import make_rs
from ..engine.degraded import plan_degraded_read
from ..engine.planner import plan_normal_read
from ..engine.requests import ReadRequest
from ..frm.code import FRMCode
from ..frm.grouping import FRMGeometry
from ..frm.render import render_geometry, render_group_membership, slot_label
from ..layout import FRMPlacement, RotatedPlacement, StandardPlacement
from .experiment import (
    PAPER_LRC_PARAMS,
    PAPER_RS_PARAMS,
    ExperimentConfig,
    compare_degraded_forms,
    compare_normal_forms,
)
from .report import SeriesTable

__all__ = [
    "fig1_rs_layout",
    "fig2_lrc_layout",
    "fig3_read_example",
    "fig4_frm_layout",
    "fig5_construction",
    "fig6_reconstruction",
    "fig7_reads",
    "figure8a",
    "figure8b",
    "figure9a",
    "figure9b",
    "figure9c",
    "figure9d",
    "ALL_TEXT_FIGURES",
]


def _loads_line(loads: dict[int, int], num_disks: int) -> str:
    return " ".join(f"disk{d}:{loads.get(d, 0)}" for d in range(num_disks))


def fig1_rs_layout() -> str:
    """Figure 1: a stripe (row) of (6,3) Reed-Solomon code."""
    rs = make_rs(6, 3)
    data = " ".join(f"d0,{j}" for j in range(rs.k))
    parity = " ".join(f"p0,{j}" for j in range(rs.num_parity))
    return (
        "Figure 1 — (6,3) Reed-Solomon stripe (one row):\n"
        f"  data disks   : {data}\n"
        f"  parity disks : {parity}\n"
        f"  MDS: tolerates any {rs.fault_tolerance} disk failures"
    )


def fig2_lrc_layout() -> str:
    """Figure 2: a stripe (row) of (6,2,2) LRC code."""
    lrc = make_lrc(6, 2, 2)
    lines = ["Figure 2 — (6,2,2) LRC stripe (one row):"]
    lines.append("  data disks         : " + " ".join(f"d0,{j}" for j in range(lrc.k)))
    for g in range(lrc.l):
        members = ", ".join(f"d0,{j}" for j in lrc.data_of_group(g))
        lines.append(f"  local parity l0,{g} : XOR of {{{members}}}")
    lines.append(
        f"  global parities    : "
        + " ".join(f"m0,{t}" for t in range(lrc.m))
        + " over all data elements"
    )
    return "\n".join(lines)


def fig3_read_example() -> str:
    """Figure 3: an 8-element read in (6,2,2) LRC, standard vs rotated.

    Reproduces the paper's bottleneck observation: both forms leave some
    disk serving 2 elements while other disks idle.
    """
    lrc = make_lrc(6, 2, 2)
    request = ReadRequest(0, 8)
    lines = ["Figure 3 — 8-element read in (6,2,2) LRC:"]
    for placement in (StandardPlacement(lrc), RotatedPlacement(lrc)):
        plan = plan_normal_read(placement, request, 1)
        loads = dict(plan.per_disk_loads())
        lines.append(
            f"  ({placement.name}) loads: {_loads_line(loads, lrc.n)}  "
            f"-> most loaded disk serves {plan.max_disk_load}"
        )
    return "\n".join(lines)


def fig4_frm_layout() -> str:
    """Figure 4: the EC-FRM stripe grid of the (10,6) candidate.

    (The paper's caption says "(6,4) EC-FRM-Code" but its worked examples
    — G1, G2, G3 — are for the (10,6) candidate, i.e. (6,2,2) LRC.)
    """
    g = FRMGeometry(10, 6)
    lines = ["Figure 4 — EC-FRM layout of the (10,6) candidate (rows x disks):"]
    lines.append(render_geometry(g, style="group"))
    lines.append("")
    for i in range(g.num_groups):
        lines.append("  " + render_group_membership(g, i))
    return "\n".join(lines)


def fig5_construction() -> str:
    """Figure 5: construction rules of the (6,2,2) EC-FRM-LRC code.

    For every group, shows which grid elements feed each local parity
    (Fig 5a) and that the globals cover the whole group (Fig 5b).
    """
    lrc = make_lrc(6, 2, 2)
    frm = FRMCode(lrc)
    g = frm.geometry
    lines = ["Figure 5 — (6,2,2) EC-FRM-LRC construction rules:"]
    for i in range(g.num_groups):
        elems = g.group_elements(i)
        names = [slot_label(g, p, style="grid") for p in elems]
        for local in range(lrc.l):
            parity_name = names[lrc.local_parity_index(local)]
            member_names = [names[j] for j in lrc.data_of_group(local)]
            lines.append(f"  {parity_name} = " + " + ".join(member_names) + f"   (G{i} local)")
        for t in range(lrc.m):
            parity_name = names[lrc.global_parity_index(t)]
            lines.append(
                f"  {parity_name} = global parity {t} over "
                + "{" + ", ".join(names[: lrc.k]) + "}"
                + f"   (G{i})"
            )
    return "\n".join(lines)


def fig6_reconstruction(element_size: int = 64, seed: int = 6) -> str:
    """Figure 6: reconstruction from disks 1, 2, 3 failing concurrently
    in (6,2,2) EC-FRM-LRC — executed on real bytes and verified."""
    lrc = make_lrc(6, 2, 2)
    frm = FRMCode(lrc)
    g = frm.geometry
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(g.data_elements_per_stripe, element_size), dtype=np.uint8)
    grid = frm.encode_stripe(data)
    corrupted = grid.copy()
    failed = [1, 2, 3]
    corrupted[:, failed, :] = 0
    recovered = frm.decode_columns(corrupted, failed)
    ok = bool(np.array_equal(recovered, grid))
    lines = [
        "Figure 6 — (6,2,2) EC-FRM-LRC reconstruction from disks 1, 2, 3:",
        f"  erased elements per group: "
        + ", ".join(
            f"G{i}: "
            + "{"
            + ", ".join(
                slot_label(g, p, style="grid")
                for p in g.group_elements(i)
                if p.col in failed
            )
            + "}"
            for i in range(g.num_groups)
        ),
        f"  candidate decodes each group independently (3 erasures each)",
        f"  byte-exact recovery: {'OK' if ok else 'FAILED'}",
    ]
    if not ok:
        raise AssertionError("Figure 6 reconstruction did not round-trip")
    return "\n".join(lines)


def fig7_reads() -> str:
    """Figure 7: read I/O distribution of (6,2,2) EC-FRM-LRC.

    (a) 8-element normal read -> most loaded disk serves 1;
    (b) a 14-element degraded read where the most loaded disk serves 2;
    (c) another where it must serve 3 (the paper's "things are not always
    fine" case).
    """
    lrc = make_lrc(6, 2, 2)
    placement = FRMPlacement(lrc)
    lines = ["Figure 7 — (6,2,2) EC-FRM-LRC read distributions:"]

    plan_a = plan_normal_read(placement, ReadRequest(0, 8), 1)
    lines.append(
        f"  (a) 8-element normal read : {_loads_line(dict(plan_a.per_disk_loads()), lrc.n)}"
        f"  -> max load {plan_a.max_disk_load}"
    )

    # (b)/(c): scan 14-element degraded reads for the paper's two cases.
    found: dict[int, tuple[int, int]] = {}
    for failed in range(lrc.n):
        for start in range(0, 30):
            plan = plan_degraded_read(placement, ReadRequest(start, 14), failed, 1)
            found.setdefault(plan.max_disk_load, (start, failed))
    for label, max_load in (("b", 2), ("c", 3)):
        if max_load not in found:
            raise AssertionError(f"no 14-element degraded read with max load {max_load}")
        start, failed = found[max_load]
        plan = plan_degraded_read(placement, ReadRequest(start, 14), failed, 1)
        lines.append(
            f"  ({label}) 14-element degraded read (start={start}, failed disk {failed}): "
            f"{_loads_line(dict(plan.per_disk_loads()), lrc.n)}  -> max load {plan.max_disk_load}"
        )
    return "\n".join(lines)


#: text figures in paper order, for the CLI and the layout bench.
ALL_TEXT_FIGURES = {
    "fig1": fig1_rs_layout,
    "fig2": fig2_lrc_layout,
    "fig3": fig3_read_example,
    "fig4": fig4_frm_layout,
    "fig5": fig5_construction,
    "fig6": fig6_reconstruction,
    "fig7": fig7_reads,
}


# ----------------------------------------------------------------------
# Figures 8 and 9: the measured results
# ----------------------------------------------------------------------
def _form_series_names(kind: str) -> dict[str, str]:
    """Map form ids to the paper's series names for a code family."""
    if kind == "rs":
        return {"standard": "RS", "rotated": "R-RS", "ec-frm": "EC-FRM-RS"}
    if kind == "lrc":
        return {"standard": "LRC", "rotated": "R-LRC", "ec-frm": "EC-FRM-LRC"}
    raise ValueError(f"unknown code family {kind!r}")


def _build_table(
    kind: str,
    metric: str,
    config: ExperimentConfig,
    *,
    degraded: bool,
    title: str,
    unit: str,
) -> SeriesTable:
    if kind == "rs":
        params = [f"({k},{m})" for k, m in PAPER_RS_PARAMS]
        codes = [make_rs(k, m) for k, m in PAPER_RS_PARAMS]
    else:
        params = [f"({k},{l},{m})" for k, l, m in PAPER_LRC_PARAMS]
        codes = [make_lrc(k, l, m) for k, l, m in PAPER_LRC_PARAMS]
    names = _form_series_names(kind)
    table = SeriesTable(title=title, x_labels=params, unit=unit)
    values: dict[str, list[float]] = {name: [] for name in names.values()}
    for code in codes:
        results = (
            compare_degraded_forms(code, config=config)
            if degraded
            else compare_normal_forms(code, config=config)
        )
        for form, series_name in names.items():
            values[series_name].append(getattr(results[form], metric))
    for series_name, vals in values.items():
        table.add_series(series_name, vals)
    return table


def figure8a(config: ExperimentConfig | None = None) -> SeriesTable:
    """Figure 8(a): normal read speed for the RS family (MiB/s)."""
    return _build_table(
        "rs",
        "mean_speed",
        config or ExperimentConfig(),
        degraded=False,
        title="Figure 8(a) — normal read speed, Reed-Solomon family",
        unit="MiB/s",
    )


def figure8b(config: ExperimentConfig | None = None) -> SeriesTable:
    """Figure 8(b): normal read speed for the LRC family (MiB/s)."""
    return _build_table(
        "lrc",
        "mean_speed",
        config or ExperimentConfig(),
        degraded=False,
        title="Figure 8(b) — normal read speed, LRC family",
        unit="MiB/s",
    )


def figure9a(config: ExperimentConfig | None = None) -> SeriesTable:
    """Figure 9(a): degraded read cost for the RS family."""
    return _build_table(
        "rs",
        "mean_cost",
        config or ExperimentConfig(),
        degraded=True,
        title="Figure 9(a) — degraded read cost, Reed-Solomon family",
        unit="x",
    )


def figure9b(config: ExperimentConfig | None = None) -> SeriesTable:
    """Figure 9(b): degraded read cost for the LRC family."""
    return _build_table(
        "lrc",
        "mean_cost",
        config or ExperimentConfig(),
        degraded=True,
        title="Figure 9(b) — degraded read cost, LRC family",
        unit="x",
    )


def figure9c(config: ExperimentConfig | None = None) -> SeriesTable:
    """Figure 9(c): degraded read speed for the RS family (MiB/s)."""
    return _build_table(
        "rs",
        "mean_speed",
        config or ExperimentConfig(),
        degraded=True,
        title="Figure 9(c) — degraded read speed, Reed-Solomon family",
        unit="MiB/s",
    )


def figure9d(config: ExperimentConfig | None = None) -> SeriesTable:
    """Figure 9(d): degraded read speed for the LRC family (MiB/s)."""
    return _build_table(
        "lrc",
        "mean_speed",
        config or ExperimentConfig(),
        degraded=True,
        title="Figure 9(d) — degraded read speed, LRC family",
        unit="MiB/s",
    )
