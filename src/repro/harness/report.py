"""Plain-text rendering of experiment results, paper-style.

The paper's figures are grouped bar charts: one group per code parameter,
one bar per form.  Terminal-friendly equivalents here: a table with one
row per form and one column per parameter, plus the headline improvement
lines the paper's abstract quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .metrics import improvement_pct

__all__ = ["SeriesTable", "render_improvements", "format_pct_range"]


@dataclass
class SeriesTable:
    """A figure-shaped result: named series over shared x labels.

    ``series`` maps a series name (form label, e.g. ``"EC-FRM-RS"``) to one
    value per x label (code parameter, e.g. ``"(6,3)"``).
    """

    title: str
    x_labels: Sequence[str]
    unit: str
    series: dict[str, list[float]] = field(default_factory=dict)

    def add_series(self, name: str, values: Sequence[float]) -> None:
        """Add one series; must match the x-label count."""
        values = [float(v) for v in values]
        if len(values) != len(self.x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(self.x_labels)} x labels"
            )
        self.series[name] = values

    def value(self, name: str, x_label: str) -> float:
        """Look up one cell by series name and x label."""
        return self.series[name][list(self.x_labels).index(x_label)]

    def render(self, *, precision: int = 1) -> str:
        """Render as an aligned plain-text table."""
        name_w = max([len(n) for n in self.series] + [len("series")])
        cols = [f"{x} [{self.unit}]" for x in self.x_labels]
        col_w = [
            max(len(c), *(len(f"{vals[i]:.{precision}f}") for vals in self.series.values()))
            if self.series
            else len(c)
            for i, c in enumerate(cols)
        ]
        lines = [self.title]
        header = "series".ljust(name_w) + " | " + " | ".join(
            c.rjust(w) for c, w in zip(cols, col_w)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name, vals in self.series.items():
            cells = " | ".join(
                f"{v:.{precision}f}".rjust(w) for v, w in zip(vals, col_w)
            )
            lines.append(name.ljust(name_w) + " | " + cells)
        return "\n".join(lines)


def format_pct_range(pcts: Sequence[float]) -> str:
    """Format improvements the way the paper quotes them: ``"19.2% to 33.9%"``."""
    if not pcts:
        raise ValueError("no percentages to format")
    lo, hi = min(pcts), max(pcts)
    if abs(hi - lo) < 0.05:
        return f"{lo:.1f}%"
    return f"{lo:.1f}% to {hi:.1f}%"


def render_improvements(
    table: SeriesTable, subject: str, baselines: Mapping[str, str]
) -> str:
    """Headline lines: subject's gain over each baseline across all x labels.

    ``baselines`` maps a series name to the prose label used in the output,
    e.g. ``{"RS": "standard Reed-Solomon", "R-RS": "rotated Reed-Solomon"}``.
    """
    if subject not in table.series:
        raise ValueError(f"unknown subject series {subject!r}")
    lines = []
    for base_name, prose in baselines.items():
        pcts = [
            improvement_pct(new, old)
            for new, old in zip(table.series[subject], table.series[base_name])
        ]
        lines.append(f"{subject} vs {prose}: {format_pct_range(pcts)}")
    return "\n".join(lines)
