"""Regression guard: compare fresh results against committed baselines.

``results/`` holds the full-scale CSV/JSON artifacts of Figures 8-9.
This module re-runs any figure and diffs it against the stored baseline
within a tolerance, so CI catches accidental changes to the simulator,
planners, or workloads (same seed -> deterministic expectations; the
tolerance absorbs only intentional trial-count differences).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .experiment import ExperimentConfig
from .export import FIGURE_BUILDERS
from .report import SeriesTable

__all__ = ["RegressionReport", "load_baseline", "check_figure", "check_all_figures"]


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of one figure's baseline comparison."""

    figure: str
    max_rel_error: float
    worst_cell: tuple[str, str] | None  # (series, x label)

    def within(self, tolerance: float) -> bool:
        """True if every cell matched within ``tolerance`` (relative)."""
        return self.max_rel_error <= tolerance


def load_baseline(results_dir: str | Path, figure: str) -> SeriesTable:
    """Load a committed baseline JSON back into a :class:`SeriesTable`."""
    path = Path(results_dir) / f"{figure}.json"
    if not path.exists():
        raise FileNotFoundError(f"no baseline for {figure!r} at {path}")
    payload = json.loads(path.read_text())
    table = SeriesTable(
        title=payload["title"], x_labels=payload["x_labels"], unit=payload["unit"]
    )
    for name, values in payload["series"].items():
        table.add_series(name, values)
    return table


def _diff(fresh: SeriesTable, baseline: SeriesTable, figure: str) -> RegressionReport:
    if set(fresh.series) != set(baseline.series) or list(fresh.x_labels) != list(
        baseline.x_labels
    ):
        raise ValueError(
            f"{figure}: series/x-label structure changed vs baseline "
            f"({sorted(fresh.series)} vs {sorted(baseline.series)})"
        )
    worst = 0.0
    worst_cell = None
    for name in fresh.series:
        for x in fresh.x_labels:
            new = fresh.value(name, x)
            old = baseline.value(name, x)
            err = abs(new - old) / abs(old) if old else abs(new)
            if err > worst:
                worst = err
                worst_cell = (name, x)
    return RegressionReport(figure=figure, max_rel_error=worst, worst_cell=worst_cell)


def check_figure(
    figure: str,
    results_dir: str | Path = "results",
    config: ExperimentConfig | None = None,
) -> RegressionReport:
    """Regenerate ``figure`` and diff it against the stored baseline."""
    if figure not in FIGURE_BUILDERS:
        raise ValueError(f"unknown figure {figure!r}; known: {sorted(FIGURE_BUILDERS)}")
    baseline = load_baseline(results_dir, figure)
    fresh = FIGURE_BUILDERS[figure](config or ExperimentConfig())
    return _diff(fresh, baseline, figure)


def check_all_figures(
    results_dir: str | Path = "results",
    config: ExperimentConfig | None = None,
) -> dict[str, RegressionReport]:
    """Run :func:`check_figure` for every measured figure."""
    return {
        figure: check_figure(figure, results_dir, config)
        for figure in FIGURE_BUILDERS
    }
