"""Metric aggregation for read experiments.

The paper reports per-configuration *averages* over the workload (normal
read speed, degraded read cost, degraded read speed) and headline
*improvement percentages* between forms.  This module provides the summary
containers and the comparison arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["SampleSummary", "improvement_pct", "service_report", "summarize"]


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of one metric over a workload."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"mean={self.mean:.4g} std={self.std:.3g} "
            f"p50={self.p50:.4g} p95={self.p95:.4g} n={self.count}"
        )


def summarize(samples: Sequence[float]) -> SampleSummary:
    """Build a :class:`SampleSummary` from raw per-trial samples."""
    if not samples:
        raise ValueError("cannot summarize an empty sample set")
    xs = sorted(float(s) for s in samples)
    n = len(xs)
    mean = sum(xs) / n
    variance = sum((x - mean) ** 2 for x in xs) / n
    return SampleSummary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=xs[0],
        maximum=xs[-1],
        p50=_quantile(xs, 0.50),
        p95=_quantile(xs, 0.95),
    )


def _quantile(sorted_xs: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted samples."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    pos = q * (len(sorted_xs) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return sorted_xs[lo]
    frac = pos - lo
    return sorted_xs[lo] * (1 - frac) + sorted_xs[hi] * frac


def service_report(service) -> str:
    """Render a :class:`repro.engine.service.ReadService` metrics snapshot.

    Duck-typed on ``service.metrics()`` (the harness sits above the engine
    in the layer stack, so no engine import here).  Consumes the
    namespaced snapshot schema (``schema_version`` + ``service.*`` /
    ``cache.*`` / ``health.*`` / ``faults.*`` namespaces); pre-1.1 flat
    dicts that older tooling may have persisted still render (counters at
    top level).  One line per counter, a compact per-disk load histogram,
    and — when tracing is on — a per-stage latency-breakdown table.
    """
    m = service.metrics()
    svc = m.get("service", m)  # legacy flat shape: counters at top level
    cache = m["cache"]
    lines = [
        f"requests served : {svc['requests']} ({svc['batches']} batches, "
        f"max queue depth {svc['max_queue_depth']})",
        f"bytes served    : {svc['bytes_served']}",
        f"plan cache      : {cache['hits']} hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate']:.1%}), {cache['plans_built']} built, "
        f"{cache['evictions']} evicted"
        + (
            f", {cache['invalidations']} invalidated"
            if cache.get("invalidations")
            else ""
        ),
    ]
    if svc.get("retries") or svc.get("degraded_serves"):
        lines.append(
            f"fault handling  : {svc.get('retries', 0)} batch retries, "
            f"{svc.get('degraded_serves', 0)} degraded serves"
        )
    faults = m.get("faults")
    if faults and faults.get("events_fired"):
        by_kind = faults.get("fired_by_kind", {})
        kinds = ", ".join(f"{k}:{by_kind[k]}" for k in sorted(by_kind))
        lines.append(
            f"faults injected : {faults['events_fired']} fired"
            + (f" ({kinds})" if kinds else "")
            + (
                f", {faults['events_skipped']} skipped"
                if faults.get("events_skipped")
                else ""
            )
        )
    health = m.get("health")
    if health and any(
        v for k, v in health.items() if not isinstance(v, dict)
    ):
        lines.append(
            "store health    : "
            f"{health['corruptions_detected']} corruptions detected "
            f"({health['corruptions_repaired']} repaired), "
            f"{health['latent_errors_detected']} latent errors detected "
            f"({health['latent_errors_repaired']} repaired), "
            f"{health['self_heal_writes']} heal writes"
        )
    scrub = (health or {}).get("scrub")
    if scrub and scrub.get("sweeps"):
        lines.append(
            f"scrub           : {scrub['sweeps']} sweeps, "
            f"{scrub['rows_checked']} rows checked, "
            f"{scrub['rows_flagged']} flagged, "
            f"{scrub['repairs_made']} repairs"
        )
    load = svc["disk_load"]
    if load:
        peak = max(load.values())
        bars = " ".join(f"d{d}:{load[d]}" for d in sorted(load))
        lines.append(f"disk load       : {bars} (peak {peak})")
    latency = svc.get("latency")
    if latency:
        from ..obs import render_latency_breakdown

        lines.append("latency breakdown:")
        lines.append(render_latency_breakdown(latency))
    return "\n".join(lines)


def improvement_pct(new: float, baseline: float) -> float:
    """Relative improvement of ``new`` over ``baseline`` in percent.

    Positive means ``new`` is higher; this is the paper's headline number
    format ("EC-FRM-RS gains 19.2% to 33.9% higher read speed").
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return (new / baseline - 1.0) * 100.0
