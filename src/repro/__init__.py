"""repro — reproduction of EC-FRM (Fu, Shu, Shen; ICPP 2015).

An erasure coding framework that re-deploys the elements of existing
single-row codes (Reed-Solomon, Azure LRC, ...) so that reads — normal and
degraded — spread across *all* disks instead of only the data disks.

Public API highlights
---------------------
* :func:`open_cluster` — one-call facade: a sharded, optionally cached
  (hot-tier), fault-injected, recovery-enabled :class:`ClusterService`;
* :func:`open_store` — its single-volume sibling: a wired, optionally
  traced :class:`ReadService` over a fresh :class:`BlockStore`;
* :class:`repro.codes.ReedSolomonCode`, :class:`repro.codes.LocalReconstructionCode`
  — the candidate codes;
* :class:`repro.frm.FRMCode` — the EC-FRM transformation of any candidate;
* :mod:`repro.layout` — standard / rotated / EC-FRM placement strategies;
* :mod:`repro.disks` — the calibrated disk-array simulator;
* :mod:`repro.engine` — normal and degraded read planning and execution;
* :mod:`repro.store` — a functional byte store for end-to-end verification;
* :mod:`repro.obs` — tracing, histograms and the unified metrics registry;
* :mod:`repro.harness` — the experiment harness regenerating every figure
  and table of the paper (see EXPERIMENTS.md).
"""

from . import (
    analysis,
    cache,
    cluster,
    codes,
    disks,
    engine,
    faults,
    frm,
    gf,
    harness,
    layout,
    migrate,
    net,
    obs,
    recovery,
    reliability,
    store,
    workloads,
)
from .cache import CacheConfig, CountMinSketch, HotTierCache
from .cluster import ClusterService, InjectorHandle
from .engine import (
    AdmissionController,
    HedgeConfig,
    OpenLoopResult,
    OpenLoopWorkload,
    PlanCache,
    ReadService,
    RequestPipeline,
    UnsupportedFailurePatternError,
)
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    StragglerDetector,
)
from .migrate import MigrationJournal, Migrator, plan_migration, resume_migration
from .net import InvalidTopologyError, Topology
from .obs import SCHEMA_VERSION, Histogram, MetricsRegistry, Tracer
from .store import BlockStore, Scrubber

__version__ = "1.5.0"


def open_store(
    code,
    layout="ec-frm",
    *,
    element_size=4096,
    disk_model=None,
    tracing=False,
    tracer=None,
    registry=None,
    cache=None,
    cache_capacity=256,
    topology=None,
):
    """Open a fresh erasure-coded store and return its read service.

    The facade wires the full stack — :class:`BlockStore` over a
    :class:`repro.disks.DiskArray`, fronted by a :class:`ReadService` with
    a plan cache — and threads a single tracer/registry pair through every
    layer, so ``svc.metrics()`` returns the complete namespaced snapshot
    (``service.* / cache.* / disks.* / health.*``).

    Parameters
    ----------
    code:
        An :class:`repro.codes.ErasureCode` instance, or a code spec
        string such as ``"rs-6-3"`` or ``"lrc-6-2-2"``.
    layout:
        Placement form name (``"standard"``, ``"rotated"``, ``"ec-frm"``)
        or a pre-built :class:`repro.layout.Placement`.
    element_size:
        Bytes per stripe element.
    disk_model:
        Disk service model; the calibrated Savvio 10K.3 preset when
        omitted.
    tracing:
        When True, create an enabled :class:`Tracer` (unless ``tracer``
        is given) so per-request spans and the latency breakdown are
        recorded.  Off by default: the disabled tracer adds no overhead.
    tracer / registry:
        Pre-built observability objects to share across stores; fresh
        ones are created when omitted (registry always, tracer only if
        ``tracing``).
    cache / cache_capacity:
        Plan cache to share, or the capacity of the private one.
    topology:
        Rack topology for the array: a :class:`repro.net.Topology` or a
        spec string (``"flat"``, ``"racks:3"``, or an explicit comma
        list like ``"0,0,1,1,2"``).  When set, degraded reads and
        rebuilds use minimum-transfer repair planning, makespans include
        network shipping time, and ``net.*`` metrics are published.

    Returns
    -------
    ReadService
        Use ``svc.store`` for the block store, ``svc.store.array`` for
        failure control, ``svc.tracer`` / ``svc.registry`` for the
        observability plane.
    """
    from .disks.presets import SAVVIO_10K3

    if isinstance(code, str):
        code = codes.parse_code_spec(code)
    if tracer is None and tracing:
        tracer = Tracer(enabled=True)
    if registry is None:
        registry = MetricsRegistry()
    bs = BlockStore(
        code,
        layout,
        element_size=element_size,
        disk_model=disk_model if disk_model is not None else SAVVIO_10K3,
        tracer=tracer,
        registry=registry,
        topology=topology,
    )
    return ReadService(bs, cache=cache, cache_capacity=cache_capacity)


def open_cluster(
    code,
    *,
    shards=2,
    map="hash-ring",
    layout="ec-frm",
    element_size=4096,
    disk_model=None,
    cache=None,
    tracing=False,
    tracer=None,
    registry=None,
    map_seed=0,
    vnodes=96,
    plan_cache_capacity=256,
    faults=None,
    fault_seed=0,
    recovery=None,
    topology=None,
):
    """Open a sharded erasure-coded cluster — the one documented way to
    stand up a cached, fault-injected, recovery-enabled
    :class:`ClusterService`.

    Mirrors :func:`open_store` one level up: ``S`` independent volumes
    behind a scatter-gather frontend, optionally fronted by the hot-tier
    replica cache, with fault schedules attached and the autonomous
    recovery plane enabled — all from one call, with one tracer/registry
    pair threaded through every layer so ``cluster.metrics()`` returns
    the full namespaced snapshot (``cluster. / cache. / recovery. /
    service.``).

    Parameters
    ----------
    code:
        An :class:`repro.codes.ErasureCode` instance, or a code spec
        string such as ``"rs-6-3"`` or ``"lrc-6-2-2"``.
    shards / map / map_seed / vnodes:
        Cluster geometry: shard count and stripe→shard map
        (``"hash-ring"`` / ``"round-robin"`` by name, or a pre-built
        :class:`repro.cluster.ShardMap`, which knows its own count).
    layout:
        Placement form every shard's store uses (``"standard"``,
        ``"rotated"``, ``"ec-frm"``).
    element_size / disk_model:
        Per-volume store geometry, as for :func:`open_store`.
    cache:
        The hot tier: ``True`` for a default
        :class:`repro.cache.CacheConfig`, a config or pre-built
        :class:`repro.cache.HotTierCache` to use as given, ``None``
        (default) for no tier.
    tracing / tracer / registry:
        Observability plane, as for :func:`open_store`.
    plan_cache_capacity:
        Per-shard plan-cache capacity.
    faults:
        Shard-targeted fault schedules: a mapping ``{shard:
        FaultSchedule}``, or a single
        :class:`repro.faults.FaultSchedule` for shard 0 (the
        degraded-on-one-shard regime).  Handles are on
        ``cluster._injectors``; each supports ``.detach()``.
    fault_seed:
        Seed for the attached injectors.
    recovery:
        Enable the autonomous recovery plane: a journal directory
        (``str`` / ``Path``), or a dict of
        :meth:`ClusterService.enable_recovery` keyword arguments with a
        ``"journal_dir"`` key (``spares``, ``detector_config``,
        ``unit_rows``, ``steps_per_tick``, ``budget_per_step``).
    topology:
        Rack topology shared by every shard's array: a
        :class:`repro.net.Topology` or a spec string, as for
        :func:`open_store`.  Enables minimum-transfer repair planning on
        each shard and the cluster-wide ``net.*`` metrics rollup.

    Returns
    -------
    ClusterService
        Use ``cluster.volumes`` for the shards, ``cluster.metrics()``
        for the rolled-up snapshot, ``cluster.orchestrators`` for the
        recovery planes.
    """
    from pathlib import Path

    from .disks.presets import SAVVIO_10K3

    if isinstance(code, str):
        code = codes.parse_code_spec(code)
    if tracer is None and tracing:
        tracer = Tracer(enabled=True)
    if registry is None:
        registry = MetricsRegistry()
    if cache is True:
        cache = CacheConfig()
    elif cache is False:
        cache = None
    svc = ClusterService(
        code,
        shards=shards,
        map=map,
        form=layout,
        element_size=element_size,
        disk_model=disk_model if disk_model is not None else SAVVIO_10K3,
        tracer=tracer,
        registry=registry,
        map_seed=map_seed,
        vnodes=vnodes,
        cache_capacity=plan_cache_capacity,
        cache=cache,
        topology=topology,
    )
    if recovery is not None:
        if isinstance(recovery, (str, Path)):
            svc.enable_recovery(recovery)
        else:
            opts = dict(recovery)
            journal_dir = opts.pop("journal_dir")
            svc.enable_recovery(journal_dir, **opts)
    if faults is not None:
        schedules = faults if isinstance(faults, dict) else {0: faults}
        for shard, schedule in schedules.items():
            svc.attach_injector(shard, schedule, seed=fault_seed)
    return svc


__all__ = [
    "analysis",
    "cache",
    "cluster",
    "codes",
    "disks",
    "engine",
    "faults",
    "frm",
    "gf",
    "harness",
    "layout",
    "migrate",
    "net",
    "obs",
    "recovery",
    "reliability",
    "store",
    "workloads",
    "open_store",
    "open_cluster",
    "BlockStore",
    "ClusterService",
    "InjectorHandle",
    "CacheConfig",
    "HotTierCache",
    "CountMinSketch",
    "ReadService",
    "PlanCache",
    "UnsupportedFailurePatternError",
    "OpenLoopWorkload",
    "AdmissionController",
    "HedgeConfig",
    "RequestPipeline",
    "OpenLoopResult",
    "Scrubber",
    "FaultInjector",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "StragglerDetector",
    "Migrator",
    "MigrationJournal",
    "plan_migration",
    "resume_migration",
    "Topology",
    "InvalidTopologyError",
    "Tracer",
    "MetricsRegistry",
    "Histogram",
    "SCHEMA_VERSION",
    "__version__",
]
