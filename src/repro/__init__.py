"""repro — reproduction of EC-FRM (Fu, Shu, Shen; ICPP 2015).

An erasure coding framework that re-deploys the elements of existing
single-row codes (Reed-Solomon, Azure LRC, ...) so that reads — normal and
degraded — spread across *all* disks instead of only the data disks.

Public API highlights
---------------------
* :class:`repro.codes.ReedSolomonCode`, :class:`repro.codes.LocalReconstructionCode`
  — the candidate codes;
* :class:`repro.frm.FRMCode` — the EC-FRM transformation of any candidate;
* :mod:`repro.layout` — standard / rotated / EC-FRM placement strategies;
* :mod:`repro.disks` — the calibrated disk-array simulator;
* :mod:`repro.engine` — normal and degraded read planning and execution;
* :mod:`repro.store` — a functional byte store for end-to-end verification;
* :mod:`repro.harness` — the experiment harness regenerating every figure
  and table of the paper (see EXPERIMENTS.md).
"""

from . import (
    analysis,
    codes,
    disks,
    engine,
    faults,
    frm,
    gf,
    harness,
    layout,
    recovery,
    reliability,
    store,
    workloads,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "codes",
    "disks",
    "engine",
    "faults",
    "frm",
    "gf",
    "harness",
    "layout",
    "recovery",
    "reliability",
    "store",
    "workloads",
    "__version__",
]
