"""repro — reproduction of EC-FRM (Fu, Shu, Shen; ICPP 2015).

An erasure coding framework that re-deploys the elements of existing
single-row codes (Reed-Solomon, Azure LRC, ...) so that reads — normal and
degraded — spread across *all* disks instead of only the data disks.

Public API highlights
---------------------
* :func:`open_store` — one-call facade: a wired, optionally traced
  :class:`ReadService` over a fresh :class:`BlockStore`;
* :class:`repro.codes.ReedSolomonCode`, :class:`repro.codes.LocalReconstructionCode`
  — the candidate codes;
* :class:`repro.frm.FRMCode` — the EC-FRM transformation of any candidate;
* :mod:`repro.layout` — standard / rotated / EC-FRM placement strategies;
* :mod:`repro.disks` — the calibrated disk-array simulator;
* :mod:`repro.engine` — normal and degraded read planning and execution;
* :mod:`repro.store` — a functional byte store for end-to-end verification;
* :mod:`repro.obs` — tracing, histograms and the unified metrics registry;
* :mod:`repro.harness` — the experiment harness regenerating every figure
  and table of the paper (see EXPERIMENTS.md).
"""

from . import (
    analysis,
    cluster,
    codes,
    disks,
    engine,
    faults,
    frm,
    gf,
    harness,
    layout,
    migrate,
    obs,
    recovery,
    reliability,
    store,
    workloads,
)
from .cluster import ClusterService
from .engine import (
    AdmissionController,
    HedgeConfig,
    OpenLoopResult,
    OpenLoopWorkload,
    PlanCache,
    ReadService,
    RequestPipeline,
    UnsupportedFailurePatternError,
)
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    StragglerDetector,
)
from .migrate import MigrationJournal, Migrator, plan_migration, resume_migration
from .obs import SCHEMA_VERSION, Histogram, MetricsRegistry, Tracer
from .store import BlockStore, Scrubber

__version__ = "1.3.0"


def open_store(
    code,
    layout="ec-frm",
    *,
    element_size=4096,
    disk_model=None,
    tracing=False,
    tracer=None,
    registry=None,
    cache=None,
    cache_capacity=256,
):
    """Open a fresh erasure-coded store and return its read service.

    The facade wires the full stack — :class:`BlockStore` over a
    :class:`repro.disks.DiskArray`, fronted by a :class:`ReadService` with
    a plan cache — and threads a single tracer/registry pair through every
    layer, so ``svc.metrics()`` returns the complete namespaced snapshot
    (``service.* / cache.* / disks.* / health.*``).

    Parameters
    ----------
    code:
        An :class:`repro.codes.ErasureCode` instance, or a code spec
        string such as ``"rs-6-3"`` or ``"lrc-6-2-2"``.
    layout:
        Placement form name (``"standard"``, ``"rotated"``, ``"ec-frm"``)
        or a pre-built :class:`repro.layout.Placement`.
    element_size:
        Bytes per stripe element.
    disk_model:
        Disk service model; the calibrated Savvio 10K.3 preset when
        omitted.
    tracing:
        When True, create an enabled :class:`Tracer` (unless ``tracer``
        is given) so per-request spans and the latency breakdown are
        recorded.  Off by default: the disabled tracer adds no overhead.
    tracer / registry:
        Pre-built observability objects to share across stores; fresh
        ones are created when omitted (registry always, tracer only if
        ``tracing``).
    cache / cache_capacity:
        Plan cache to share, or the capacity of the private one.

    Returns
    -------
    ReadService
        Use ``svc.store`` for the block store, ``svc.store.array`` for
        failure control, ``svc.tracer`` / ``svc.registry`` for the
        observability plane.
    """
    from .disks.presets import SAVVIO_10K3

    if isinstance(code, str):
        code = codes.parse_code_spec(code)
    if tracer is None and tracing:
        tracer = Tracer(enabled=True)
    if registry is None:
        registry = MetricsRegistry()
    bs = BlockStore(
        code,
        layout,
        element_size=element_size,
        disk_model=disk_model if disk_model is not None else SAVVIO_10K3,
        tracer=tracer,
        registry=registry,
    )
    return ReadService(bs, cache=cache, cache_capacity=cache_capacity)


__all__ = [
    "analysis",
    "cluster",
    "codes",
    "disks",
    "engine",
    "faults",
    "frm",
    "gf",
    "harness",
    "layout",
    "migrate",
    "obs",
    "recovery",
    "reliability",
    "store",
    "workloads",
    "open_store",
    "BlockStore",
    "ClusterService",
    "ReadService",
    "PlanCache",
    "UnsupportedFailurePatternError",
    "OpenLoopWorkload",
    "AdmissionController",
    "HedgeConfig",
    "RequestPipeline",
    "OpenLoopResult",
    "Scrubber",
    "FaultInjector",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "StragglerDetector",
    "Migrator",
    "MigrationJournal",
    "plan_migration",
    "resume_migration",
    "Tracer",
    "MetricsRegistry",
    "Histogram",
    "SCHEMA_VERSION",
    "__version__",
]
