"""Sharded multi-volume cluster layer.

Places whole candidate stripes across ``S`` independent
:class:`~repro.store.blockstore.BlockStore` volumes through a
deterministic stripe→shard map and serves byte-range reads through a
scatter-gather :class:`ClusterService` frontend — degraded shards,
shard-targeted fault injection, cluster-rolled-up metrics,
journal-backed stripe rebalancing, and crash-safe shard-failure drain
recovery included.

* :mod:`repro.cluster.shardmap` — :class:`HashRingMap` (consistent
  hashing, virtual nodes, stable under shard addition),
  :class:`RoundRobinMap` (balanced baseline, rebalance-excluded), and
  :class:`D3Map` (deterministic data distribution: exact read balance
  *and* ±1-stripe recovery spread across survivors on any
  single-shard failure, stable 1/(S+1) growth);
* :mod:`repro.cluster.service` — :class:`ClusterService` and the
  per-shard plumbing (:class:`ShardVolume`, :class:`ShardTracer`);
* :mod:`repro.cluster.rebalance` — crash-safe stripe moves onto a new
  shard and verified shard drains, reusing the migration write-ahead
  journal.
"""

from .rebalance import (
    RebalanceCrash,
    RebalanceReport,
    RecoveryVerifyError,
    ShardRecoveryReport,
    run_rebalance,
)
from .service import (
    ClusterCounters,
    ClusterReadResult,
    ClusterService,
    InjectorHandle,
    RebalanceUnsupportedError,
    ShardTracer,
    ShardVolume,
)
from .shardmap import D3Map, HashRingMap, RoundRobinMap, ShardMap, make_shard_map

__all__ = [
    "ShardMap",
    "D3Map",
    "HashRingMap",
    "RoundRobinMap",
    "make_shard_map",
    "ClusterService",
    "ClusterReadResult",
    "ClusterCounters",
    "InjectorHandle",
    "ShardVolume",
    "ShardTracer",
    "RebalanceCrash",
    "RebalanceReport",
    "RebalanceUnsupportedError",
    "RecoveryVerifyError",
    "ShardRecoveryReport",
    "run_rebalance",
]
