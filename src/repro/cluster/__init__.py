"""Sharded multi-volume cluster layer.

Places whole candidate stripes across ``S`` independent
:class:`~repro.store.blockstore.BlockStore` volumes through a
deterministic stripe→shard map and serves byte-range reads through a
scatter-gather :class:`ClusterService` frontend — degraded shards,
shard-targeted fault injection, cluster-rolled-up metrics, and
journal-backed stripe rebalancing included.

* :mod:`repro.cluster.shardmap` — :class:`HashRingMap` (consistent
  hashing, virtual nodes, stable under shard addition) and
  :class:`RoundRobinMap` (balanced baseline, rebalance-excluded);
* :mod:`repro.cluster.service` — :class:`ClusterService` and the
  per-shard plumbing (:class:`ShardVolume`, :class:`ShardTracer`);
* :mod:`repro.cluster.rebalance` — crash-safe stripe moves onto a new
  shard, reusing the migration write-ahead journal.
"""

from .rebalance import RebalanceCrash, RebalanceReport, run_rebalance
from .service import (
    ClusterCounters,
    ClusterReadResult,
    ClusterService,
    InjectorHandle,
    RebalanceUnsupportedError,
    ShardTracer,
    ShardVolume,
)
from .shardmap import HashRingMap, RoundRobinMap, ShardMap, make_shard_map

__all__ = [
    "ShardMap",
    "HashRingMap",
    "RoundRobinMap",
    "make_shard_map",
    "ClusterService",
    "ClusterReadResult",
    "ClusterCounters",
    "InjectorHandle",
    "ShardVolume",
    "ShardTracer",
    "RebalanceCrash",
    "RebalanceReport",
    "RebalanceUnsupportedError",
    "run_rebalance",
]
