"""Sharded multi-volume cluster: stripes spread across independent volumes.

EC-FRM's row-major placement spreads one volume's reads across all ``n``
disks of *its* array; this module scales the same idea out.  A
:class:`ClusterService` places whole candidate stripes across ``S``
independent :class:`~repro.store.blockstore.BlockStore` volumes — each
with its own :class:`~repro.disks.array.DiskArray`, placement and
:class:`~repro.engine.service.ReadService` — via a deterministic
stripe→shard map (:mod:`repro.cluster.shardmap`), and serves byte-range
reads by splitting them at stripe boundaries, fanning the pieces out to
the owning shards' services, and reassembling byte-correct results.

Faults stay shard-local: a crashed disk degrades reads on its shard only
(that shard's service replans and reconstructs as usual) while every
other shard serves clean — the cluster-level analogue of the paper's
single-failure story.  Per-shard metrics registries roll up into a
``cluster.`` namespace carrying the cluster-wide load-imbalance statistic
(max/mean disk busy time, the Figure 8/9 metric lifted to the cluster),
tracer spans carry a ``shard`` attribute, fault schedules can target an
individual shard (:meth:`ClusterService.attach_injector`), and
:meth:`ClusterService.add_shard` rebalances stripes onto a new shard with
the migration journal providing crash safety.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from ..codes.base import ErasureCode
from ..disks.model import DiskModel
from ..disks.presets import SAVVIO_10K3
from ..engine.service import BatchReadResult, ReadService
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..store.blockstore import BlockStore
from .rebalance import RebalanceReport, run_rebalance
from .shardmap import ShardMap, make_shard_map

if TYPE_CHECKING:  # pragma: no cover - optional collaborators
    from ..faults import FaultInjector, FaultSchedule
    from ..migrate.journal import MigrationJournal
    from ..recovery import DetectorConfig, RecoveryOrchestrator

__all__ = [
    "RebalanceUnsupportedError",
    "ShardTracer",
    "ShardVolume",
    "ClusterCounters",
    "ClusterReadResult",
    "ClusterService",
]


class RebalanceUnsupportedError(ValueError):
    """Raised by :meth:`ClusterService.add_shard` on an unstable map.

    Subclasses :class:`ValueError` so existing callers (including the CLI's
    ``add-shard refused`` path) keep working; carries the offending
    :class:`~repro.cluster.shardmap.ShardMap` so programmatic callers can
    switch maps instead of string-matching the message.
    """

    def __init__(self, map: ShardMap) -> None:
        self.map = map
        super().__init__(
            f"{map.name} map ({type(map).__name__}) does not support "
            "rebalancing (adding a shard would remap ~S/(S+1) of all "
            "stripes); use hash-ring"
        )


class ShardTracer:
    """A shard-tagging view of a shared :class:`~repro.obs.Tracer`.

    Every span the shard's store and service emit through this view
    carries a ``shard`` attribute, so one cluster-wide trace can be
    filtered per shard.  Duck-typed to the tracer surface the read path
    uses (``enabled`` / ``request`` / ``span`` / ``record`` / ``point`` /
    ``breakdown``); disabled parents stay zero-overhead because every
    call forwards to the parent's own enabled check.
    """

    __slots__ = ("_parent", "shard")

    def __init__(self, parent: Tracer, shard: int) -> None:
        self._parent = parent
        self.shard = shard

    @property
    def enabled(self) -> bool:
        return self._parent.enabled

    @property
    def spans(self):
        return self._parent.spans

    def request(self, name: str = "read", **attrs: Any):
        return self._parent.request(name, shard=self.shard, **attrs)

    def span(self, name: str, **attrs: Any):
        return self._parent.span(name, shard=self.shard, **attrs)

    def record(
        self, name: str, duration_s: float, *, clock: str = "sim", **attrs: Any
    ) -> None:
        self._parent.record(
            name, duration_s, clock=clock, shard=self.shard, **attrs
        )

    def point(self, name: str, **attrs: Any) -> None:
        self._parent.point(name, shard=self.shard, **attrs)

    def breakdown(self, **kwargs: Any) -> dict:
        return self._parent.breakdown(**kwargs)


@dataclass(frozen=True)
class ShardVolume:
    """One shard: an independent store + service + metrics registry."""

    shard_id: int
    store: BlockStore
    service: ReadService
    registry: MetricsRegistry


@dataclass
class ClusterCounters:
    """Cumulative cluster-frontend counters."""

    requests: int = 0
    batches: int = 0
    bytes_served: int = 0
    #: requests whose byte range crossed at least one shard boundary.
    spanning_reads: int = 0
    #: sub-reads fanned out, per shard id.
    sub_reads: dict[int, int] = field(default_factory=dict)
    rebalances: int = 0
    stripes_moved: int = 0


@dataclass(frozen=True)
class ClusterReadResult:
    """Outcome of one :meth:`ClusterService.submit` batch.

    Attributes
    ----------
    payloads:
        The requested byte ranges, submission order, byte-exact.
    shard_results:
        The per-shard :class:`BatchReadResult` of every shard that served
        at least one sub-read, keyed by shard id.
    makespan_s:
        Cluster batch wall-clock on the simulated clock: shards run in
        parallel, so this is the *max* of the per-shard makespans.
        ``None`` when any shard served through the plan-less
        multi-failure fallback (no closed-loop timing exists for it).
    bytes_served:
        Total payload bytes across the batch.
    """

    payloads: list[bytes]
    shard_results: dict[int, BatchReadResult]
    makespan_s: float | None
    bytes_served: int

    @property
    def throughput_mib_s(self) -> float | None:
        """Aggregate cluster throughput in MiB/s (None if untimed)."""
        if not self.makespan_s:
            return None
        return self.bytes_served / self.makespan_s / (1024 * 1024)


class ClusterService:
    """Byte-range read/write frontend over ``S`` sharded volumes.

    Parameters
    ----------
    code:
        The erasure code every volume uses.
    shards:
        Number of shards (ignored when ``map`` is a pre-built
        :class:`ShardMap`, which knows its own count).
    map:
        Shard-map name (``"hash-ring"`` / ``"round-robin"``) or instance.
    form:
        Placement form for every shard's store.
    element_size / disk_model:
        Per-volume store geometry, as for :class:`BlockStore`.
    tracer:
        Cluster-wide tracer; each shard sees it through a
        :class:`ShardTracer`, so every span carries its shard id.
    registry:
        Cluster-level registry the ``cluster`` namespace collector is
        registered into (fresh when omitted).  Each shard additionally
        keeps its own private registry — see :meth:`shard_metrics`.
    map_seed / vnodes:
        Hash-ring parameters when ``map`` is given by name.
    cache_capacity:
        Per-shard plan-cache capacity (caches are per shard: plans embed
        per-volume failure signatures, which shards don't share).
    """

    def __init__(
        self,
        code: ErasureCode,
        *,
        shards: int = 2,
        map: str | ShardMap = "hash-ring",
        form: str = "ec-frm",
        element_size: int = 1024,
        disk_model: DiskModel = SAVVIO_10K3,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        map_seed: int = 0,
        vnodes: int = 96,
        cache_capacity: int = 256,
    ) -> None:
        self.code = code
        self.map = (
            map
            if isinstance(map, ShardMap)
            else make_shard_map(map, shards, vnodes=vnodes, seed=map_seed)
        )
        self.form = form
        self.element_size = element_size
        self.disk_model = disk_model
        self.cache_capacity = cache_capacity
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry if registry is not None else MetricsRegistry()
        self.volumes: list[ShardVolume] = [
            self._new_volume(sid) for sid in range(self.map.num_shards)
        ]
        self.counters = ClusterCounters()
        self._pending = bytearray()
        self._user_bytes = 0
        #: global stripe id -> (shard id, local row on that shard's store).
        #: Reads route through this table, not the map, so rebalancing can
        #: flip entries one stripe at a time without a stale-read window.
        self._locations: list[tuple[int, int]] = []
        #: physical (start, length) of flush-inserted zero-pad runs in the
        #: cluster's stripe-space byte stream (same scheme as BlockStore).
        self._pad_runs: list[tuple[int, int]] = []
        #: orphaned source rows left behind by rebalance moves, per shard.
        self.garbage_rows: dict[int, int] = {}
        self._injectors: list["FaultInjector"] = []
        #: per-shard recovery planes, populated by :meth:`enable_recovery`.
        self.orchestrators: list["RecoveryOrchestrator"] = []
        self.registry.register_collector("cluster", self.stats_snapshot)

    def _new_volume(self, shard_id: int) -> ShardVolume:
        registry = MetricsRegistry()
        tracer = ShardTracer(self.tracer, shard_id)
        store = BlockStore(
            self.code,
            self.form,
            element_size=self.element_size,
            disk_model=self.disk_model,
            tracer=tracer,  # duck-typed tracer view
            registry=registry,
        )
        service = ReadService(store, cache_capacity=self.cache_capacity)
        return ShardVolume(
            shard_id=shard_id, store=store, service=service, registry=registry
        )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Shards currently in the cluster."""
        return len(self.volumes)

    @property
    def stripe_bytes(self) -> int:
        """User bytes per stripe — the placement and read-split unit."""
        return self.code.k * self.element_size

    @property
    def stripes_written(self) -> int:
        """Stripes durably placed across the cluster."""
        return len(self._locations)

    @property
    def user_bytes(self) -> int:
        """Durable bytes appended, excluding cluster flush padding."""
        return self._user_bytes

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a full stripe."""
        return len(self._pending)

    def locate_stripe(self, stripe: int) -> tuple[int, int]:
        """Current ``(shard id, local row)`` of global stripe ``stripe``."""
        return self._locations[stripe]

    def stripes_per_shard(self) -> dict[int, int]:
        """Live stripe count per shard (moved-away stripes excluded)."""
        out = {vol.shard_id: 0 for vol in self.volumes}
        for sid, _ in self._locations:
            out[sid] += 1
        return out

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, data: bytes) -> int:
        """Append bytes; each completed stripe is placed on its shard.

        Returns the logical offset at which ``data`` begins (flush padding
        excluded), directly usable with :meth:`read` — the same contract
        as :meth:`BlockStore.append`.
        """
        offset = self._user_bytes + len(self._pending)
        self._pending.extend(data)
        sb = self.stripe_bytes
        while len(self._pending) >= sb:
            chunk = bytes(self._pending[:sb])
            del self._pending[:sb]
            self._place_stripe(chunk, user_len=sb)
        return offset

    def flush(self) -> None:
        """Zero-pad and place any partial pending stripe.

        Pad bytes are durable on the owning shard but invisible to the
        cluster's logical stream, exactly like :meth:`BlockStore.flush`.
        """
        if self._pending:
            pending_len = len(self._pending)
            sb = self.stripe_bytes
            pad_start = len(self._locations) * sb + pending_len
            self._pad_runs.append((pad_start, sb - pending_len))
            chunk = bytes(self._pending).ljust(sb, b"\0")
            self._pending.clear()
            self._place_stripe(chunk, user_len=pending_len)

    def _place_stripe(self, chunk: bytes, user_len: int) -> None:
        g = len(self._locations)
        sid = self.map.shard_of(g)
        vol = self.volumes[sid]
        local_row = vol.store.rows_written
        vol.store.append(chunk)  # exactly one full row: flushes immediately
        self._locations.append((sid, local_row))
        self._user_bytes += user_len

    def apply_move(
        self, stripe: int, target: int, data_elems: Sequence[bytes]
    ) -> None:
        """Rebalance write point: land ``stripe`` on shard ``target``.

        Appends the stripe's data payloads to the target store (parity is
        re-encoded there) and flips the location entry; the source copy
        becomes garbage.  Called by :func:`repro.cluster.rebalance.
        run_rebalance` — one location flip per move keeps concurrent
        reads byte-correct throughout.
        """
        sid_old, _ = self._locations[stripe]
        tvol = self.volumes[target]
        local_row = tvol.store.rows_written
        tvol.store.append(b"".join(data_elems))
        self._locations[stripe] = (target, local_row)
        self.garbage_rows[sid_old] = self.garbage_rows.get(sid_old, 0) + 1
        self.counters.stripes_moved += 1

    # ------------------------------------------------------------------
    # logical <-> physical translation (cluster pad runs)
    # ------------------------------------------------------------------
    def _logical_to_physical(self, offset: int) -> int:
        phys = offset
        for pad_start, pad_len in self._pad_runs:
            if phys >= pad_start:
                phys += pad_len
            else:
                break
        return phys

    def _excise_padding(self, buf: bytes, phys_start: int) -> bytes:
        end = phys_start + len(buf)
        pieces: list[bytes] = []
        cursor = phys_start
        for pad_start, pad_len in self._pad_runs:
            pad_end = pad_start + pad_len
            if pad_end <= cursor:
                continue
            if pad_start >= end:
                break
            if pad_start > cursor:
                pieces.append(buf[cursor - phys_start : pad_start - phys_start])
            cursor = min(pad_end, end)
        if cursor < end:
            pieces.append(buf[cursor - phys_start :])
        return b"".join(pieces)

    def _split_physical(
        self, phys_start: int, phys_len: int
    ) -> list[tuple[int, int, int]]:
        """Split a physical byte window into per-shard local sub-ranges.

        Returns ``[(shard id, local offset, length), ...]`` in stream
        order — one piece per stripe touched (shard stores never pad, so
        local offsets are plain ``row * stripe_bytes`` arithmetic).
        """
        sb = self.stripe_bytes
        end = phys_start + phys_len
        pieces: list[tuple[int, int, int]] = []
        for g in range(phys_start // sb, (end - 1) // sb + 1):
            lo = max(phys_start, g * sb)
            hi = min(end, (g + 1) * sb)
            sid, local_row = self._locations[g]
            pieces.append((sid, local_row * sb + (lo - g * sb), hi - lo))
        return pieces

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at logical ``offset``, shard-transparent."""
        return self.submit([(offset, length)], queue_depth=1).payloads[0]

    def submit(
        self,
        ranges: Sequence[tuple[int, int]],
        queue_depth: int = 8,
        *,
        max_retries: int = 3,
    ) -> ClusterReadResult:
        """Serve a batch of byte ranges across the cluster.

        Each range is split at stripe boundaries into per-shard sub-reads;
        every touched shard serves its sub-batch through its own
        :class:`ReadService` (plan cache, closed-loop timing, degraded
        replan, bounded fault retries — all per shard), and the pieces are
        reassembled in submission order.  Shards are independent arrays,
        so the batch's simulated wall-clock is the slowest shard's.
        """
        if not ranges:
            raise ValueError("empty batch")
        per_shard: dict[int, list[tuple[int, int]]] = {}
        layout: list[list[tuple[int, int]]] = []
        phys_starts: list[int] = []
        for offset, length in ranges:
            if offset < 0 or length <= 0:
                raise ValueError(
                    f"invalid byte range offset={offset} length={length}"
                )
            if offset + length > self._user_bytes:
                raise ValueError(
                    f"range [{offset}, {offset + length}) beyond stored "
                    f"{self._user_bytes} user bytes (flush() pending data "
                    "first)"
                )
            phys_first = self._logical_to_physical(offset)
            phys_last = self._logical_to_physical(offset + length - 1)
            phys_starts.append(phys_first)
            pieces = self._split_physical(phys_first, phys_last - phys_first + 1)
            slots: list[tuple[int, int]] = []
            for sid, local_off, piece_len in pieces:
                bucket = per_shard.setdefault(sid, [])
                slots.append((sid, len(bucket)))
                bucket.append((local_off, piece_len))
            layout.append(slots)
            touched = {sid for sid, _ in slots}
            if len(touched) > 1:
                self.counters.spanning_reads += 1

        shard_results: dict[int, BatchReadResult] = {}
        for sid in sorted(per_shard):
            vol = self.volumes[sid]
            with self.tracer.span(
                "shard_fanout", shard=sid, sub_reads=len(per_shard[sid])
            ):
                shard_results[sid] = vol.service.submit(
                    per_shard[sid], queue_depth, max_retries=max_retries
                )
            self.counters.sub_reads[sid] = self.counters.sub_reads.get(
                sid, 0
            ) + len(per_shard[sid])

        payloads: list[bytes] = []
        for i, (offset, length) in enumerate(ranges):
            joined = b"".join(
                shard_results[sid].payloads[j] for sid, j in layout[i]
            )
            logical = self._excise_padding(joined, phys_starts[i])
            assert len(logical) == length, (
                f"range {i}: reassembled {len(logical)} bytes, wanted {length}"
            )
            payloads.append(logical)

        makespan: float | None = 0.0
        for result in shard_results.values():
            if result.throughput is None:
                makespan = None
                break
            makespan = max(makespan, result.throughput.makespan_s)
        nbytes = sum(len(p) for p in payloads)
        self.counters.requests += len(ranges)
        self.counters.batches += 1
        self.counters.bytes_served += nbytes
        return ClusterReadResult(
            payloads=payloads,
            shard_results=shard_results,
            makespan_s=makespan,
            bytes_served=nbytes,
        )

    def submit_open_loop(self, arrivals, **pipeline_kwargs):
        """Drive an open-loop arrival process across the cluster.

        ``arrivals`` is an iterable of ``(arrival_s, offset, length)``
        logical byte reads (e.g. an
        :class:`~repro.engine.pipeline.OpenLoopWorkload` over
        :attr:`user_bytes`).  Each arrival is split at stripe boundaries
        into per-shard pieces, and the whole process runs through one
        :class:`~repro.engine.pipeline.RequestPipeline` spanning every
        shard's service — asynchronous scatter-gather: a spanning read's
        pieces queue on their shards *concurrently*, and the request
        completes when the slowest piece does.  Admission, coalescing and
        hedging apply per piece exactly as on a single volume; remaining
        keyword arguments go to the pipeline constructor.  Returns the
        run's :class:`~repro.engine.pipeline.OpenLoopResult` (payloads in
        arrival order when materializing, reassembled and pad-excised).
        """
        from ..engine.pipeline import RequestPipeline

        jobs: list[tuple[float, list[tuple[int, int, int]]]] = []
        metas: list[tuple[int, int]] = []
        for arrival_s, offset, length in arrivals:
            if offset < 0 or length <= 0:
                raise ValueError(
                    f"invalid byte range offset={offset} length={length}"
                )
            if offset + length > self._user_bytes:
                raise ValueError(
                    f"range [{offset}, {offset + length}) beyond stored "
                    f"{self._user_bytes} user bytes (flush() pending data "
                    "first)"
                )
            phys_first = self._logical_to_physical(offset)
            phys_last = self._logical_to_physical(offset + length - 1)
            pieces = self._split_physical(
                phys_first, phys_last - phys_first + 1
            )
            jobs.append((arrival_s, pieces))
            metas.append((phys_first, length))
            if len({sid for sid, _, _ in pieces}) > 1:
                self.counters.spanning_reads += 1
            for sid, _, _ in pieces:
                self.counters.sub_reads[sid] = (
                    self.counters.sub_reads.get(sid, 0) + 1
                )

        def assemble(meta: tuple[int, int], parts: list[bytes]) -> bytes:
            phys_start, want = meta
            logical = self._excise_padding(b"".join(parts), phys_start)
            assert len(logical) == want, (
                f"reassembled {len(logical)} bytes, wanted {want}"
            )
            return logical

        pipe = RequestPipeline(
            [vol.service for vol in self.volumes],
            tracer=self.tracer,
            registry=self.registry,
            assemble=assemble,
            **pipeline_kwargs,
        )
        result = pipe.run_jobs(jobs, metas=metas)
        self.counters.requests += result.completed
        self.counters.batches += 1
        self.counters.bytes_served += result.bytes_served
        return result

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------
    def attach_injector(
        self, shard: int, schedule: "FaultSchedule", *, seed: int = 0
    ) -> "FaultInjector":
        """Attach a fault schedule to one shard's disk array.

        The injector's audit counters are published into that shard's
        registry (``faults`` namespace of :meth:`shard_metrics`); other
        shards are untouched, so the schedule exercises exactly the
        degraded-on-one-shard / healthy-elsewhere regime.
        """
        from ..faults import FaultInjector

        if not 0 <= shard < len(self.volumes):
            raise ValueError(f"shard {shard} out of range [0, {len(self.volumes)})")
        vol = self.volumes[shard]
        injector = FaultInjector(vol.store.array, schedule, seed=seed)
        injector.register_metrics(vol.registry)
        injector.attach()
        self._injectors.append(injector)
        return injector

    def detach_injectors(self) -> None:
        """Detach every injector attached through :meth:`attach_injector`."""
        for injector in self._injectors:
            injector.detach()
        self._injectors.clear()

    # ------------------------------------------------------------------
    # recovery plane
    # ------------------------------------------------------------------
    def enable_recovery(
        self,
        journal_dir: str | Path,
        *,
        spares: int = 1,
        detector_config: "DetectorConfig | None" = None,
        unit_rows: int = 4,
        steps_per_tick: int = 1,
    ) -> list["RecoveryOrchestrator"]:
        """Attach an autonomous recovery plane to every shard.

        One :class:`~repro.recovery.RecoveryOrchestrator` per shard —
        its own failure detector, hot-spare pool (``spares`` each) and
        throttled crash-safe rebuild executor, journaling rebuild WALs
        under ``journal_dir/shard-<id>/``.  Metrics land in each shard's
        private registry (``recovery.*`` of :meth:`shard_metrics`), and
        :meth:`stats_snapshot` rolls the plane up cluster-wide.  Shards
        added later by :meth:`add_shard` join the plane automatically.
        """
        from ..recovery import RecoveryOrchestrator

        self._recovery_config = {
            "journal_dir": Path(journal_dir),
            "spares": spares,
            "detector_config": detector_config,
            "unit_rows": unit_rows,
            "steps_per_tick": steps_per_tick,
        }
        self.orchestrators = [
            self._new_orchestrator(vol) for vol in self.volumes
        ]
        return list(self.orchestrators)

    def _new_orchestrator(self, vol: ShardVolume) -> "RecoveryOrchestrator":
        from ..recovery import RecoveryOrchestrator

        cfg = self._recovery_config
        return RecoveryOrchestrator(
            vol.store,
            journal_dir=cfg["journal_dir"] / f"shard-{vol.shard_id}",
            spares=cfg["spares"],
            detector_config=cfg["detector_config"],
            cache=vol.service.cache,
            tracer=ShardTracer(self.tracer, vol.shard_id),
            registry=vol.registry,
            unit_rows=cfg["unit_rows"],
            steps_per_tick=cfg["steps_per_tick"],
        )

    def recovery_tick(self) -> bool:
        """One heartbeat of every shard's recovery plane.

        Returns True while any shard still has recovery work (shards
        tick independently; a stuck rebuild's
        :class:`~repro.recovery.DataLossError` propagates).
        """
        busy = False
        for orch in self.orchestrators:
            busy = orch.tick() or busy
        return busy

    def run_recovery_until_idle(self, max_ticks: int = 10_000) -> int:
        """Tick all shards' planes until idle; returns ticks taken.

        Like :meth:`RecoveryOrchestrator.run_until_idle`, shards that
        are out of spares stay degraded-but-live rather than spinning.
        """
        ticks = 0
        while ticks < max_ticks:
            ticks += 1
            if not self.recovery_tick():
                return ticks
            if all(
                orch.active is None
                and (not orch.queued_disks or orch.spares.available <= 0)
                for orch in self.orchestrators
            ) and any(orch.queued_disks for orch in self.orchestrators):
                return ticks  # degraded steady-state: out of spares
        from ..recovery import RecoveryError

        raise RecoveryError(
            f"cluster recovery plane still busy after {max_ticks} ticks"
        )

    def recovery_rollup(self) -> dict:
        """Cluster-wide recovery totals plus the per-shard plane states."""
        totals = {
            "rebuilds_started": 0,
            "rebuilds_completed": 0,
            "spare_waits": 0,
            "data_loss_events": 0,
            "flaps": 0,
            "spares_available": 0,
        }
        per_shard = {}
        for vol, orch in zip(self.volumes, self.orchestrators):
            totals["rebuilds_started"] += orch.rebuilds_started
            totals["rebuilds_completed"] += orch.rebuilds_completed
            totals["spare_waits"] += orch.spare_waits
            totals["data_loss_events"] += orch.data_loss_events
            totals["flaps"] += orch.detector.flaps
            totals["spares_available"] += orch.spares.available
            per_shard[str(vol.shard_id)] = {
                "rebuilding_disk": orch.rebuilding_disk,
                "queued_disks": orch.queued_disks,
                "rebuilds_completed": orch.rebuilds_completed,
                "flaps": orch.detector.flaps,
                "spares_available": orch.spares.available,
            }
        totals["per_shard"] = per_shard
        return totals

    # ------------------------------------------------------------------
    # rebalance
    # ------------------------------------------------------------------
    def add_shard(
        self,
        *,
        journal: "MigrationJournal | None" = None,
        crash_after_moves: int | None = None,
    ) -> RebalanceReport:
        """Grow the cluster by one shard and rebalance stripes onto it.

        Only stable maps rebalance: the hash-ring's ``with_added_shard``
        moves an expected ``1/(S+1)`` of stripes, all onto the new shard;
        round-robin would move ``~S/(S+1)`` of everything and is refused.
        With ``journal``, every move is staged/committed through the
        migration WAL so a crash mid-rebalance (``crash_after_moves``
        simulates one) is recoverable via :meth:`resume_rebalance`.
        """
        if not self.map.supports_rebalance:
            raise RebalanceUnsupportedError(self.map)
        old_map = self.map
        new_map = old_map.with_added_shard()
        new_sid = old_map.num_shards
        self.volumes.append(self._new_volume(new_sid))
        if self.orchestrators:
            # the recovery plane covers new shards from their first tick
            self.orchestrators.append(self._new_orchestrator(self.volumes[-1]))
        self.map = new_map
        moved = [
            g
            for g in range(len(self._locations))
            if new_map.shard_of(g) != old_map.shard_of(g)
        ]
        if journal is not None:
            journal.write_plan(
                {
                    "kind": "cluster-rebalance",
                    "map": new_map.name,
                    "from_shards": old_map.num_shards,
                    "to_shards": new_map.num_shards,
                    "stripes": len(self._locations),
                    "windows": len(moved),
                    "moved": moved,
                    "element_size": self.element_size,
                }
            )
        committed = run_rebalance(
            self, moved, journal, crash_after_moves=crash_after_moves
        )
        self.counters.rebalances += 1
        return RebalanceReport(
            new_shard=new_sid,
            stripes_total=len(self._locations),
            stripes_moved=len(moved),
            windows_committed=committed,
        )

    def resume_rebalance(self, journal: "MigrationJournal") -> RebalanceReport:
        """Finish a crashed rebalance from its write-ahead journal.

        The cluster must already carry the new shard (``add_shard`` adds
        it before any move).  Committed windows are skipped; a pending
        staged window is re-applied from its journaled payloads — or just
        committed, if the crash hit between apply and commit — and the
        remaining moves run normally.
        """
        state = journal.load()
        ctx = state.context or {}
        if ctx.get("kind") != "cluster-rebalance":
            raise ValueError(
                f"journal {journal.path} is not a cluster-rebalance journal"
            )
        if ctx["to_shards"] != self.map.num_shards:
            raise ValueError(
                f"journal expects {ctx['to_shards']} shards, cluster has "
                f"{self.map.num_shards}"
            )
        moved = list(ctx["moved"])
        committed = run_rebalance(
            self,
            moved,
            journal,
            committed=state.committed,
            pending=state.pending,
        )
        return RebalanceReport(
            new_shard=self.map.num_shards - 1,
            stripes_total=len(self._locations),
            stripes_moved=len(moved),
            windows_committed=committed,
            resumed=True,
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def load_imbalance(self) -> dict[str, float]:
        """Cluster-wide disk-load balance: max/mean busy time over every
        disk of every shard — the paper's Figure 8/9 bottleneck metric
        lifted to the cluster.  ``imbalance`` is 0.0 before any traffic."""
        busy = [
            d.stats.busy_time_s
            for vol in self.volumes
            for d in vol.store.array.disks
        ]
        mean = sum(busy) / len(busy) if busy else 0.0
        peak = max(busy) if busy else 0.0
        return {
            "disk_busy_max_s": peak,
            "disk_busy_mean_s": mean,
            "imbalance": (peak / mean) if mean > 0 else 0.0,
        }

    def stats_snapshot(self) -> dict:
        """The ``cluster.*`` namespace: frontend counters, the rolled-up
        per-shard summaries, and the cluster load-imbalance stats."""
        live = self.stripes_per_shard()
        per_shard = {}
        for vol in self.volumes:
            stats = vol.store.array.stats_snapshot()
            per_shard[str(vol.shard_id)] = {
                "stripes": live[vol.shard_id],
                "garbage_rows": self.garbage_rows.get(vol.shard_id, 0),
                "sub_reads": self.counters.sub_reads.get(vol.shard_id, 0),
                "requests": vol.service.counters.requests,
                "bytes_served": vol.service.counters.bytes_served,
                "degraded_serves": vol.service.counters.degraded_serves,
                "retries": vol.service.counters.retries,
                "busy_time_s": stats["total_busy_time_s"],
                "failed_disks": stats["failed"],
            }
        out = {
            "shards": len(self.volumes),
            "map": self.map.name,
            "stripes": len(self._locations),
            "requests": self.counters.requests,
            "batches": self.counters.batches,
            "bytes_served": self.counters.bytes_served,
            "spanning_reads": self.counters.spanning_reads,
            "rebalances": self.counters.rebalances,
            "stripes_moved": self.counters.stripes_moved,
            **self.load_imbalance(),
            "per_shard": per_shard,
        }
        if self.orchestrators:
            out["recovery"] = self.recovery_rollup()
        return out

    def metrics(self) -> dict:
        """Versioned snapshot of the cluster registry (``cluster.*`` plus
        any other namespaces registered into :attr:`registry`)."""
        return self.registry.snapshot()

    def shard_metrics(self, shard: int) -> dict:
        """One shard's full namespaced snapshot (``service.* / cache.* /
        health.* / disks.*`` — and ``faults.*`` when an injector targets
        it)."""
        return self.volumes[shard].service.metrics()
