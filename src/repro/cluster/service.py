"""Sharded multi-volume cluster: stripes spread across independent volumes.

EC-FRM's row-major placement spreads one volume's reads across all ``n``
disks of *its* array; this module scales the same idea out.  A
:class:`ClusterService` places whole candidate stripes across ``S``
independent :class:`~repro.store.blockstore.BlockStore` volumes — each
with its own :class:`~repro.disks.array.DiskArray`, placement and
:class:`~repro.engine.service.ReadService` — via a deterministic
stripe→shard map (:mod:`repro.cluster.shardmap`), and serves byte-range
reads by splitting them at stripe boundaries, fanning the pieces out to
the owning shards' services, and reassembling byte-correct results.

Faults stay shard-local: a crashed disk degrades reads on its shard only
(that shard's service replans and reconstructs as usual) while every
other shard serves clean — the cluster-level analogue of the paper's
single-failure story.  Per-shard metrics registries roll up into a
``cluster.`` namespace carrying the cluster-wide load-imbalance statistic
(max/mean disk busy time, the Figure 8/9 metric lifted to the cluster),
tracer spans carry a ``shard`` attribute, fault schedules can target an
individual shard (:meth:`ClusterService.attach_injector`), and
:meth:`ClusterService.add_shard` rebalances stripes onto a new shard with
the migration journal providing crash safety.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from ..cache import CacheConfig, HotTierCache
from ..codes.base import ErasureCode
from ..disks.model import DiskModel
from ..disks.presets import SAVVIO_10K3
from ..engine.service import BatchReadResult, ReadService
from ..net import Topology, TransferSummary
from ..obs import NULL_TRACER, Histogram, MetricsRegistry, Tracer
from ..store.blockstore import BlockStore
from .rebalance import RebalanceReport, ShardRecoveryReport, run_rebalance
from .shardmap import ShardMap, make_shard_map

if TYPE_CHECKING:  # pragma: no cover - optional collaborators
    from ..faults import FaultInjector, FaultSchedule
    from ..migrate.journal import MigrationJournal
    from ..recovery import DetectorConfig, RecoveryOrchestrator

__all__ = [
    "RebalanceUnsupportedError",
    "ShardTracer",
    "ShardVolume",
    "ClusterCounters",
    "ClusterReadResult",
    "ClusterService",
    "InjectorHandle",
]


class RebalanceUnsupportedError(ValueError):
    """Raised by :meth:`ClusterService.add_shard` on an unstable map.

    Subclasses :class:`ValueError` so existing callers (including the CLI's
    ``add-shard refused`` path) keep working; carries the offending
    :class:`~repro.cluster.shardmap.ShardMap` so programmatic callers can
    switch maps instead of string-matching the message.
    """

    def __init__(self, map: ShardMap) -> None:
        self.map = map
        super().__init__(
            f"{map.name} map ({type(map).__name__}) does not support "
            "rebalancing (adding a shard would remap ~S/(S+1) of all "
            "stripes); use hash-ring"
        )


class ShardTracer:
    """A shard-tagging view of a shared :class:`~repro.obs.Tracer`.

    Every span the shard's store and service emit through this view
    carries a ``shard`` attribute, so one cluster-wide trace can be
    filtered per shard.  Duck-typed to the tracer surface the read path
    uses (``enabled`` / ``request`` / ``span`` / ``record`` / ``point`` /
    ``breakdown``); disabled parents stay zero-overhead because every
    call forwards to the parent's own enabled check.
    """

    __slots__ = ("_parent", "shard")

    def __init__(self, parent: Tracer, shard: int) -> None:
        self._parent = parent
        self.shard = shard

    @property
    def enabled(self) -> bool:
        return self._parent.enabled

    @property
    def spans(self):
        return self._parent.spans

    def request(self, name: str = "read", **attrs: Any):
        return self._parent.request(name, shard=self.shard, **attrs)

    def span(self, name: str, **attrs: Any):
        return self._parent.span(name, shard=self.shard, **attrs)

    def record(
        self, name: str, duration_s: float, *, clock: str = "sim", **attrs: Any
    ) -> None:
        self._parent.record(
            name, duration_s, clock=clock, shard=self.shard, **attrs
        )

    def point(self, name: str, **attrs: Any) -> None:
        self._parent.point(name, shard=self.shard, **attrs)

    def breakdown(self, **kwargs: Any) -> dict:
        return self._parent.breakdown(**kwargs)


@dataclass(frozen=True)
class ShardVolume:
    """One shard: an independent store + service + metrics registry."""

    shard_id: int
    store: BlockStore
    service: ReadService
    registry: MetricsRegistry


@dataclass
class ClusterCounters:
    """Cumulative cluster-frontend counters."""

    requests: int = 0
    batches: int = 0
    bytes_served: int = 0
    #: requests whose byte range crossed at least one shard boundary.
    spanning_reads: int = 0
    #: sub-reads fanned out, per shard id.
    sub_reads: dict[int, int] = field(default_factory=dict)
    rebalances: int = 0
    stripes_moved: int = 0
    #: completed single-shard drain recoveries (``fail_shard``).
    recoveries: int = 0


@dataclass(frozen=True)
class ClusterReadResult:
    """Outcome of one :meth:`ClusterService.submit` batch.

    Attributes
    ----------
    payloads:
        The requested byte ranges, submission order, byte-exact.
    shard_results:
        The per-shard :class:`BatchReadResult` of every shard that served
        at least one sub-read, keyed by shard id.
    makespan_s:
        Cluster batch wall-clock on the simulated clock: shards run in
        parallel, so this is the *max* of the per-shard makespans.
        ``None`` when any shard served through the plan-less
        multi-failure fallback (no closed-loop timing exists for it).
    bytes_served:
        Total payload bytes across the batch.
    """

    payloads: list[bytes]
    shard_results: dict[int, BatchReadResult]
    makespan_s: float | None
    bytes_served: int

    @property
    def throughput_mib_s(self) -> float | None:
        """Aggregate cluster throughput in MiB/s (None if untimed)."""
        if not self.makespan_s:
            return None
        return self.bytes_served / self.makespan_s / (1024 * 1024)


class InjectorHandle:
    """Detachable handle for one shard-targeted fault injector.

    Returned by :meth:`ClusterService.attach_injector` so attach and
    detach are symmetric: call :meth:`detach` to unhook exactly this
    schedule (``detach_injectors`` remains the bulk form).  Every other
    attribute (``fired``, ``skipped``, counters, …) delegates to the
    wrapped :class:`~repro.faults.FaultInjector`, so existing callers
    that treated the return value as the injector keep working.
    """

    __slots__ = ("injector", "shard", "_cluster")

    def __init__(
        self, injector: "FaultInjector", shard: int, cluster: "ClusterService"
    ) -> None:
        self.injector = injector
        self.shard = shard
        self._cluster = cluster

    def detach(self) -> None:
        """Unhook this injector from its shard; idempotent."""
        self.injector.detach()
        try:
            self._cluster._injectors.remove(self)
        except ValueError:
            pass

    def __getattr__(self, name: str) -> Any:
        return getattr(self.injector, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InjectorHandle(shard={self.shard}, injector={self.injector!r})"


class ClusterService:
    """Byte-range read/write frontend over ``S`` sharded volumes.

    Parameters
    ----------
    code:
        The erasure code every volume uses.
    shards:
        Number of shards (ignored when ``map`` is a pre-built
        :class:`ShardMap`, which knows its own count).
    map:
        Shard-map name (``"hash-ring"`` / ``"round-robin"``) or instance.
    form:
        Placement form for every shard's store.
    element_size / disk_model:
        Per-volume store geometry, as for :class:`BlockStore`.
    tracer:
        Cluster-wide tracer; each shard sees it through a
        :class:`ShardTracer`, so every span carries its shard id.
    registry:
        Cluster-level registry the ``cluster`` namespace collector is
        registered into (fresh when omitted).  Each shard additionally
        keeps its own private registry — see :meth:`shard_metrics`.
    map_seed / vnodes:
        Hash-ring parameters when ``map`` is given by name.
    cache_capacity:
        Per-shard plan-cache capacity (caches are per shard: plans embed
        per-volume failure signatures, which shards don't share).
    cache:
        Hot-tier replica cache in front of the whole cluster: ``None``
        (default) disables the tier, a
        :class:`~repro.cache.CacheConfig` builds one, and a pre-built
        :class:`~repro.cache.HotTierCache` is adopted as-is.  The tier
        serves whole-stripe replicas of Zipf-hot stripes straight from
        memory — hits bypass the shards (and their
        :class:`~repro.disks.array.DiskArray` simulators) entirely —
        and its eviction weight tracks each stripe's live degraded-read
        cost through the recovery plane's detector state.
    """

    def __init__(
        self,
        code: ErasureCode,
        *,
        shards: int = 2,
        map: str | ShardMap = "hash-ring",
        form: str = "ec-frm",
        element_size: int = 1024,
        disk_model: DiskModel = SAVVIO_10K3,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        map_seed: int = 0,
        vnodes: int = 96,
        cache_capacity: int = 256,
        cache: CacheConfig | HotTierCache | None = None,
        topology: Topology | str | None = None,
    ) -> None:
        self.code = code
        #: rack topology shared by every shard's store (Topology is
        #: immutable, so one instance serves all volumes).  When set,
        #: each shard plans minimum-transfer repairs and the cluster
        #: publishes the rolled-up ``net.*`` namespace.
        self.topology = (
            Topology.from_spec(topology, code.n) if topology is not None else None
        )
        self.map = (
            map
            if isinstance(map, ShardMap)
            else make_shard_map(map, shards, vnodes=vnodes, seed=map_seed)
        )
        self.form = form
        self.element_size = element_size
        self.disk_model = disk_model
        self.cache_capacity = cache_capacity
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry if registry is not None else MetricsRegistry()
        self.volumes: list[ShardVolume] = [
            self._new_volume(sid) for sid in range(self.map.num_shards)
        ]
        self.counters = ClusterCounters()
        self._pending = bytearray()
        self._user_bytes = 0
        #: global stripe id -> (shard id, local row on that shard's store).
        #: Reads route through this table, not the map, so rebalancing can
        #: flip entries one stripe at a time without a stale-read window.
        self._locations: list[tuple[int, int]] = []
        #: physical (start, length) of flush-inserted zero-pad runs in the
        #: cluster's stripe-space byte stream (same scheme as BlockStore).
        self._pad_runs: list[tuple[int, int]] = []
        #: orphaned source rows left behind by rebalance moves, per shard.
        self.garbage_rows: dict[int, int] = {}
        self._injectors: list[InjectorHandle] = []
        #: per-shard recovery planes, populated by :meth:`enable_recovery`.
        self.orchestrators: list["RecoveryOrchestrator"] = []
        #: the hot-tier replica cache (None when disabled).
        self.hot_tier: HotTierCache | None
        if isinstance(cache, HotTierCache):
            self.hot_tier = cache
            if self.hot_tier.cost_of is None:
                self.hot_tier.cost_of = self._stripe_cost
        elif cache is not None:
            self.hot_tier = HotTierCache(cache, cost_of=self._stripe_cost)
        else:
            self.hot_tier = None
        self.registry.register_collector("cluster", self._cluster_snapshot)
        self.registry.register_collector("net", self._net_snapshot)
        self.registry.register_collector("cache", self._cache_snapshot)
        self.registry.register_collector("recovery", self._recovery_snapshot)
        self.registry.register_collector("service", self._service_rollup)

    def _new_volume(self, shard_id: int) -> ShardVolume:
        registry = MetricsRegistry()
        tracer = ShardTracer(self.tracer, shard_id)
        store = BlockStore(
            self.code,
            self.form,
            element_size=self.element_size,
            disk_model=self.disk_model,
            tracer=tracer,  # duck-typed tracer view
            registry=registry,
            topology=self.topology,
        )
        service = ReadService(store, cache_capacity=self.cache_capacity)
        return ShardVolume(
            shard_id=shard_id, store=store, service=service, registry=registry
        )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Shards currently in the cluster (failed ones included)."""
        return len(self.volumes)

    @property
    def failed_shards(self) -> set[int]:
        """Shards drained by :meth:`fail_shard`; they own no stripes."""
        return set(self.map.excluded)

    @property
    def live_shard_ids(self) -> list[int]:
        """Shard ids that can own stripes, ascending."""
        return [
            vol.shard_id
            for vol in self.volumes
            if vol.shard_id not in self.map.excluded
        ]

    @property
    def stripe_bytes(self) -> int:
        """User bytes per stripe — the placement and read-split unit."""
        return self.code.k * self.element_size

    @property
    def stripes_written(self) -> int:
        """Stripes durably placed across the cluster."""
        return len(self._locations)

    @property
    def user_bytes(self) -> int:
        """Durable bytes appended, excluding cluster flush padding."""
        return self._user_bytes

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a full stripe."""
        return len(self._pending)

    def locate_stripe(self, stripe: int) -> tuple[int, int]:
        """Current ``(shard id, local row)`` of global stripe ``stripe``."""
        return self._locations[stripe]

    def stripes_per_shard(self) -> dict[int, int]:
        """Live stripe count per shard (moved-away stripes excluded)."""
        out = {vol.shard_id: 0 for vol in self.volumes}
        for sid, _ in self._locations:
            out[sid] += 1
        return out

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, data: bytes) -> int:
        """Append bytes; each completed stripe is placed on its shard.

        Returns the logical offset at which ``data`` begins (flush padding
        excluded), directly usable with :meth:`read` — the same contract
        as :meth:`BlockStore.append`.
        """
        offset = self._user_bytes + len(self._pending)
        self._pending.extend(data)
        sb = self.stripe_bytes
        while len(self._pending) >= sb:
            chunk = bytes(self._pending[:sb])
            del self._pending[:sb]
            self._place_stripe(chunk, user_len=sb)
        return offset

    def flush(self) -> None:
        """Zero-pad and place any partial pending stripe.

        Pad bytes are durable on the owning shard but invisible to the
        cluster's logical stream, exactly like :meth:`BlockStore.flush`.
        """
        if self._pending:
            pending_len = len(self._pending)
            sb = self.stripe_bytes
            pad_start = len(self._locations) * sb + pending_len
            self._pad_runs.append((pad_start, sb - pending_len))
            chunk = bytes(self._pending).ljust(sb, b"\0")
            self._pending.clear()
            self._place_stripe(chunk, user_len=pending_len)

    def _place_stripe(self, chunk: bytes, user_len: int) -> None:
        g = len(self._locations)
        sid = self.map.shard_of(g)
        vol = self.volumes[sid]
        local_row = vol.store.rows_written
        vol.store.append(chunk)  # exactly one full row: flushes immediately
        self._locations.append((sid, local_row))
        self._user_bytes += user_len
        if self.hot_tier is not None:
            # global stripe ids are append-only so g cannot be resident;
            # the unconditional invalidate keeps the write path honest.
            self.hot_tier.invalidate(g)

    def apply_move(
        self, stripe: int, target: int, data_elems: Sequence[bytes]
    ) -> None:
        """Rebalance write point: land ``stripe`` on shard ``target``.

        Appends the stripe's data payloads to the target store (parity is
        re-encoded there) and flips the location entry; the source copy
        becomes garbage.  Called by :func:`repro.cluster.rebalance.
        run_rebalance` — one location flip per move keeps concurrent
        reads byte-correct throughout.
        """
        sid_old, _ = self._locations[stripe]
        tvol = self.volumes[target]
        local_row = tvol.store.rows_written
        tvol.store.append(b"".join(data_elems))
        self._locations[stripe] = (target, local_row)
        self.garbage_rows[sid_old] = self.garbage_rows.get(sid_old, 0) + 1
        self.counters.stripes_moved += 1
        if self.hot_tier is not None:
            # write-through invalidation: the replica (keyed by global
            # stripe id) must never outlive a relocation of its row.
            self.hot_tier.invalidate(stripe)

    # ------------------------------------------------------------------
    # logical <-> physical translation (cluster pad runs)
    # ------------------------------------------------------------------
    def _logical_to_physical(self, offset: int) -> int:
        phys = offset
        for pad_start, pad_len in self._pad_runs:
            if phys >= pad_start:
                phys += pad_len
            else:
                break
        return phys

    def _excise_padding(self, buf: bytes, phys_start: int) -> bytes:
        end = phys_start + len(buf)
        pieces: list[bytes] = []
        cursor = phys_start
        for pad_start, pad_len in self._pad_runs:
            pad_end = pad_start + pad_len
            if pad_end <= cursor:
                continue
            if pad_start >= end:
                break
            if pad_start > cursor:
                pieces.append(buf[cursor - phys_start : pad_start - phys_start])
            cursor = min(pad_end, end)
        if cursor < end:
            pieces.append(buf[cursor - phys_start :])
        return b"".join(pieces)

    def _split_physical(
        self, phys_start: int, phys_len: int
    ) -> list[tuple[int, int, int, int]]:
        """Split a physical byte window into per-stripe sub-ranges.

        Returns ``[(global stripe id, shard id, local offset, length),
        ...]`` in stream order — one piece per stripe touched (shard
        stores never pad, so local offsets are plain ``row *
        stripe_bytes`` arithmetic; the stripe id keys the hot tier).
        """
        sb = self.stripe_bytes
        end = phys_start + phys_len
        pieces: list[tuple[int, int, int, int]] = []
        for g in range(phys_start // sb, (end - 1) // sb + 1):
            lo = max(phys_start, g * sb)
            hi = min(end, (g + 1) * sb)
            sid, local_row = self._locations[g]
            pieces.append((g, sid, local_row * sb + (lo - g * sb), hi - lo))
        return pieces

    # ------------------------------------------------------------------
    # hot tier
    # ------------------------------------------------------------------
    def _shard_degraded(self, sid: int) -> bool:
        """Whether shard ``sid`` currently serves through reconstruction.

        With a recovery plane attached this is the detector's live view
        (SUSPECTED / FAILED / REBUILDING all mean reads there may pay a
        decode); without one it falls back to raw array failure flags.
        """
        if self.orchestrators:
            from ..recovery import DiskState

            return any(
                st is not DiskState.HEALTHY
                for st in self.orchestrators[sid].detector.states().values()
            )
        return any(d.failed for d in self.volumes[sid].store.array.disks)

    def _stripe_cost(self, stripe: int) -> float:
        """Live eviction weight of a resident stripe.

        Stripes whose shard is degraded cost ``degraded_cost`` (a miss
        re-reads through a k-element reconstruction); healthy shards
        cost 1.0.  Bound into the tier as its ``cost_of`` callback."""
        sid, _ = self._locations[stripe]
        if self._shard_degraded(sid):
            return (
                self.hot_tier.config.degraded_cost
                if self.hot_tier is not None
                else 1.0
            )
        return 1.0

    def _tier_lookup(self, g: int) -> bytes | None:
        """One traced hot-tier consult for global stripe ``g``."""
        payload = self.hot_tier.lookup(g)
        if self.tracer.enabled:
            self.tracer.point(
                "tier_lookup", stripe=g, hit=payload is not None
            )
        return payload

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at logical ``offset``, shard-transparent."""
        return self.submit([(offset, length)], queue_depth=1).payloads[0]

    def submit(
        self,
        ranges: Sequence[tuple[int, int]],
        queue_depth: int = 8,
        *,
        max_retries: int = 3,
    ) -> ClusterReadResult:
        """Serve a batch of byte ranges across the cluster.

        Each range is split at stripe boundaries into per-stripe pieces.
        With a hot tier attached every piece consults it first: a hit is
        served from the stripe's in-memory replica (no shard, no
        :class:`~repro.disks.array.DiskArray` access at all), and a
        hot-enough miss widens its sub-read to the whole stripe so the
        replica can be promoted from the same accounted fetch.  The
        remaining pieces fan out to the owning shards' services (plan
        cache, closed-loop timing, degraded replan, bounded fault
        retries — all per shard) and everything is reassembled in
        submission order.  Shards are independent arrays, so the batch's
        simulated wall-clock is the slowest shard's.
        """
        if not ranges:
            raise ValueError("empty batch")
        sb = self.stripe_bytes
        tier = self.hot_tier
        per_shard: dict[int, list[tuple[int, int]]] = {}
        # Per-range assembly program; slot kinds:
        #   ("shard", sid, j)                -> shard_results[sid].payloads[j]
        #   ("tier", piece_bytes)            -> served from the hot tier
        #   ("stripe", sid, j, in_off, n, g) -> slice of a promoted
        #                                       full-stripe sub-read
        layout: list[list[tuple]] = []
        phys_starts: list[int] = []
        #: stripes already widened to a full-stripe fetch in this batch.
        promoting: dict[int, tuple[int, int]] = {}
        for offset, length in ranges:
            if offset < 0 or length <= 0:
                raise ValueError(
                    f"invalid byte range offset={offset} length={length}"
                )
            if offset + length > self._user_bytes:
                raise ValueError(
                    f"range [{offset}, {offset + length}) beyond stored "
                    f"{self._user_bytes} user bytes (flush() pending data "
                    "first)"
                )
            phys_first = self._logical_to_physical(offset)
            phys_last = self._logical_to_physical(offset + length - 1)
            phys_starts.append(phys_first)
            pieces = self._split_physical(phys_first, phys_last - phys_first + 1)
            slots: list[tuple] = []
            for g, sid, local_off, piece_len in pieces:
                in_off = local_off % sb
                if tier is not None:
                    payload = self._tier_lookup(g)
                    if payload is not None:
                        slots.append(
                            ("tier", payload[in_off : in_off + piece_len])
                        )
                        continue
                    if g in promoting:
                        psid, pj = promoting[g]
                        slots.append(
                            ("stripe", psid, pj, in_off, piece_len, g)
                        )
                        continue
                    if tier.wants_promotion(g):
                        bucket = per_shard.setdefault(sid, [])
                        j = len(bucket)
                        bucket.append((local_off - in_off, sb))
                        promoting[g] = (sid, j)
                        slots.append(("stripe", sid, j, in_off, piece_len, g))
                        continue
                bucket = per_shard.setdefault(sid, [])
                slots.append(("shard", sid, len(bucket)))
                bucket.append((local_off, piece_len))
            layout.append(slots)
            if len({sid for _, sid, _, _ in pieces}) > 1:
                self.counters.spanning_reads += 1

        shard_results: dict[int, BatchReadResult] = {}
        for sid in sorted(per_shard):
            vol = self.volumes[sid]
            with self.tracer.span(
                "shard_fanout", shard=sid, sub_reads=len(per_shard[sid])
            ):
                shard_results[sid] = vol.service.submit(
                    per_shard[sid], queue_depth, max_retries=max_retries
                )
            self.counters.sub_reads[sid] = self.counters.sub_reads.get(
                sid, 0
            ) + len(per_shard[sid])

        payloads: list[bytes] = []
        for i, (offset, length) in enumerate(ranges):
            parts: list[bytes] = []
            for slot in layout[i]:
                kind = slot[0]
                if kind == "tier":
                    parts.append(slot[1])
                elif kind == "shard":
                    _, sid, j = slot
                    parts.append(shard_results[sid].payloads[j])
                else:  # promoted full-stripe read
                    _, sid, j, in_off, piece_len, g = slot
                    stripe_payload = shard_results[sid].payloads[j]
                    if tier is not None and g not in tier:
                        tier.insert(g, stripe_payload)
                    parts.append(stripe_payload[in_off : in_off + piece_len])
            logical = self._excise_padding(b"".join(parts), phys_starts[i])
            assert len(logical) == length, (
                f"range {i}: reassembled {len(logical)} bytes, wanted {length}"
            )
            payloads.append(logical)

        makespan: float | None = 0.0
        for result in shard_results.values():
            if result.throughput is None:
                makespan = None
                break
            makespan = max(makespan, result.throughput.makespan_s)
        nbytes = sum(len(p) for p in payloads)
        self.counters.requests += len(ranges)
        self.counters.batches += 1
        self.counters.bytes_served += nbytes
        return ClusterReadResult(
            payloads=payloads,
            shard_results=shard_results,
            makespan_s=makespan,
            bytes_served=nbytes,
        )

    def submit_open_loop(self, arrivals, **pipeline_kwargs):
        """Drive an open-loop arrival process across the cluster.

        ``arrivals`` is an iterable of ``(arrival_s, offset, length)``
        logical byte reads (e.g. an
        :class:`~repro.engine.pipeline.OpenLoopWorkload` over
        :attr:`user_bytes`).  Each arrival is split at stripe boundaries
        into per-shard pieces, and the whole process runs through one
        :class:`~repro.engine.pipeline.RequestPipeline` spanning every
        shard's service — asynchronous scatter-gather: a spanning read's
        pieces queue on their shards *concurrently*, and the request
        completes when the slowest piece does.  Admission, coalescing and
        hedging apply per piece exactly as on a single volume; remaining
        keyword arguments go to the pipeline constructor.  Returns the
        run's :class:`~repro.engine.pipeline.OpenLoopResult` (payloads in
        arrival order when materializing, reassembled and pad-excised).

        With a hot tier attached, each arrival consults it at submission:
        fully-resident arrivals resolve *at their arrival time* — they
        never enter admission, hedging or any disk queue, and contribute
        zero-latency samples to the merged result — while partially
        resident arrivals enqueue only their uncached pieces.  Hot-enough
        misses widen to full-stripe fetches and are promoted into the
        tier as their jobs complete (materializing runs only).
        """
        from ..engine.pipeline import RequestPipeline

        sb = self.stripe_bytes
        tier = self.hot_tier
        jobs: list[tuple[float, list[tuple[int, int, int]]]] = []
        #: (phys_first, logical length, assembly segments) per job.
        metas: list[tuple[int, int, list[tuple]]] = []
        #: fully-tier-served arrivals: (arrival_s, payload).
        cached: list[tuple[float, bytes]] = []
        #: arrival-order provenance: ("pipe", job idx) | ("tier", cached idx).
        order: list[tuple[str, int]] = []
        for arrival_s, offset, length in arrivals:
            if offset < 0 or length <= 0:
                raise ValueError(
                    f"invalid byte range offset={offset} length={length}"
                )
            if offset + length > self._user_bytes:
                raise ValueError(
                    f"range [{offset}, {offset + length}) beyond stored "
                    f"{self._user_bytes} user bytes (flush() pending data "
                    "first)"
                )
            phys_first = self._logical_to_physical(offset)
            phys_last = self._logical_to_physical(offset + length - 1)
            pieces = self._split_physical(
                phys_first, phys_last - phys_first + 1
            )
            if len({sid for _, sid, _, _ in pieces}) > 1:
                self.counters.spanning_reads += 1
            # Segment kinds: ("lit", bytes) tier-served; ("part",) next
            # pipeline payload as-is; ("stripe", in_off, n, g) next
            # pipeline payload is a whole stripe — promote then slice.
            segments: list[tuple] = []
            job_ranges: list[tuple[int, int, int]] = []
            for g, sid, local_off, piece_len in pieces:
                in_off = local_off % sb
                if tier is not None:
                    payload = self._tier_lookup(g)
                    if payload is not None:
                        segments.append(
                            ("lit", payload[in_off : in_off + piece_len])
                        )
                        continue
                    if tier.wants_promotion(g):
                        job_ranges.append((sid, local_off - in_off, sb))
                        segments.append(("stripe", in_off, piece_len, g))
                        self.counters.sub_reads[sid] = (
                            self.counters.sub_reads.get(sid, 0) + 1
                        )
                        continue
                job_ranges.append((sid, local_off, piece_len))
                segments.append(("part",))
                self.counters.sub_reads[sid] = (
                    self.counters.sub_reads.get(sid, 0) + 1
                )
            if not job_ranges:
                buf = b"".join(seg[1] for seg in segments)
                logical = self._excise_padding(buf, phys_first)
                assert len(logical) == length, (
                    f"tier-assembled {len(logical)} bytes, wanted {length}"
                )
                order.append(("tier", len(cached)))
                cached.append((arrival_s, logical))
            else:
                order.append(("pipe", len(jobs)))
                jobs.append((arrival_s, job_ranges))
                metas.append((phys_first, length, segments))

        def assemble(
            meta: tuple[int, int, list[tuple]], parts: list[bytes]
        ) -> bytes:
            phys_start, want, segments = meta
            out: list[bytes] = []
            it = iter(parts)
            for seg in segments:
                if seg[0] == "lit":
                    out.append(seg[1])
                elif seg[0] == "part":
                    out.append(next(it))
                else:  # promoted full-stripe fetch
                    _, in_off, piece_len, g = seg
                    stripe_payload = next(it)
                    if tier is not None and g not in tier:
                        tier.insert(g, stripe_payload)
                    out.append(stripe_payload[in_off : in_off + piece_len])
            logical = self._excise_padding(b"".join(out), phys_start)
            assert len(logical) == want, (
                f"reassembled {len(logical)} bytes, wanted {want}"
            )
            return logical

        result = None
        if jobs:
            pipe = RequestPipeline(
                [vol.service for vol in self.volumes],
                tracer=self.tracer,
                registry=self.registry,
                assemble=assemble,
                **pipeline_kwargs,
            )
            result = pipe.run_jobs(jobs, metas=metas)
        if cached:
            pipe_first = jobs[0][0] if jobs else None
            result = self._merge_open_loop(result, cached, order, pipe_first)
        if result is None:
            raise ValueError("no jobs to run")
        self.counters.requests += result.completed
        self.counters.batches += 1
        self.counters.bytes_served += result.bytes_served
        return result

    def _merge_open_loop(self, result, cached, order, pipe_first):
        """Fold tier-served arrivals into a pipeline run's result.

        Tier hits complete the instant they arrive (the replica is in
        memory), so each contributes a zero-latency sample and extends
        the completion horizon only to its own arrival time.
        ``result`` is ``None`` when *every* arrival was tier-served —
        the pipeline never ran (it refuses empty job lists).
        """
        from ..engine.pipeline import OpenLoopResult

        cached_bytes = sum(len(p) for _, p in cached)
        first_cached = min(t for t, _ in cached)
        last_cached = max(t for t, _ in cached)
        if result is None:
            latency = Histogram("service.pipeline.latency_s")
            latency.observe_many(0.0 for _ in cached)
            return OpenLoopResult(
                arrived=len(cached),
                completed=len(cached),
                rejected=0,
                coalesced=0,
                hedges_launched=0,
                hedges_won=0,
                hedges_wasted=0,
                retries=0,
                makespan_s=last_cached - first_cached,
                bytes_served=cached_bytes,
                latency=latency,
                queue_wait=Histogram("service.pipeline.queue_wait_s"),
                disk_depth=Histogram("service.pipeline.disk_depth"),
                peak_queue_depth=0,
                peak_disk_depth=0,
                disk_load={},
                payloads=[p for _, p in cached],
            )
        result.latency.observe_many(0.0 for _ in cached)
        # run_jobs reports makespan relative to its own first arrival;
        # re-anchor to the merged stream's first arrival and stretch the
        # horizon to the last tier hit if it lands after the pipeline.
        pipe_done = pipe_first + result.makespan_s
        first_arrival = min(first_cached, pipe_first)
        last_done = max(pipe_done, last_cached)
        payloads = None
        if result.payloads is not None:
            payloads = [
                result.payloads[idx] if kind == "pipe" else cached[idx][1]
                for kind, idx in order
            ]
        return OpenLoopResult(
            arrived=result.arrived + len(cached),
            completed=result.completed + len(cached),
            rejected=result.rejected,
            coalesced=result.coalesced,
            hedges_launched=result.hedges_launched,
            hedges_won=result.hedges_won,
            hedges_wasted=result.hedges_wasted,
            retries=result.retries,
            makespan_s=max(0.0, last_done - first_arrival),
            bytes_served=result.bytes_served + cached_bytes,
            latency=result.latency,
            queue_wait=result.queue_wait,
            disk_depth=result.disk_depth,
            peak_queue_depth=result.peak_queue_depth,
            peak_disk_depth=result.peak_disk_depth,
            disk_load=result.disk_load,
            payloads=payloads,
        )

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------
    def attach_injector(
        self, shard: int, schedule: "FaultSchedule", *, seed: int = 0
    ) -> InjectorHandle:
        """Attach a fault schedule to one shard's disk array.

        Returns an :class:`InjectorHandle` — call its ``.detach()`` to
        unhook exactly this schedule (the symmetric counterpart of this
        method; :meth:`detach_injectors` stays as the bulk form).  The
        handle forwards every injector attribute, so counters like
        ``fired`` read straight through it.

        The injector's audit counters are published into that shard's
        registry (``faults`` namespace of :meth:`shard_metrics`); other
        shards are untouched, so the schedule exercises exactly the
        degraded-on-one-shard / healthy-elsewhere regime.
        """
        from ..faults import FaultInjector

        if not 0 <= shard < len(self.volumes):
            raise ValueError(f"shard {shard} out of range [0, {len(self.volumes)})")
        vol = self.volumes[shard]
        injector = FaultInjector(vol.store.array, schedule, seed=seed)
        injector.register_metrics(vol.registry)
        injector.attach()
        handle = InjectorHandle(injector, shard, self)
        self._injectors.append(handle)
        return handle

    def detach_injectors(self) -> None:
        """Detach every injector attached through :meth:`attach_injector`.

        The bulk counterpart of :meth:`InjectorHandle.detach`.
        """
        for handle in list(self._injectors):
            handle.injector.detach()
        self._injectors.clear()

    # ------------------------------------------------------------------
    # recovery plane
    # ------------------------------------------------------------------
    def enable_recovery(
        self,
        journal_dir: str | Path,
        *,
        spares: int = 1,
        detector_config: "DetectorConfig | None" = None,
        unit_rows: int = 4,
        steps_per_tick: int = 1,
        budget_per_step: int | None = None,
    ) -> list["RecoveryOrchestrator"]:
        """Attach an autonomous recovery plane to every shard.

        One :class:`~repro.recovery.RecoveryOrchestrator` per shard —
        its own failure detector, hot-spare pool (``spares`` each) and
        throttled crash-safe rebuild executor, journaling rebuild WALs
        under ``journal_dir/shard-<id>/``.  Metrics land in each shard's
        private registry (``recovery.*`` of :meth:`shard_metrics`), and
        :meth:`metrics` rolls the plane up cluster-wide.  Shards added
        later by :meth:`add_shard` join the plane automatically.
        ``budget_per_step`` (physical element operations per repair
        quantum) gives every shard a
        :class:`~repro.recovery.RepairThrottle` at that deposit.
        """
        from ..recovery import RecoveryOrchestrator

        self._recovery_config = {
            "journal_dir": Path(journal_dir),
            "spares": spares,
            "detector_config": detector_config,
            "unit_rows": unit_rows,
            "steps_per_tick": steps_per_tick,
            "budget_per_step": budget_per_step,
        }
        self.orchestrators = [
            self._new_orchestrator(vol) for vol in self.volumes
        ]
        return list(self.orchestrators)

    def _new_orchestrator(self, vol: ShardVolume) -> "RecoveryOrchestrator":
        from ..recovery import RecoveryOrchestrator, RepairThrottle

        cfg = self._recovery_config
        throttle = (
            RepairThrottle(cfg["budget_per_step"])
            if cfg.get("budget_per_step") is not None
            else None
        )
        return RecoveryOrchestrator(
            vol.store,
            journal_dir=cfg["journal_dir"] / f"shard-{vol.shard_id}",
            spares=cfg["spares"],
            detector_config=cfg["detector_config"],
            throttle=throttle,
            cache=vol.service.cache,
            tracer=ShardTracer(self.tracer, vol.shard_id),
            registry=vol.registry,
            unit_rows=cfg["unit_rows"],
            steps_per_tick=cfg["steps_per_tick"],
        )

    def recovery_tick(self) -> bool:
        """One heartbeat of every shard's recovery plane.

        Returns True while any shard still has recovery work (shards
        tick independently; a stuck rebuild's
        :class:`~repro.recovery.DataLossError` propagates).
        """
        busy = False
        for orch in self.orchestrators:
            busy = orch.tick() or busy
        return busy

    def run_recovery_until_idle(self, max_ticks: int = 10_000) -> int:
        """Tick all shards' planes until idle; returns ticks taken.

        Like :meth:`RecoveryOrchestrator.run_until_idle`, shards that
        are out of spares stay degraded-but-live rather than spinning.
        """
        ticks = 0
        while ticks < max_ticks:
            ticks += 1
            if not self.recovery_tick():
                return ticks
            if all(
                orch.active is None
                and (not orch.queued_disks or orch.spares.available <= 0)
                for orch in self.orchestrators
            ) and any(orch.queued_disks for orch in self.orchestrators):
                return ticks  # degraded steady-state: out of spares
        from ..recovery import RecoveryError

        raise RecoveryError(
            f"cluster recovery plane still busy after {max_ticks} ticks"
        )

    def recovery_rollup(self) -> dict:
        """Cluster-wide recovery totals plus the per-shard plane states."""
        totals = {
            "rebuilds_started": 0,
            "rebuilds_completed": 0,
            "spare_waits": 0,
            "data_loss_events": 0,
            "flaps": 0,
            "spares_available": 0,
        }
        per_shard = {}
        for vol, orch in zip(self.volumes, self.orchestrators):
            totals["rebuilds_started"] += orch.rebuilds_started
            totals["rebuilds_completed"] += orch.rebuilds_completed
            totals["spare_waits"] += orch.spare_waits
            totals["data_loss_events"] += orch.data_loss_events
            totals["flaps"] += orch.detector.flaps
            totals["spares_available"] += orch.spares.available
            per_shard[str(vol.shard_id)] = {
                "rebuilding_disk": orch.rebuilding_disk,
                "queued_disks": orch.queued_disks,
                "rebuilds_completed": orch.rebuilds_completed,
                "flaps": orch.detector.flaps,
                "spares_available": orch.spares.available,
            }
        totals["per_shard"] = per_shard
        return totals

    # ------------------------------------------------------------------
    # rebalance
    # ------------------------------------------------------------------
    def add_shard(
        self,
        *,
        journal: "MigrationJournal | None" = None,
        crash_after_moves: int | None = None,
    ) -> RebalanceReport:
        """Grow the cluster by one shard and rebalance stripes onto it.

        Only stable maps rebalance: the hash-ring's ``with_added_shard``
        moves an expected ``1/(S+1)`` of stripes, all onto the new shard;
        round-robin would move ``~S/(S+1)`` of everything and is refused.
        With ``journal``, every move is staged/committed through the
        migration WAL so a crash mid-rebalance (``crash_after_moves``
        simulates one) is recoverable via :meth:`resume_rebalance`.
        """
        if not self.map.supports_rebalance:
            raise RebalanceUnsupportedError(self.map)
        old_map = self.map
        new_map = old_map.with_added_shard()
        new_sid = old_map.num_shards
        self.volumes.append(self._new_volume(new_sid))
        if self.orchestrators:
            # the recovery plane covers new shards from their first tick
            self.orchestrators.append(self._new_orchestrator(self.volumes[-1]))
        self.map = new_map
        moved = [
            g
            for g in range(len(self._locations))
            if new_map.shard_of(g) != old_map.shard_of(g)
        ]
        if journal is not None:
            journal.write_plan(
                {
                    "kind": "cluster-rebalance",
                    "map": new_map.name,
                    "from_shards": old_map.num_shards,
                    "to_shards": new_map.num_shards,
                    "stripes": len(self._locations),
                    "windows": len(moved),
                    "moved": moved,
                    "element_size": self.element_size,
                }
            )
        committed = run_rebalance(
            self, moved, journal, crash_after_moves=crash_after_moves
        )
        self.counters.rebalances += 1
        return RebalanceReport(
            new_shard=new_sid,
            stripes_total=len(self._locations),
            stripes_moved=len(moved),
            windows_committed=committed,
        )

    def resume_rebalance(self, journal: "MigrationJournal") -> RebalanceReport:
        """Finish a crashed rebalance from its write-ahead journal.

        The cluster must already carry the new shard (``add_shard`` adds
        it before any move).  Committed windows are skipped; a pending
        staged window is re-applied from its journaled payloads — or just
        committed, if the crash hit between apply and commit — and the
        remaining moves run normally.
        """
        state = journal.load()
        ctx = state.context or {}
        if ctx.get("kind") != "cluster-rebalance":
            hint = (
                "; use resume_recovery for a shard-failure drain journal"
                if ctx.get("kind") == "cluster-recovery"
                else ""
            )
            raise ValueError(
                f"journal {journal.path} is not a cluster-rebalance journal"
                f"{hint}"
            )
        if ctx["to_shards"] != self.map.num_shards:
            raise ValueError(
                f"journal expects {ctx['to_shards']} shards, cluster has "
                f"{self.map.num_shards}"
            )
        moved = list(ctx["moved"])
        committed = run_rebalance(
            self,
            moved,
            journal,
            committed=state.committed,
            pending=state.pending,
        )
        return RebalanceReport(
            new_shard=self.map.num_shards - 1,
            stripes_total=len(self._locations),
            stripes_moved=len(moved),
            windows_committed=committed,
            resumed=True,
        )

    # ------------------------------------------------------------------
    # shard-failure drain recovery
    # ------------------------------------------------------------------
    def fail_shard(
        self,
        failed: int,
        *,
        journal: "MigrationJournal | None" = None,
        crash_after_moves: int | None = None,
    ) -> ShardRecoveryReport:
        """Drain a failing shard: re-host every one of its stripes.

        The cluster swaps its map for :meth:`~repro.cluster.shardmap.
        ShardMap.without_shard` — the deterministic recovery map — and
        moves exactly the failed shard's stripes to wherever that map
        says, through the same staged/committed WAL windows as
        :meth:`add_shard` (``journal`` / ``crash_after_moves`` /
        :meth:`resume_recovery` work identically).  Each stripe's data
        elements are fetched from the draining shard (reconstructing
        through its own erasure code if disks there have failed),
        re-encoded on the receiving shard, and *read back* from it for a
        byte-exact scrub-on-land before the window commits — so every
        survivor's recovery reads are accounted on its own disks.

        Reads stay byte-correct throughout: routing goes through the
        stripe-location table, so a stripe serves from the draining
        shard until the instant it lands on its survivor.  Afterwards
        the failed shard owns nothing, new appends never place there,
        and :attr:`failed_shards` reports it.

        The returned :class:`~repro.cluster.rebalance.
        ShardRecoveryReport` carries the per-survivor spread and the
        recovery makespan — the map-controlled quantities the D3 map
        bounds (max − min ≤ 1 stripe) and a hash ring does not.
        """
        if not 0 <= failed < len(self.volumes):
            raise ValueError(
                f"shard {failed} out of range [0, {len(self.volumes)})"
            )
        old_map = self.map
        new_map = old_map.without_shard(failed)  # validates failed/last-live
        self.map = new_map
        moved = [
            g
            for g in range(len(self._locations))
            if new_map.shard_of(g) != old_map.shard_of(g)
        ]
        busy_before = self._busy_per_shard()
        if journal is not None:
            journal.write_plan(
                {
                    "kind": "cluster-recovery",
                    "map": new_map.name,
                    "failed_shard": failed,
                    "to_shards": new_map.num_shards,
                    "stripes": len(self._locations),
                    "windows": len(moved),
                    "moved": moved,
                    "element_size": self.element_size,
                }
            )
        committed = run_rebalance(
            self,
            moved,
            journal,
            crash_after_moves=crash_after_moves,
            verify=True,
        )
        self.counters.recoveries += 1
        return self._recovery_report(
            failed, moved, committed, busy_before, resumed=False
        )

    def resume_recovery(self, journal: "MigrationJournal") -> ShardRecoveryReport:
        """Finish a crashed shard drain from its write-ahead journal.

        The map must already exclude the failed shard (``fail_shard``
        swaps it before any move).  Committed windows are skipped, a
        pending staged window is re-applied from its journaled payloads,
        and every remaining stripe moves — with the same read-back
        verification — exactly as on the clean path.  The report's
        timing fields cover the resumed portion only; its ``spread``
        covers the whole recovery.
        """
        state = journal.load()
        ctx = state.context or {}
        if ctx.get("kind") != "cluster-recovery":
            raise ValueError(
                f"journal {journal.path} is not a cluster-recovery journal"
            )
        if ctx["to_shards"] != self.map.num_shards:
            raise ValueError(
                f"journal expects {ctx['to_shards']} shards, cluster has "
                f"{self.map.num_shards}"
            )
        failed = ctx["failed_shard"]
        if failed not in self.map.excluded:
            raise ValueError(
                f"cluster map does not mark shard {failed} failed; call "
                "fail_shard before resuming its journal"
            )
        moved = list(ctx["moved"])
        busy_before = self._busy_per_shard()
        committed = run_rebalance(
            self,
            moved,
            journal,
            committed=state.committed,
            pending=state.pending,
            verify=True,
        )
        self.counters.recoveries += 1
        return self._recovery_report(
            failed, moved, committed, busy_before, resumed=True
        )

    def _busy_per_shard(self) -> dict[int, float]:
        """Summed disk busy time per shard, for recovery makespans."""
        return {
            vol.shard_id: sum(
                d.stats.busy_time_s for d in vol.store.array.disks
            )
            for vol in self.volumes
        }

    def _recovery_report(
        self,
        failed: int,
        moved: list[int],
        committed: int,
        busy_before: dict[int, float],
        *,
        resumed: bool,
    ) -> ShardRecoveryReport:
        spread = {s: 0 for s in self.live_shard_ids}
        for g in moved:
            spread[self.map.shard_of(g)] += 1
        busy_after = self._busy_per_shard()
        deltas = {
            sid: busy_after[sid] - busy_before.get(sid, 0.0)
            for sid in busy_after
        }
        survivor_deltas = [deltas[s] for s in spread] or [0.0]
        return ShardRecoveryReport(
            failed_shard=failed,
            stripes_recovered=len(moved),
            windows_committed=committed,
            spread=spread,
            recovery_makespan_s=max(survivor_deltas),
            source_drain_s=deltas.get(failed, 0.0),
            resumed=resumed,
        )

    def recovery_balance(self) -> dict[str, dict]:
        """What-if recovery spread for each live shard's failure.

        For every live shard ``f``, computes where ``f``'s stripes would
        re-host under ``map.without_shard(f)`` and summarizes the
        per-survivor spread — the load-table view the ``cluster`` CLI
        prints and the ``cluster.*`` snapshot carries.  Empty when the
        map lacks recovery routing or fewer than two shards are live.
        """
        live = self.live_shard_ids
        out: dict[str, dict] = {}
        if len(live) < 2 or not self.map.supports_recovery:
            return out
        owners: dict[int, list[int]] = {s: [] for s in live}
        for g, (sid, _) in enumerate(self._locations):
            owners.setdefault(sid, []).append(g)
        for f in live:
            rmap = self.map.without_shard(f)
            counts = {s: 0 for s in live if s != f}
            for g in owners.get(f, ()):
                counts[rmap.shard_of(g)] += 1
            vals = list(counts.values())
            mean = sum(vals) / len(vals) if vals else 0.0
            out[str(f)] = {
                "stripes": len(owners.get(f, ())),
                "spread_max": max(vals) if vals else 0,
                "spread_min": min(vals) if vals else 0,
                "imbalance": (max(vals) / mean) if mean > 0 else 0.0,
            }
        return out

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def load_imbalance(self) -> dict[str, float]:
        """Cluster-wide disk-load balance: max/mean busy time over every
        disk of every shard — the paper's Figure 8/9 bottleneck metric
        lifted to the cluster.  ``imbalance`` is 0.0 before any traffic."""
        busy = [
            d.stats.busy_time_s
            for vol in self.volumes
            for d in vol.store.array.disks
        ]
        mean = sum(busy) / len(busy) if busy else 0.0
        peak = max(busy) if busy else 0.0
        return {
            "disk_busy_max_s": peak,
            "disk_busy_mean_s": mean,
            "imbalance": (peak / mean) if mean > 0 else 0.0,
        }

    def stats_snapshot(self) -> dict:
        """Deprecated alias for the ``cluster.*`` namespace dict.

        .. deprecated:: 1.4
           Use :meth:`metrics` — the rolled-up, versioned snapshot with
           ``cluster. / cache. / recovery. / service.`` namespaces —
           or ``metrics()["cluster"]`` for exactly this dict.  Removed
           after one release, per the repo's deprecation policy.
        """
        warnings.warn(
            "ClusterService.stats_snapshot() is deprecated; use "
            "metrics()['cluster'] (the rolled-up namespaced snapshot)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._cluster_snapshot()

    def _cluster_snapshot(self) -> dict:
        """The ``cluster.*`` namespace: frontend counters, the rolled-up
        per-shard summaries, and the cluster load-imbalance stats."""
        live = self.stripes_per_shard()
        balance = self.recovery_balance()
        per_shard = {}
        for vol in self.volumes:
            stats = vol.store.array.stats_snapshot()
            per_shard[str(vol.shard_id)] = {
                "stripes": live[vol.shard_id],
                "garbage_rows": self.garbage_rows.get(vol.shard_id, 0),
                "sub_reads": self.counters.sub_reads.get(vol.shard_id, 0),
                "requests": vol.service.counters.requests,
                "bytes_served": vol.service.counters.bytes_served,
                "degraded_serves": vol.service.counters.degraded_serves,
                "retries": vol.service.counters.retries,
                "busy_time_s": stats["total_busy_time_s"],
                "failed_disks": stats["failed"],
                "recovery_imbalance": balance.get(str(vol.shard_id), {}).get(
                    "imbalance", 0.0
                ),
            }
        out = {
            "shards": len(self.volumes),
            "map": self.map.name,
            "stripes": len(self._locations),
            "requests": self.counters.requests,
            "batches": self.counters.batches,
            "bytes_served": self.counters.bytes_served,
            "spanning_reads": self.counters.spanning_reads,
            "rebalances": self.counters.rebalances,
            "stripes_moved": self.counters.stripes_moved,
            "recoveries": self.counters.recoveries,
            "failed_shards": sorted(self.map.excluded),
            "recovery_balance": balance,
            **self.load_imbalance(),
            "per_shard": per_shard,
        }
        if self.orchestrators:
            out["recovery"] = self.recovery_rollup()
        return out

    def _net_snapshot(self) -> dict:
        """The ``net.*`` namespace: repair traffic summed over every
        shard's store (``{"enabled": False}`` without a topology)."""
        if self.topology is None:
            return {"enabled": False}
        total = TransferSummary()
        net_time_s = 0.0
        for vol in self.volumes:
            if vol.store.net is not None:
                total.add(vol.store.net)
                net_time_s += vol.store._net_time_s
        out = total.snapshot()
        out["net_time_s"] = net_time_s
        out["racks"] = self.topology.num_racks
        out["enabled"] = True
        return out

    def _cache_snapshot(self) -> dict:
        """The ``cache.*`` namespace: hot-tier hit/miss/promotion/eviction
        counters and residency (``{"enabled": False}`` without a tier)."""
        if self.hot_tier is None:
            return {"enabled": False}
        return self.hot_tier.snapshot()

    def _recovery_snapshot(self) -> dict:
        """The ``recovery.*`` namespace: the cluster-wide rollup of every
        shard's recovery plane (``{"enabled": False}`` without one)."""
        if not self.orchestrators:
            return {"enabled": False}
        return {"enabled": True, **self.recovery_rollup()}

    def _service_rollup(self) -> dict:
        """The ``service.*`` namespace: per-shard read services summed
        cluster-wide (the pipeline adds ``service.pipeline.*`` beside
        these when :meth:`submit_open_loop` runs)."""
        out = {
            "requests": 0,
            "bytes_served": 0,
            "degraded_serves": 0,
            "retries": 0,
            "plan_cache_hits": 0,
            "plan_cache_misses": 0,
        }
        for vol in self.volumes:
            c = vol.service.counters
            out["requests"] += c.requests
            out["bytes_served"] += c.bytes_served
            out["degraded_serves"] += c.degraded_serves
            out["retries"] += c.retries
            out["plan_cache_hits"] += vol.service.cache.stats.hits
            out["plan_cache_misses"] += vol.service.cache.stats.misses
        return out

    def metrics(self) -> dict:
        """The rolled-up, versioned cluster snapshot.

        One call, every namespace: ``cluster.*`` (frontend counters and
        per-shard rollup), ``cache.*`` (hot tier), ``recovery.*``
        (cluster-wide recovery plane), ``service.*`` (summed per-shard
        read services, plus ``service.pipeline.*`` once an open-loop run
        has registered) — and anything else registered into
        :attr:`registry`.  This is the single metrics entry point;
        :meth:`stats_snapshot` is its deprecated predecessor."""
        return self.registry.snapshot()

    def shard_metrics(self, shard: int) -> dict:
        """One shard's full namespaced snapshot (``service.* / cache.* /
        health.* / disks.*`` — and ``faults.*`` when an injector targets
        it)."""
        return self.volumes[shard].service.metrics()
