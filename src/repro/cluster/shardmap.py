"""Deterministic stripe→shard maps for the sharded cluster layer.

A cluster spreads whole candidate stripes across ``S`` independent
volumes.  The map is the only placement decision the cluster makes —
inside a shard, the existing :class:`repro.layout.Placement` machinery
decides disks and slots — so the map must be cheap, deterministic across
processes, and (for elastic clusters) *stable*: adding a shard should
remap as few stripes as possible.

Two maps are provided:

* :class:`RoundRobinMap` — ``stripe mod S``.  Perfectly balanced for
  sequential stripe ids, but adding a shard remaps almost every stripe
  (``stripe mod S`` and ``stripe mod (S+1)`` agree only on ~``1/(S+1)``
  of ids), so it is excluded from rebalancing and exists as the
  comparison baseline.
* :class:`HashRingMap` — consistent hashing with virtual nodes.  Each
  shard owns ``vnodes`` pseudo-random points on a 64-bit ring; a stripe
  maps to the shard owning the first point at or after the stripe's own
  ring position.  Adding a shard inserts only that shard's points, so
  exactly the stripes whose successor became a *new* point move — an
  expected ``1/(S+1)`` fraction, and every moved stripe lands on the new
  shard (the property the cluster's :meth:`~repro.cluster.service.
  ClusterService.add_shard` rebalance path relies on).

All hashing uses an explicit splitmix64-style mixer — never Python's
``hash`` — so the mapping is identical across interpreter runs and
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left

__all__ = ["ShardMap", "RoundRobinMap", "HashRingMap", "make_shard_map"]

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a well-distributed 64-bit mix of ``x``."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class ShardMap(ABC):
    """Maps global stripe ids onto shard ids ``0..num_shards-1``."""

    #: registry-style name, e.g. ``"round-robin"`` / ``"hash-ring"``.
    name: str = "abstract"
    #: whether :meth:`with_added_shard` yields a *stable* map (few stripes
    #: move); the cluster refuses to rebalance maps where it does not.
    supports_rebalance: bool = False

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards

    @abstractmethod
    def shard_of(self, stripe: int) -> int:
        """Shard id owning global stripe ``stripe``."""

    @abstractmethod
    def with_added_shard(self) -> "ShardMap":
        """The same map family over ``num_shards + 1`` shards."""

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"{self.name}[{self.num_shards} shards]"


class RoundRobinMap(ShardMap):
    """``stripe mod S`` — the balanced but unstable baseline."""

    name = "round-robin"
    supports_rebalance = False

    def shard_of(self, stripe: int) -> int:
        if stripe < 0:
            raise ValueError(f"stripe must be >= 0, got {stripe}")
        return stripe % self.num_shards

    def with_added_shard(self) -> "RoundRobinMap":
        """Exists for completeness; the result remaps ~``S/(S+1)`` of all
        stripes, which is why :attr:`supports_rebalance` is False and the
        cluster's ``add_shard`` refuses round-robin clusters."""
        return RoundRobinMap(self.num_shards + 1)


class HashRingMap(ShardMap):
    """Consistent hashing over a 64-bit ring with virtual nodes.

    Parameters
    ----------
    num_shards:
        Shards on the ring.
    vnodes:
        Ring points per shard.  More points tighten both balance and the
        ``~1/(S+1)`` remap bound at slightly higher build cost; lookups
        stay O(log(S * vnodes)).
    seed:
        Ring salt.  Maps with the same ``(vnodes, seed)`` and different
        shard counts share every surviving shard's points — the stability
        property.
    """

    name = "hash-ring"
    supports_rebalance = True

    def __init__(self, num_shards: int, *, vnodes: int = 96, seed: int = 0) -> None:
        super().__init__(num_shards)
        if vnodes <= 0:
            raise ValueError(f"need at least one virtual node, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        points: list[tuple[int, int]] = []
        salt = _mix64(seed ^ 0x9E3779B97F4A7C15)
        for shard in range(num_shards):
            base = _mix64(salt ^ (shard * 0xD1B54A32D192ED03))
            for v in range(vnodes):
                points.append((_mix64(base ^ (v * 0x8CB92BA72F3D8DD7)), shard))
        # sort by (point, shard): the shard id tie-break keeps the ring
        # deterministic even in the astronomically unlikely collision case
        points.sort()
        self._ring = [p for p, _ in points]
        self._owner = [s for _, s in points]
        self._salt = salt

    def _key(self, stripe: int) -> int:
        """Ring position of a stripe — independent of the shard count."""
        return _mix64(self._salt ^ (stripe * 0xA24BAED4963EE407) ^ 0x5851F42D4C957F2D)

    def shard_of(self, stripe: int) -> int:
        if stripe < 0:
            raise ValueError(f"stripe must be >= 0, got {stripe}")
        i = bisect_left(self._ring, self._key(stripe))
        if i == len(self._ring):
            i = 0  # wrap: successor of the highest point is the first point
        return self._owner[i]

    def with_added_shard(self) -> "HashRingMap":
        return HashRingMap(
            self.num_shards + 1, vnodes=self.vnodes, seed=self.seed
        )

    def describe(self) -> str:
        return (
            f"{self.name}[{self.num_shards} shards x {self.vnodes} vnodes, "
            f"seed {self.seed}]"
        )


def make_shard_map(
    name: str, num_shards: int, *, vnodes: int = 96, seed: int = 0
) -> ShardMap:
    """Factory: build a shard map by registry name."""
    if name == "round-robin":
        return RoundRobinMap(num_shards)
    if name == "hash-ring":
        return HashRingMap(num_shards, vnodes=vnodes, seed=seed)
    raise ValueError(
        f"unknown shard map {name!r}; known: 'hash-ring', 'round-robin'"
    )
