"""Deterministic stripe→shard maps for the sharded cluster layer.

A cluster spreads whole candidate stripes across ``S`` independent
volumes.  The map is the only placement decision the cluster makes —
inside a shard, the existing :class:`repro.layout.Placement` machinery
decides disks and slots — so the map must be cheap, deterministic across
processes, and (for elastic clusters) *stable*: adding a shard should
remap as few stripes as possible.

Three maps are provided:

* :class:`RoundRobinMap` — ``stripe mod S``.  Perfectly balanced for
  sequential stripe ids, but adding a shard remaps almost every stripe
  (``stripe mod S`` and ``stripe mod (S+1)`` agree only on ~``1/(S+1)``
  of ids), so it is excluded from rebalancing and exists as the
  comparison baseline.
* :class:`HashRingMap` — consistent hashing with virtual nodes.  Each
  shard owns ``vnodes`` pseudo-random points on a 64-bit ring; a stripe
  maps to the shard owning the first point at or after the stripe's own
  ring position.  Adding a shard inserts only that shard's points, so
  exactly the stripes whose successor became a *new* point move — an
  expected ``1/(S+1)`` fraction, and every moved stripe lands on the new
  shard (the property the cluster's :meth:`~repro.cluster.service.
  ClusterService.add_shard` rebalance path relies on).
* :class:`D3Map` — deterministic data distribution after the D3 paper
  (Xu et al., "Deterministic Data Distribution for Efficient Recovery
  in Erasure-Coded Storage Systems").  Stripes are laid out by a
  periodic stripe-group table instead of a hash ring, which buys three
  guarantees hashing cannot give: per-shard stripe counts are *exact*
  (equal on every full period, within the table's prefix bound on any
  prefix), adding a shard steals *exactly* ``1/(S+1)`` of each old
  shard's stripes (evenly spaced, all landing on the new shard), and —
  the D3 headline — when any single shard fails, its stripes re-host
  round-robin across the survivors so every surviving shard receives a
  near-equal share (max−min ≤ 1 stripe) of the recovery load.

Recovery is a first-class map operation: :meth:`ShardMap.without_shard`
returns the same family's map with one shard marked failed and its
stripes deterministically reassigned to survivors — only the failed
shard's stripes move.  The cluster's drain-recovery path
(:meth:`~repro.cluster.service.ClusterService.fail_shard`) routes every
evacuated stripe to ``without_shard(failed).shard_of(stripe)``, so the
map alone decides how recovery load spreads.

All hashing uses an explicit splitmix64-style mixer — never Python's
``hash`` — so the mapping is identical across interpreter runs and
``PYTHONHASHSEED`` values.  :class:`D3Map` is pure integer arithmetic
over its table and uses no hashing at all.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left
from typing import Iterable, Sequence

__all__ = [
    "ShardMap",
    "RoundRobinMap",
    "HashRingMap",
    "D3Map",
    "make_shard_map",
]

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a well-distributed 64-bit mix of ``x``."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class ShardMap(ABC):
    """Maps global stripe ids onto shard ids ``0..num_shards-1``.

    ``num_shards`` is the size of the shard *id space*; shards in
    :attr:`excluded` have failed and are never returned by
    :meth:`shard_of`.  Maps that implement :meth:`without_shard` set
    :attr:`supports_recovery` and route a failed shard's stripes to the
    survivors deterministically.
    """

    #: registry-style name, e.g. ``"round-robin"`` / ``"hash-ring"``.
    name: str = "abstract"
    #: whether :meth:`with_added_shard` yields a *stable* map (few stripes
    #: move); the cluster refuses to rebalance maps where it does not.
    supports_rebalance: bool = False
    #: whether :meth:`without_shard` is implemented — the cluster refuses
    #: to drain-recover a failed shard on maps where it is not.
    supports_recovery: bool = False
    #: failed shard ids; :meth:`shard_of` never returns one of these.
    excluded: frozenset[int] = frozenset()

    def __init__(
        self, num_shards: int, *, excluded: Iterable[int] = ()
    ) -> None:
        if num_shards <= 0:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        self.excluded = frozenset(excluded)
        bad = [s for s in self.excluded if not 0 <= s < num_shards]
        if bad:
            raise ValueError(
                f"excluded shards {sorted(bad)} outside [0, {num_shards})"
            )
        if len(self.excluded) >= num_shards:
            raise ValueError("cannot exclude every shard")

    @property
    def live_shards(self) -> list[int]:
        """Shard ids that can own stripes, ascending."""
        return [s for s in range(self.num_shards) if s not in self.excluded]

    @abstractmethod
    def shard_of(self, stripe: int) -> int:
        """Shard id owning global stripe ``stripe``."""

    @abstractmethod
    def with_added_shard(self) -> "ShardMap":
        """The same map family over ``num_shards + 1`` shards."""

    def without_shard(self, failed: int) -> "ShardMap":
        """The same map with ``failed`` marked dead — the recovery map.

        The returned map keeps every surviving stripe in place and
        reassigns exactly the failed shard's stripes to survivors; the
        cluster's :meth:`~repro.cluster.service.ClusterService.
        fail_shard` drains stripes to wherever this map says.  Raises
        on families that do not support recovery routing.
        """
        raise ValueError(
            f"{self.name} map ({type(self).__name__}) does not support "
            "single-shard recovery routing (no without_shard)"
        )

    def _check_failed(self, failed: int) -> list[int]:
        """Validate a ``without_shard`` target; returns the survivors."""
        if not 0 <= failed < self.num_shards:
            raise ValueError(
                f"failed shard {failed} outside [0, {self.num_shards})"
            )
        if failed in self.excluded:
            raise ValueError(f"shard {failed} is already excluded")
        survivors = [s for s in self.live_shards if s != failed]
        if not survivors:
            raise ValueError("cannot fail the last live shard")
        return survivors

    def recovery_spread(self, failed: int, stripes: int) -> dict[int, int]:
        """Survivor → stripes received if ``failed`` died now.

        Counts, over stripe ids ``[0, stripes)``, where each stripe
        currently owned by ``failed`` would re-host under
        :meth:`without_shard`.  Every survivor appears, including ones
        receiving zero stripes, so imbalance statistics are honest.
        """
        rmap = self.without_shard(failed)
        spread = {s: 0 for s in self.live_shards if s != failed}
        for g in range(stripes):
            if self.shard_of(g) == failed:
                spread[rmap.shard_of(g)] += 1
        return spread

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"{self.name}[{self.num_shards} shards{self._excluded_note()}]"

    def _excluded_note(self) -> str:
        if not self.excluded:
            return ""
        return f", failed {sorted(self.excluded)}"


class RoundRobinMap(ShardMap):
    """``stripe mod S`` — the balanced but unstable baseline.

    Recovery routing is supported (a failed shard's stripes re-host
    round-robin over the survivors by ``stripe // S``, so recovery load
    is balanced within one stripe), but shard *addition* is not: the
    modulus changes and ~``S/(S+1)`` of all stripes would move.
    """

    name = "round-robin"
    supports_rebalance = False
    supports_recovery = True

    def __init__(
        self, num_shards: int, *, excluded: Iterable[int] = ()
    ) -> None:
        super().__init__(num_shards, excluded=excluded)
        self._survivors = self.live_shards

    def shard_of(self, stripe: int) -> int:
        if stripe < 0:
            raise ValueError(f"stripe must be >= 0, got {stripe}")
        owner = stripe % self.num_shards
        if owner in self.excluded:
            owner = self._survivors[
                (stripe // self.num_shards) % len(self._survivors)
            ]
        return owner

    def with_added_shard(self) -> "RoundRobinMap":
        """Exists for completeness; the result remaps ~``S/(S+1)`` of all
        stripes, which is why :attr:`supports_rebalance` is False and the
        cluster's ``add_shard`` refuses round-robin clusters."""
        return RoundRobinMap(self.num_shards + 1, excluded=self.excluded)

    def without_shard(self, failed: int) -> "RoundRobinMap":
        self._check_failed(failed)
        return RoundRobinMap(
            self.num_shards, excluded=self.excluded | {failed}
        )


class HashRingMap(ShardMap):
    """Consistent hashing over a 64-bit ring with virtual nodes.

    Parameters
    ----------
    num_shards:
        Shards on the ring.
    vnodes:
        Ring points per shard.  More points tighten both balance and the
        ``~1/(S+1)`` remap bound at slightly higher build cost; lookups
        stay O(log(S * vnodes)).
    seed:
        Ring salt.  Maps with the same ``(vnodes, seed)`` and different
        shard counts share every surviving shard's points — the stability
        property.
    excluded:
        Failed shards; their points are simply absent from the ring, so
        exactly their stripes move — to each stripe's ring *successor*,
        which is pseudo-random per stripe and therefore NOT evenly
        spread across survivors (the recovery-imbalance weakness the
        :class:`D3Map` exists to fix).
    """

    name = "hash-ring"
    supports_rebalance = True
    supports_recovery = True

    def __init__(
        self,
        num_shards: int,
        *,
        vnodes: int = 96,
        seed: int = 0,
        excluded: Iterable[int] = (),
    ) -> None:
        super().__init__(num_shards, excluded=excluded)
        if vnodes <= 0:
            raise ValueError(f"need at least one virtual node, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        points: list[tuple[int, int]] = []
        salt = _mix64(seed ^ 0x9E3779B97F4A7C15)
        for shard in range(num_shards):
            if shard in self.excluded:
                continue
            base = _mix64(salt ^ (shard * 0xD1B54A32D192ED03))
            for v in range(vnodes):
                points.append((_mix64(base ^ (v * 0x8CB92BA72F3D8DD7)), shard))
        # sort by (point, shard): the shard id tie-break keeps the ring
        # deterministic even in the astronomically unlikely collision case
        points.sort()
        self._ring = [p for p, _ in points]
        self._owner = [s for _, s in points]
        self._salt = salt

    def _key(self, stripe: int) -> int:
        """Ring position of a stripe — independent of the shard count."""
        return _mix64(self._salt ^ (stripe * 0xA24BAED4963EE407) ^ 0x5851F42D4C957F2D)

    def shard_of(self, stripe: int) -> int:
        if stripe < 0:
            raise ValueError(f"stripe must be >= 0, got {stripe}")
        i = bisect_left(self._ring, self._key(stripe))
        if i == len(self._ring):
            i = 0  # wrap: successor of the highest point is the first point
        return self._owner[i]

    def with_added_shard(self) -> "HashRingMap":
        return HashRingMap(
            self.num_shards + 1,
            vnodes=self.vnodes,
            seed=self.seed,
            excluded=self.excluded,
        )

    def without_shard(self, failed: int) -> "HashRingMap":
        self._check_failed(failed)
        return HashRingMap(
            self.num_shards,
            vnodes=self.vnodes,
            seed=self.seed,
            excluded=self.excluded | {failed},
        )

    def describe(self) -> str:
        return (
            f"{self.name}[{self.num_shards} shards x {self.vnodes} vnodes, "
            f"seed {self.seed}{self._excluded_note()}]"
        )


class D3Map(ShardMap):
    """Deterministic recovery-load-balanced placement (the D3 template).

    The map is a periodic *stripe-group table*: ``shard_of(g) =
    table[g % L]`` where every live shard owns exactly ``L / live``
    slots per period ``L`` — normal read load is exactly balanced on
    every full period, with no hash jitter.  The table starts as one
    round-robin group (``L = S``) and every structural operation
    (adding a shard, failing a shard) rewrites it deterministically by
    *occurrence rank*: the r-th stripe a shard owns (counting from
    stripe 0) is a well-defined quantity, computable in O(1), and both
    growth and recovery walk it round-robin.

    Growth — :meth:`with_added_shard` steals each old shard's
    occurrences whose rank ``r`` satisfies ``r % (live+1) == live``:
    exactly every ``(live+1)``-th stripe of every shard, evenly spaced,
    all landing on the new shard.  The remap fraction is exactly
    ``1/(live+1)`` — the hash ring's bound, met with equality and
    without sampling error — so D3 clusters rebalance through the same
    migration journal as hash-ring clusters.

    Recovery — :meth:`without_shard` reassigns the failed shard's r-th
    stripe to ``survivors[r % len(survivors)]``.  Because ranks are
    consecutive in stripe order, any prefix of the stripe space spreads
    the failed shard's stripes across survivors to within one stripe
    (max − min ≤ 1): per-surviving-shard recovery load is balanced *by
    construction*, not in expectation.  This is the property the
    recovery-balance harness pins and the hash ring cannot offer.

    The table is pure integer data — no hashing, no seeds — so the map
    is trivially identical across processes and ``PYTHONHASHSEED``
    values.  Tables compact to their minimal period after every
    operation; a fresh map's period is ``S``, and each growth or
    failure multiplies it by at most the live-shard count.
    """

    name = "d3"
    supports_rebalance = True
    supports_recovery = True

    def __init__(
        self,
        num_shards: int,
        *,
        excluded: Iterable[int] = (),
        _table: Sequence[int] | None = None,
    ) -> None:
        super().__init__(num_shards, excluded=excluded)
        if _table is None:
            if self.excluded:
                raise ValueError(
                    "a fresh D3Map cannot start with excluded shards; "
                    "derive one via without_shard()"
                )
            _table = list(range(num_shards))
        self._table = self._compact(list(_table))
        live = self.live_shards
        if sorted(set(self._table)) != live:
            raise ValueError(
                f"table owners {sorted(set(self._table))} != live shards {live}"
            )
        counts = [0] * num_shards
        #: occurrence rank of each period slot within its owner's slots.
        self._rank: list[int] = []
        for owner in self._table:
            self._rank.append(counts[owner])
            counts[owner] += 1
        if len(set(counts[s] for s in live)) != 1:
            raise ValueError("D3 table must own every live shard equally")
        self._count = counts

    @staticmethod
    def _compact(table: list[int]) -> list[int]:
        """Truncate ``table`` to its minimal period."""
        n = len(table)
        for p in range(1, n + 1):
            if n % p == 0 and table == table[:p] * (n // p):
                return table[:p]
        return table

    @property
    def period(self) -> int:
        """Length of the stripe-group table (the layout period)."""
        return len(self._table)

    def shard_of(self, stripe: int) -> int:
        if stripe < 0:
            raise ValueError(f"stripe must be >= 0, got {stripe}")
        return self._table[stripe % len(self._table)]

    def occurrence_rank(self, stripe: int) -> int:
        """Rank of ``stripe`` among its owner's stripes, from stripe 0.

        The quantity both growth and recovery cycle on: the owner's
        stripes in increasing id order have ranks 0, 1, 2, ….
        """
        if stripe < 0:
            raise ValueError(f"stripe must be >= 0, got {stripe}")
        L = len(self._table)
        owner = self._table[stripe % L]
        return (stripe // L) * self._count[owner] + self._rank[stripe % L]

    def with_added_shard(self) -> "D3Map":
        new_id = self.num_shards
        live = len(self.live_shards)
        L = len(self._table)
        table = []
        # Over one new period of L*(live+1) slots, each owner's ranks
        # run 0 .. count*(live+1)-1 exactly once, so the steal takes
        # exactly every (live+1)-th occurrence of every owner.
        for j in range(L * (live + 1)):
            owner = self._table[j % L]
            r = (j // L) * self._count[owner] + self._rank[j % L]
            table.append(new_id if r % (live + 1) == live else owner)
        return D3Map(self.num_shards + 1, excluded=self.excluded, _table=table)

    def without_shard(self, failed: int) -> "D3Map":
        survivors = self._check_failed(failed)
        L = len(self._table)
        table = []
        # The failed shard's r-th stripe re-hosts on survivors[r % n]:
        # consecutive ranks walk the survivors round-robin, so any
        # prefix of the stripe space spreads within one stripe.
        for j in range(L * len(survivors)):
            owner = self._table[j % L]
            if owner == failed:
                r = (j // L) * self._count[failed] + self._rank[j % L]
                owner = survivors[r % len(survivors)]
            table.append(owner)
        return D3Map(
            self.num_shards, excluded=self.excluded | {failed}, _table=table
        )

    def describe(self) -> str:
        return (
            f"{self.name}[{self.num_shards} shards, period "
            f"{len(self._table)}{self._excluded_note()}]"
        )


def make_shard_map(
    name: str, num_shards: int, *, vnodes: int = 96, seed: int = 0
) -> ShardMap:
    """Factory: build a shard map by registry name.

    ``vnodes`` and ``seed`` parameterize the hash ring only; the
    round-robin and D3 maps are seedless by construction (their layouts
    are pure stripe-id arithmetic).
    """
    if name == "round-robin":
        return RoundRobinMap(num_shards)
    if name == "hash-ring":
        return HashRingMap(num_shards, vnodes=vnodes, seed=seed)
    if name == "d3":
        return D3Map(num_shards)
    raise ValueError(
        f"unknown shard map {name!r}; known: 'hash-ring', 'round-robin', 'd3'"
    )
