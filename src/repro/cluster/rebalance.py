"""Stripe rebalancing when a shard joins the cluster.

Adding a shard to a hash-ring cluster remaps an expected ``1/(S+1)``
fraction of stripes — all of them onto the new shard (a consistent-
hashing property the tests pin).  The rebalancer moves exactly those
stripes: it fetches each stripe's verified data payloads from the source
shard, appends them to the new shard's store (parity is re-encoded there,
deterministically), and flips the cluster's stripe-location entry.

Reads stay byte-correct *throughout*: the cluster routes reads through
its stripe-location table, not the shard map, so a stripe serves from its
old shard until the instant its location entry flips — there is no window
where a read can chase a stripe that has not arrived yet.

Crash safety reuses the migration write-ahead journal
(:class:`repro.migrate.MigrationJournal`) with the same WAL discipline —
stage (payloads into the journal), apply (append on the target shard),
commit — one window per moved stripe.  A crash between stage and commit
leaves at most one pending window; :meth:`~repro.cluster.service.
ClusterService.resume_rebalance` re-applies it from the staged payloads
(skipping the append if the location entry already flipped) and carries
on with the remaining moves.  The source copy of a moved stripe is never
deleted (shard stores are append-only); it is tracked as garbage rows,
the cluster's compaction debt.

Shard *failure* recovery rides the exact same mover: draining a failing
shard (:meth:`~repro.cluster.service.ClusterService.fail_shard`) is a
rebalance whose target map is :meth:`~repro.cluster.shardmap.ShardMap.
without_shard` — the moved set is the failed shard's stripes, the WAL
windows are identical, and ``verify=True`` additionally reads every
landed stripe back from its new shard and byte-compares it against the
moved payloads (scrub-on-land), so recovery is verified end to end and
each survivor's recovery *reads* are accounted on its own disks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - layering: service imports this module
    from ..migrate.journal import MigrationJournal, PendingStage
    from .service import ClusterService

__all__ = [
    "RebalanceCrash",
    "RebalanceReport",
    "RecoveryVerifyError",
    "ShardRecoveryReport",
    "run_rebalance",
]


class RebalanceCrash(RuntimeError):
    """Simulated crash during a rebalance (test/demo hook)."""


class RecoveryVerifyError(RuntimeError):
    """A recovered stripe's read-back diverged from the moved payloads."""


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of one ``add_shard`` rebalance (or its resume)."""

    new_shard: int
    stripes_total: int
    stripes_moved: int
    windows_committed: int
    resumed: bool = False

    @property
    def moved_fraction(self) -> float:
        """Fraction of all stripes that changed shards."""
        if self.stripes_total == 0:
            return 0.0
        return self.stripes_moved / self.stripes_total


@dataclass(frozen=True)
class ShardRecoveryReport:
    """Outcome of one ``fail_shard`` drain recovery (or its resume).

    Attributes
    ----------
    failed_shard:
        The drained shard.
    stripes_recovered:
        Stripes the failed shard owned (all of them re-hosted).
    windows_committed:
        WAL windows committed by this call (equals
        ``stripes_recovered`` on a clean run; fewer on a resumed one).
    spread:
        Surviving shard → stripes received, every survivor present
        (zero-receivers included) so the imbalance statistic is honest.
    recovery_makespan_s:
        Max per-*survivor* disk busy-time delta over the recovery —
        survivors work in parallel, so the hottest one gates completion.
        The map controls this: a balanced spread parallelizes evenly.
    source_drain_s:
        The failed shard's own busy-time delta (the map-independent
        cost of reading every stripe off the draining shard).
    """

    failed_shard: int
    stripes_recovered: int
    windows_committed: int
    spread: dict[int, int] = field(default_factory=dict)
    recovery_makespan_s: float = 0.0
    source_drain_s: float = 0.0
    resumed: bool = False

    @property
    def imbalance(self) -> float:
        """Max/mean stripes received across survivors (0.0 if none)."""
        if not self.spread:
            return 0.0
        mean = sum(self.spread.values()) / len(self.spread)
        return (max(self.spread.values()) / mean) if mean > 0 else 0.0

    @property
    def spread_bound(self) -> int:
        """Max − min stripes received across survivors."""
        if not self.spread:
            return 0
        return max(self.spread.values()) - min(self.spread.values())


def run_rebalance(
    cluster: "ClusterService",
    moved: list[int],
    journal: "MigrationJournal | None",
    *,
    committed: set[int] | None = None,
    pending: "PendingStage | None" = None,
    crash_after_moves: int | None = None,
    verify: bool = False,
) -> int:
    """Move ``moved`` stripes to their new shards; returns windows committed.

    ``committed`` windows (from a journal replay) are skipped; ``pending``
    supplies the staged payloads of a window that crashed between stage
    and commit.  ``crash_after_moves`` raises :class:`RebalanceCrash`
    after that many moves have committed *and* the next window has been
    staged — the worst-case WAL crash point.  With ``verify`` (the
    recovery path), every moved stripe is read back from its new shard
    through the accounted read path and byte-compared against the moved
    payloads before its window commits.
    """
    committed = committed or set()
    done = 0
    for w, g in enumerate(moved):
        if w in committed:
            continue
        sid_old, row_old = cluster.locate_stripe(g)
        target = cluster.map.shard_of(g)
        if pending is not None and pending.window == w:
            data_elems = list(pending.payloads[0])
        else:
            data_elems = cluster.volumes[sid_old].store.fetch_row_data(row_old)
            if journal is not None:
                journal.write_stage(w, [g], [data_elems])
        if crash_after_moves is not None and done >= crash_after_moves:
            raise RebalanceCrash(
                f"simulated crash after staging window {w} "
                f"({done} moves committed)"
            )
        if sid_old != target:
            # normal path; on resume the apply may already have happened
            # (crash between apply and commit) — the flipped location
            # entry tells us, and re-appending would duplicate the stripe.
            cluster.apply_move(g, target, data_elems)
        if verify:
            sid_now, row_now = cluster.locate_stripe(g)
            landed = cluster.volumes[sid_now].store.fetch_row_data(row_now)
            if landed != list(data_elems):
                raise RecoveryVerifyError(
                    f"stripe {g}: read-back on shard {sid_now} diverged "
                    "from the moved payloads"
                )
        if journal is not None:
            journal.write_commit(w)
        done += 1
    if journal is not None:
        journal.write_checkpoint(
            {
                "windows_done": len(moved),
                "windows_total": len(moved),
                "stripes_total": cluster.stripes_written,
            }
        )
    return done
