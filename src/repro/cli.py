"""Command-line interface: ``repro-ecfrm``.

Subcommands
-----------
* ``layout``  — render a code's EC-FRM stripe layout and group structure;
* ``figures`` — regenerate the paper's layout figures (1-7) as text;
* ``bench``   — run a measured figure (8a/8b/9a/9b/9c/9d) and print the
  paper-style table plus headline improvement lines;
* ``codes``   — list the Table I codes and their properties;
* ``demo``    — end-to-end store demo: write, fail a disk, degraded read;
* ``serve``   — concurrent read-service demo with plan-cache metrics;
* ``faults``  — fault-injection demo: self-healing reads under a seeded
  fault schedule (crash, outage, latent sector, bit rot, straggler);
* ``trace``   — traced read run: per-request spans to JSONL, per-stage
  latency breakdown to JSON, Prometheus-style metrics exposition;
* ``migrate`` — online layout migration: ``start`` a throttled
  standard/rotated → EC-FRM conversion with foreground reads interleaved
  (optionally crashing mid-way), ``status`` a journal, ``resume`` a
  crashed run from its write-ahead journal;
* ``cluster`` — sharded multi-volume demo: scatter-gather reads across
  shards (optionally degraded on one shard, optionally under a Zipf
  skew), per-shard load table with the cluster imbalance stat, and an
  optional hash-ring rebalance onto a freshly added shard;
* ``pipeline`` — open-loop event-loop scheduler demo: timestamped
  arrivals through admission control, per-disk FCFS queues, request
  coalescing and hedged sub-reads racing reconstruction against a
  straggler, with the p50/p99/p999 latency table.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .codes import parse_code_spec
from .disks.presets import DISK_PRESETS
from .frm import FRMCode, render_geometry, render_group_membership
from .harness import ExperimentConfig, render_improvements
from .harness.paperfigs import (
    ALL_TEXT_FIGURES,
    figure8a,
    figure8b,
    figure9a,
    figure9b,
    figure9c,
    figure9d,
)
from .store import BlockStore, ObjectStore

__all__ = ["main", "build_parser"]

_MEASURED_FIGURES = {
    "8a": figure8a,
    "8b": figure8b,
    "9a": figure9a,
    "9b": figure9b,
    "9c": figure9c,
    "9d": figure9d,
}

#: ``recover`` positional values that run an online recovery-plane
#: scenario instead of the offline XOR-plan calculation.
_RECOVERY_SCENARIOS = (
    "crash",
    "crash-during-rebuild",
    "spare-exhaustion",
    "flapping",
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-ecfrm",
        description="EC-FRM (ICPP 2015) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_layout = sub.add_parser("layout", help="render an EC-FRM stripe layout")
    p_layout.add_argument("code", help="code spec, e.g. rs-6-3 or lrc-6-2-2")
    p_layout.add_argument(
        "--style", choices=("group", "grid"), default="group", help="slot label style"
    )
    p_layout.add_argument(
        "--groups", action="store_true", help="also list every group's members"
    )

    p_fig = sub.add_parser("figures", help="regenerate paper layout figures 1-7")
    p_fig.add_argument(
        "which",
        nargs="*",
        default=["all"],
        help="figure ids (fig1..fig7) or 'all'",
    )

    p_bench = sub.add_parser("bench", help="run a measured paper figure")
    p_bench.add_argument("figure", choices=sorted(_MEASURED_FIGURES), help="figure id")
    p_bench.add_argument("--normal-trials", type=int, default=2000)
    p_bench.add_argument("--degraded-trials", type=int, default=5000)
    p_bench.add_argument("--element-size", type=int, default=1024 * 1024)
    p_bench.add_argument(
        "--disk", choices=sorted(DISK_PRESETS), default="savvio-10k3"
    )
    p_bench.add_argument("--seed", type=int, default=2015)

    sub.add_parser("codes", help="list the paper's Table I codes")

    p_demo = sub.add_parser("demo", help="end-to-end degraded-read demo")
    p_demo.add_argument("--code", default="lrc-6-2-2")
    p_demo.add_argument("--form", default="ec-frm")
    p_demo.add_argument("--fail-disk", type=int, default=1)

    p_rec = sub.add_parser(
        "recover",
        help="recovery I/O plans for XOR array codes, or an online "
        "recovery-plane scenario",
    )
    p_rec.add_argument(
        "code",
        help="array code spec (rdp-<p>, evenodd-<p>, xcode-<p>, "
        "weaver-<n>-<t>) for the plan calculation, or an orchestrator "
        f"scenario: {', '.join(_RECOVERY_SCENARIOS)}",
    )
    p_rec.add_argument("--disk", type=int, default=0, help="failed disk to rebuild")
    p_rec.add_argument(
        "--ec-code", default="rs-4-2", help="store code for scenario runs"
    )
    p_rec.add_argument("--rows", type=int, default=24, help="stripes to write")
    p_rec.add_argument("--element-size", type=int, default=512)
    p_rec.add_argument("--unit-rows", type=int, default=4, help="rows per rebuild window")
    p_rec.add_argument("--spares", type=int, default=1, help="hot-spare inventory")
    p_rec.add_argument(
        "--budget", type=int, default=None,
        help="repair tokens per step (default: stock AIMD throttle)",
    )
    p_rec.add_argument("--seed", type=int, default=2015)
    p_rec.add_argument(
        "--journal-dir", default=None,
        help="rebuild WAL directory (default: a fresh temp dir)",
    )
    p_rec.add_argument(
        "--topology", default=None,
        help="rack topology for scenario runs: 'flat', 'racks:R', or a "
        "comma list of rack ids per disk — rebuilds then stage through "
        "minimum-transfer repair plans and report net.* traffic",
    )

    p_reb = sub.add_parser("rebuild", help="whole-disk rebuild timing across forms")
    p_reb.add_argument("--code", default="lrc-6-2-2")
    p_reb.add_argument("--rows", type=int, default=120)
    p_reb.add_argument("--element-size", type=int, default=1024 * 1024)

    p_scrub = sub.add_parser("scrub", help="silent-corruption scrub demo")
    p_scrub.add_argument("--code", default="lrc-6-2-2")
    p_scrub.add_argument("--form", default="ec-frm")

    p_an = sub.add_parser(
        "analyze", help="exact analytical model: max-load distribution and speeds"
    )
    p_an.add_argument("code", help="code spec, e.g. rs-6-3")
    p_an.add_argument("--size", type=int, default=8, help="read size in elements")

    p_sweep = sub.add_parser(
        "sweep", help="regenerate all measured figures into CSV/JSON files"
    )
    p_sweep.add_argument("--out", default="results", help="output directory")
    p_sweep.add_argument("--normal-trials", type=int, default=2000)
    p_sweep.add_argument("--degraded-trials", type=int, default=5000)
    p_sweep.add_argument(
        "--format", choices=("csv", "json", "both"), default="both"
    )

    p_serve = sub.add_parser(
        "serve", help="concurrent read-service demo with plan-cache metrics"
    )
    p_serve.add_argument("--code", default="rs-6-3")
    p_serve.add_argument("--form", default="ec-frm")
    p_serve.add_argument("--element-size", type=int, default=4096)
    p_serve.add_argument("--requests", type=int, default=200)
    p_serve.add_argument("--queue-depth", type=int, default=8)
    p_serve.add_argument("--fail-disk", type=int, default=None)
    p_serve.add_argument("--seed", type=int, default=2015)

    p_flt = sub.add_parser(
        "faults", help="fault-injection demo: self-healing reads under a schedule"
    )
    p_flt.add_argument(
        "scenario",
        nargs="?",
        default="mixed",
        choices=("crash", "outage", "latent", "bitrot", "straggler", "mixed"),
        help="fault scenario preset (default: mixed, seeded-random)",
    )
    p_flt.add_argument("--code", default="rs-6-3")
    p_flt.add_argument("--form", default="ec-frm")
    p_flt.add_argument("--element-size", type=int, default=1024)
    p_flt.add_argument("--requests", type=int, default=48)
    p_flt.add_argument("--queue-depth", type=int, default=8)
    p_flt.add_argument("--seed", type=int, default=2015)

    p_tr = sub.add_parser(
        "trace", help="traced read run: span dump, latency breakdown, metrics"
    )
    p_tr.add_argument(
        "scenario",
        nargs="?",
        default="clean",
        choices=(
            "clean", "crash", "outage", "latent", "bitrot", "straggler", "mixed"
        ),
        help="fault scenario to trace under (default: clean, no faults)",
    )
    p_tr.add_argument("--code", default="rs-6-3")
    p_tr.add_argument("--form", default="ec-frm")
    p_tr.add_argument("--element-size", type=int, default=1024)
    p_tr.add_argument("--requests", type=int, default=48)
    p_tr.add_argument("--queue-depth", type=int, default=8)
    p_tr.add_argument("--seed", type=int, default=2015)
    p_tr.add_argument("--out", default="results", help="output directory")
    p_tr.add_argument(
        "--prometheus",
        action="store_true",
        help="also print the Prometheus-style text exposition",
    )

    p_mig = sub.add_parser(
        "migrate", help="online layout migration: start / status / resume"
    )
    mig_sub = p_mig.add_subparsers(dest="action", required=True)
    m_start = mig_sub.add_parser(
        "start", help="migrate a seeded live volume between placement forms"
    )
    m_start.add_argument("--code", default="rs-6-3")
    m_start.add_argument(
        "--source", default="standard", choices=("standard", "rotated", "ec-frm")
    )
    m_start.add_argument(
        "--target", default="ec-frm", choices=("standard", "rotated", "ec-frm")
    )
    m_start.add_argument("--rows", type=int, default=24)
    m_start.add_argument("--element-size", type=int, default=1024)
    m_start.add_argument("--seed", type=int, default=2015)
    m_start.add_argument(
        "--journal",
        default="results/migration_journal.jsonl",
        help="write-ahead journal path (must not exist yet)",
    )
    m_start.add_argument(
        "--budget",
        type=int,
        default=None,
        help="element ops per mover step (default: unthrottled)",
    )
    m_start.add_argument("--requests", type=int, default=4,
                         help="foreground reads interleaved per mover step")
    m_start.add_argument("--queue-depth", type=int, default=4)
    m_start.add_argument(
        "--crash-after",
        choices=("stage", "mid-write", "commit"),
        default=None,
        help="simulate a crash at this WAL point of --crash-at-window",
    )
    m_start.add_argument("--crash-at-window", type=int, default=0)
    m_status = mig_sub.add_parser("status", help="inspect a migration journal")
    m_status.add_argument(
        "--journal", default="results/migration_journal.jsonl"
    )
    m_resume = mig_sub.add_parser(
        "resume", help="resume a crashed migration from its journal"
    )
    m_resume.add_argument(
        "--journal", default="results/migration_journal.jsonl"
    )
    m_resume.add_argument("--budget", type=int, default=None)
    m_resume.add_argument("--requests", type=int, default=4)
    m_resume.add_argument("--queue-depth", type=int, default=4)

    p_cl = sub.add_parser(
        "cluster", help="sharded multi-volume cluster demo"
    )
    p_cl.add_argument("--code", default="rs-6-3")
    p_cl.add_argument("--shards", type=int, default=3)
    p_cl.add_argument(
        "--map", choices=("hash-ring", "round-robin", "d3"), default="hash-ring"
    )
    p_cl.add_argument("--stripes", type=int, default=48)
    p_cl.add_argument("--element-size", type=int, default=4096)
    p_cl.add_argument("--requests", type=int, default=100)
    p_cl.add_argument("--queue-depth", type=int, default=4)
    p_cl.add_argument(
        "--zipf",
        type=float,
        default=None,
        help="Zipf exponent (>1) for a skewed workload; uniform if omitted",
    )
    p_cl.add_argument(
        "--fail-disk",
        default=None,
        metavar="SHARD:DISK",
        help="fail one disk of one shard before reading (degraded demo)",
    )
    p_cl.add_argument(
        "--add-shard",
        action="store_true",
        help="after reading, rebalance onto a new shard and re-verify",
    )
    p_cl.add_argument(
        "--fail-shard",
        type=int,
        default=None,
        metavar="SHARD",
        help="after reading, drain this shard onto the survivors through "
        "the recovery map (scrub-on-land verified) and re-verify reads",
    )
    p_cl.add_argument(
        "--cache",
        type=int,
        default=None,
        metavar="STRIPES",
        help="enable the hot-tier replica cache with this many resident "
        "stripes (hits bypass the disk arrays entirely)",
    )
    p_cl.add_argument(
        "--cache-admit",
        type=int,
        default=2,
        help="accesses a stripe must earn before the tier admits it",
    )
    p_cl.add_argument(
        "--topology", default=None,
        help="rack topology for every shard's array: 'flat', 'racks:R', "
        "or a comma list of rack ids per disk — degraded reads then use "
        "minimum-transfer repair plans and the net.* rollup is printed",
    )
    p_cl.add_argument("--seed", type=int, default=2015)

    p_pipe = sub.add_parser(
        "pipeline",
        help="open-loop pipeline demo: hedged reads under admission control",
    )
    p_pipe.add_argument("--code", default="rs-6-3")
    p_pipe.add_argument("--form", default="ec-frm")
    p_pipe.add_argument("--element-size", type=int, default=4096)
    p_pipe.add_argument("--requests", type=int, default=2000)
    p_pipe.add_argument(
        "--rate", type=float, default=120.0, help="arrival rate, requests/s"
    )
    p_pipe.add_argument(
        "--zipf",
        type=float,
        default=None,
        help="Zipf exponent (>1) for hot-prefix offsets; uniform if omitted",
    )
    p_pipe.add_argument(
        "--straggle-disk",
        type=int,
        default=None,
        help="slow one disk by --straggle-factor before the run",
    )
    p_pipe.add_argument("--straggle-factor", type=float, default=6.0)
    p_pipe.add_argument(
        "--no-hedge", action="store_true", help="disable hedged sub-reads"
    )
    p_pipe.add_argument("--hedge-multiplier", type=float, default=2.0)
    p_pipe.add_argument("--max-inflight", type=int, default=64)
    p_pipe.add_argument("--queue-limit", type=int, default=1024)
    p_pipe.add_argument(
        "--materialize",
        action="store_true",
        help="fetch and verify real payloads (slower than timing-only)",
    )
    p_pipe.add_argument(
        "--shards", type=int, default=1, help="cluster shards to spread over"
    )
    p_pipe.add_argument(
        "--cache",
        type=int,
        default=None,
        metavar="STRIPES",
        help="enable the hot-tier replica cache with this many resident "
        "stripes (hits resolve at arrival, before admission and hedging)",
    )
    p_pipe.add_argument("--seed", type=int, default=2015)

    p_rel = sub.add_parser(
        "mttdl", help="mean time to data loss from measured rebuild speed"
    )
    p_rel.add_argument("--code", default="lrc-6-2-2")
    p_rel.add_argument("--disk-mttf-hours", type=float, default=1.0e6)
    p_rel.add_argument("--rows", type=int, default=120)
    p_rel.add_argument("--lse-prob", type=float, default=0.0)
    return parser


def _cmd_layout(args: argparse.Namespace) -> int:
    code = parse_code_spec(args.code)
    frm = FRMCode(code)
    g = frm.geometry
    print(frm.describe())
    print(render_geometry(g, style=args.style))
    if args.groups:
        for i in range(g.num_groups):
            print(render_group_membership(g, i))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    which = args.which
    if which == ["all"] or which == []:
        which = list(ALL_TEXT_FIGURES)
    for fig in which:
        if fig not in ALL_TEXT_FIGURES:
            print(f"unknown figure {fig!r}; known: {', '.join(ALL_TEXT_FIGURES)}", file=sys.stderr)
            return 2
        print(ALL_TEXT_FIGURES[fig]())
        print()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        element_size=args.element_size,
        disk_model=DISK_PRESETS[args.disk],
        normal_trials=args.normal_trials,
        degraded_trials=args.degraded_trials,
        seed=args.seed,
    )
    table = _MEASURED_FIGURES[args.figure](config)
    print(table.render(precision=3 if args.figure in ("9a", "9b") else 1))
    subject = next(name for name in table.series if name.startswith("EC-FRM"))
    baselines = {name: name for name in table.series if name != subject}
    print()
    print(render_improvements(table, subject, baselines))
    return 0


def _cmd_codes(_: argparse.Namespace) -> int:
    from .harness.experiment import paper_codes

    for spec, code in paper_codes().items():
        frm = FRMCode(code)
        g = frm.geometry
        print(
            f"{spec:12s} n={code.n:2d} k={code.k:2d} f={code.fault_tolerance} "
            f"overhead={code.storage_overhead:.3f} "
            f"ec-frm stripe={g.rows}x{g.n} groups={g.num_groups}"
        )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    code = parse_code_spec(args.code)
    bs = BlockStore(code, args.form, element_size=4096)
    store = ObjectStore(bs)
    rng = np.random.default_rng(0)
    blob = rng.integers(0, 256, size=200_000, dtype=np.uint8).tobytes()
    store.put("demo-object", blob)
    print(f"stored 200000 bytes via {bs.placement.describe()}")

    data, outcome = bs.read_with_outcome(0, 100_000)
    print(
        f"normal read : {outcome.speed_mib_s:8.1f} MiB/s  "
        f"(max disk load {outcome.plan.max_disk_load})"
    )
    bs.array.fail_disk(args.fail_disk)
    data2, outcome2 = bs.read_with_outcome(0, 100_000)
    ok = data2 == data == blob[:100_000]
    print(
        f"degraded read (disk {args.fail_disk} down): {outcome2.speed_mib_s:8.1f} MiB/s  "
        f"cost={outcome2.plan.read_cost:.3f}  byte-exact: {'OK' if ok else 'FAILED'}"
    )
    return 0 if ok else 1


def _parse_array_code(spec: str):
    """Parse the grid-code specs the recover command accepts."""
    from .codes import make_evenodd, make_rdp, make_weaver, make_xcode

    parts = spec.strip().lower().split("-")
    factories = {"rdp": (make_rdp, 1), "evenodd": (make_evenodd, 1),
                 "xcode": (make_xcode, 1), "weaver": (make_weaver, 2)}
    if parts[0] not in factories:
        raise ValueError(
            f"unknown array code {spec!r}; known: {sorted(factories)}"
        )
    factory, arity = factories[parts[0]]
    args = [int(a) for a in parts[1:]]
    if len(args) != arity:
        raise ValueError(f"{parts[0]} takes {arity} parameter(s)")
    return factory(*args)


def _cmd_recover(args: argparse.Namespace) -> int:
    if args.code in _RECOVERY_SCENARIOS:
        return _recover_scenario(args)
    from .recovery import conventional_recovery_plan, optimal_recovery_plan

    code = _parse_array_code(args.code)
    conv = conventional_recovery_plan(code, args.disk)
    opt = optimal_recovery_plan(code, args.disk)
    print(f"{code.describe()} — rebuild disk {args.disk}")
    print(f"conventional: {conv.io_count} element reads")
    print(f"optimal     : {opt.io_count} element reads "
          f"({(1 - opt.io_count / conv.io_count) * 100:.1f}% saved)")
    loads = opt.per_disk_loads(code)
    print("optimal per-disk reads: "
          + " ".join(f"d{d}:{loads.get(d, 0)}" for d in range(code.disks)))
    return 0


def _recovery_store(args: argparse.Namespace, *, recovery=None):
    """Seeded single-shard EC-FRM cluster for the recovery scenarios.

    Constructed through :func:`repro.open_cluster` (the one documented
    construction path); scenarios drive the lone shard's store and
    orchestrator directly.
    """
    from . import open_cluster

    cluster = open_cluster(
        args.ec_code,
        shards=1,
        element_size=args.element_size,
        recovery=recovery,
        topology=getattr(args, "topology", None),
    )
    if cluster.topology is not None:
        print(f"topology: {cluster.topology.describe()}")
    rng = np.random.default_rng(args.seed)
    data = rng.integers(
        0, 256, size=args.rows * cluster.stripe_bytes, dtype=np.uint8
    ).tobytes()
    cluster.append(data)
    cluster.flush()
    return cluster, cluster.volumes[0].store, data


def _recovery_verdict(bs, data) -> int:
    from .store import Scrubber

    ok = bs.read(0, len(data)) == data
    clean = Scrubber(bs).scrub().clean
    print(f"byte-exact after recovery: {'OK' if ok else 'FAILED'}; "
          f"redundancy restored (clean scrub): {'OK' if clean else 'FAILED'}")
    if getattr(bs, "topology", None) is not None:
        ns = bs.net_snapshot()
        print(
            f"net: {ns['bytes_moved']} repair bytes moved "
            f"({ns['cross_rack_bytes']} cross-rack, "
            f"{ns['intra_rack_bytes']} in-rack) over {ns['repair_sets']} "
            f"repair sets, mean set size {ns['repair_set_size']:.2f}"
        )
    return 0 if ok and clean else 1


def _recover_scenario(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from .obs import MetricsRegistry
    from .recovery import (
        DiskRebuild,
        RecoveryCrash,
        RepairThrottle,
        resume_disk_rebuild,
    )

    journal_dir = Path(
        args.journal_dir
        if args.journal_dir is not None
        else tempfile.mkdtemp(prefix="ecfrm-recover-")
    )
    d = args.disk

    if args.code == "crash-during-rebuild":
        # drive one rebuild by hand so the crash hook is visible end to end
        _, bs, data = _recovery_store(args)
        registry = MetricsRegistry()
        throttle = (
            RepairThrottle(budget_per_step=args.budget)
            if args.budget is not None
            else None
        )
        print(
            f"{bs.placement.describe()}: {args.rows} stripes, "
            f"scenario {args.code!r}, journal WALs in {journal_dir}"
        )
        bs.array.fail_disk(d)
        journal = journal_dir / f"rebuild-d{d}.wal"
        journal.parent.mkdir(parents=True, exist_ok=True)
        rb = DiskRebuild(
            bs, d, journal=journal, throttle=throttle,
            unit_rows=args.unit_rows, registry=registry,
            crash_after="reconstruct", crash_at_window=0,
        )
        try:
            rb.run()
        except RecoveryCrash as crash:
            print(f"CRASH: {crash}")
            print(f"journal preserved at {journal}; resuming...")
        rb = resume_disk_rebuild(bs, journal, throttle=throttle)
        steps = rb.run()
        print(
            f"resumed rebuild finished in {steps} steps: "
            f"{rb.windows_committed}/{rb.num_windows} windows committed "
            f"({rb.resumes} resume)"
        )
        return _recovery_verdict(bs, data)

    cluster, bs, data = _recovery_store(
        args,
        recovery={
            "journal_dir": journal_dir,
            "spares": args.spares,
            "unit_rows": args.unit_rows,
            "budget_per_step": args.budget,
        },
    )
    orch = cluster.orchestrators[0]
    print(
        f"{bs.placement.describe()}: {args.rows} stripes, "
        f"scenario {args.code!r}, journal WALs in {journal_dir}"
    )

    if args.code == "crash":
        bs.array.fail_disk(d)
        ticks = orch.run_until_idle()
        print(
            f"disk {d} confirmed failed, spare bound, rebuilt online in "
            f"{ticks} ticks ({orch.rebuilds_completed} rebuild complete)"
        )

    elif args.code == "spare-exhaustion":
        others = [x for x in range(len(bs.array)) if x != d]
        second = others[0]
        bs.array.fail_disk(d)
        bs.array.fail_disk(second)
        orch.run_until_idle()
        print(
            f"disks {d} and {second} failed with {args.spares} spare(s): "
            f"{orch.rebuilds_completed} rebuilt, queue {orch.queued_disks} "
            f"degraded-but-live (spare waits: {orch.spare_waits})"
        )
        orch.spares.restock(1)
        ticks = orch.run_until_idle()
        print(f"restocked one spare: queue drained in {ticks} more ticks")

    else:  # flapping
        bs.array.fail_disk(d)
        orch.tick()  # first down poll: suspected, not confirmed
        bs.array.restore_disk(d, wipe=False)  # blip over, contents intact
        orch.run_until_idle()
        print(
            f"disk {d} blipped for one poll: damped as a flap "
            f"(flaps={orch.detector.flaps}, rebuilds="
            f"{orch.rebuilds_started}) — no rebuild triggered"
        )
        bs.array.fail_disk(d)  # now fail it for real
        ticks = orch.run_until_idle()
        print(
            f"disk {d} down past the confirmation window: rebuilt in "
            f"{ticks} ticks ({orch.rebuilds_completed} rebuild complete)"
        )

    snap = orch.stats_snapshot()
    print(
        "recovery: "
        f"rebuilds={snap['rebuilds_completed']} "
        f"spare_waits={snap['spare_waits']} "
        f"throttle_backoffs={snap['throttle']['backoffs']} "
        f"spares_left={orch.spares.available}"
    )
    return _recovery_verdict(bs, data)


def _cmd_rebuild(args: argparse.Namespace) -> int:
    from .disks.presets import SAVVIO_10K3
    from .engine import plan_disk_rebuild, rebuild_time_s
    from .layout import make_placement

    code = parse_code_spec(args.code)
    print(f"rebuild timing, {code.describe()}, {args.rows} rows, "
          f"{args.element_size // 1024} KiB elements:")
    for form in ("standard", "rotated", "ec-frm"):
        placement = make_placement(form, code)
        naive = plan_disk_rebuild(placement, 0, args.rows)
        opt = plan_disk_rebuild(placement, 0, args.rows, optimize=True)
        t_naive = rebuild_time_s(naive, SAVVIO_10K3, args.element_size)
        t_opt = rebuild_time_s(opt, SAVVIO_10K3, args.element_size)
        print(f"  {form:9s}: naive {t_naive:6.2f}s (bottleneck {naive.max_disk_load}) "
              f"| load-aware {t_opt:6.2f}s (bottleneck {opt.max_disk_load})")
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    from .store import BlockStore, Scrubber

    code = parse_code_spec(args.code)
    bs = BlockStore(code, args.form, element_size=4096)
    rng = np.random.default_rng(0)
    bs.append(rng.integers(0, 256, size=8 * bs.row_bytes, dtype=np.uint8).tobytes())
    scrubber = Scrubber(bs)
    scrubber.inject_corruption(2, 1, rng)
    scrubber.inject_corruption(5, code.n - 1, rng)
    print(f"injected corruption into rows 2 and 5 of {bs.placement.describe()}")
    report, repairs = scrubber.scrub_and_repair()
    print(f"scrub: {report.rows_checked} rows checked, "
          f"corrupt rows {report.corrupt_rows}")
    for row, element in repairs:
        print(f"  repaired row {row}, element {element}")
    final = scrubber.scrub()
    print(f"post-repair scrub clean: {final.clean}")
    return 0 if final.clean else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import (
        exact_max_load_distribution,
        predict_normal_speed,
        speed_ratio_bound,
    )
    from .disks.presets import SAVVIO_10K3
    from .layout import make_placement

    code = parse_code_spec(args.code)
    print(f"exact analysis, {code.describe()}, read size {args.size} elements:")
    for form in ("standard", "rotated", "ec-frm"):
        placement = make_placement(form, code)
        dist = exact_max_load_distribution(placement, args.size)
        pred = predict_normal_speed(placement, SAVVIO_10K3, 1 << 20)
        dist_str = " ".join(f"P(max={m})={p:.3f}" for m, p in dist.items())
        print(f"  {form:9s}: {dist_str}  | workload-mean speed "
              f"{pred.mean_speed_mib_s:.1f} MiB/s")
    print(f"closed-form EC-FRM/standard ratio at L={args.size}: "
          f"{speed_ratio_bound(code.k, code.n, args.size):.3f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .harness.export import export_all_figures

    config = ExperimentConfig(
        normal_trials=args.normal_trials, degraded_trials=args.degraded_trials
    )
    formats = ("csv", "json") if args.format == "both" else (args.format,)
    written = export_all_figures(args.out, config, formats=formats)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .engine import ReadService
    from .harness import service_report

    code = parse_code_spec(args.code)
    bs = BlockStore(code, args.form, element_size=args.element_size)
    rng = np.random.default_rng(args.seed)
    rows = 32
    data = rng.integers(0, 256, size=rows * bs.row_bytes, dtype=np.uint8).tobytes()
    bs.append(data)
    if args.fail_disk is not None:
        bs.array.fail_disk(args.fail_disk)
        print(f"disk {args.fail_disk} failed — serving degraded")

    svc = ReadService(bs)
    span = 4 * args.element_size
    ranges = [
        (int(rng.integers(0, bs.user_bytes - span)), span)
        for _ in range(args.requests)
    ]
    cold = svc.submit(ranges, queue_depth=args.queue_depth)
    warm = svc.submit(ranges, queue_depth=args.queue_depth)
    ok = cold.payloads == warm.payloads == [data[o : o + n] for o, n in ranges]
    print(f"{bs.placement.describe()}, queue depth {args.queue_depth}")
    print(
        f"cold pass: {cold.throughput.throughput_mib_s:8.1f} MiB/s  "
        f"({cold.cache_misses} plans built)"
    )
    print(
        f"warm pass: {warm.throughput.throughput_mib_s:8.1f} MiB/s  "
        f"({warm.cache_hits} cache hits)"
    )
    print(f"payloads byte-exact: {'OK' if ok else 'FAILED'}")
    print()
    print(service_report(svc))
    return 0 if ok else 1


def _fault_schedule(scenario: str, code, seed: int):
    """Build the preset schedule for one ``faults``/``trace`` scenario."""
    from .faults import FaultEvent, FaultKind, FaultSchedule

    if scenario == "clean":
        return FaultSchedule.scripted([])
    scripted = {
        "crash": [FaultEvent(at_op=5, kind=FaultKind.CRASH, disk=1)],
        "outage": [
            FaultEvent(
                at_op=5, kind=FaultKind.TRANSIENT_OUTAGE, disk=2, duration_ops=6
            )
        ],
        "latent": [
            FaultEvent(at_op=3, kind=FaultKind.LATENT_SECTOR, disk=0),
            FaultEvent(at_op=9, kind=FaultKind.LATENT_SECTOR, disk=4),
        ],
        "bitrot": [
            FaultEvent(at_op=3, kind=FaultKind.BIT_ROT, disk=3),
            FaultEvent(at_op=7, kind=FaultKind.BIT_ROT, disk=5),
        ],
        "straggler": [
            FaultEvent(at_op=2, kind=FaultKind.STRAGGLER, disk=1, factor=4.0)
        ],
    }
    if scenario in scripted:
        return FaultSchedule.scripted(scripted[scenario])
    return FaultSchedule.random(
        seed,
        ops=40,
        num_disks=code.n,
        crash_prob=0.02,
        outage_prob=0.02,
        latent_prob=0.05,
        bitrot_prob=0.05,
        straggler_prob=0.02,
        max_disk_failures=code.fault_tolerance - 1 or 1,
    )


def _cmd_faults(args: argparse.Namespace) -> int:
    from .engine import ReadService
    from .faults import FaultInjector
    from .harness import service_report

    code = parse_code_spec(args.code)
    bs = BlockStore(code, args.form, element_size=args.element_size)
    rng = np.random.default_rng(args.seed)
    rows = 16
    data = rng.integers(0, 256, size=rows * bs.row_bytes, dtype=np.uint8).tobytes()
    bs.append(data)

    schedule = _fault_schedule(args.scenario, code, args.seed)
    print(
        f"{bs.placement.describe()}, scenario {args.scenario!r} "
        f"({len(schedule)} scheduled events, seed {args.seed})"
    )
    injector = FaultInjector(bs.array, schedule, seed=args.seed).attach()

    svc = ReadService(bs)
    span = 4 * args.element_size
    ranges = [
        (int(rng.integers(0, bs.user_bytes - span)), span)
        for _ in range(args.requests)
    ]
    result = svc.submit(ranges, queue_depth=args.queue_depth)
    injector.detach()

    ok = result.payloads == [data[o : o + n] for o, n in ranges]
    for op, event in injector.fired:
        where = f" slot {event.slot}" if event.slot is not None else ""
        print(f"  op {op:3d}: {event.kind.value} on disk {event.disk}{where}")
    for op, event in injector.skipped:
        print(f"  op {op:3d}: {event.kind.value} on disk {event.disk} (skipped)")
    print(f"payloads byte-exact under faults: {'OK' if ok else 'FAILED'}")
    print()
    print(service_report(svc))
    return 0 if ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .engine import ReadService
    from .faults import FaultInjector
    from .harness import service_report
    from .obs import (
        MetricsRegistry,
        Tracer,
        latency_breakdown,
        render_latency_breakdown,
        to_prometheus,
        write_trace_jsonl,
    )

    code = parse_code_spec(args.code)
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    bs = BlockStore(
        code, args.form, element_size=args.element_size,
        tracer=tracer, registry=registry,
    )
    rng = np.random.default_rng(args.seed)
    rows = 16
    data = rng.integers(0, 256, size=rows * bs.row_bytes, dtype=np.uint8).tobytes()
    bs.append(data)

    schedule = _fault_schedule(args.scenario, code, args.seed)
    injector = (
        FaultInjector(bs.array, schedule, seed=args.seed)
        .register_metrics(registry)
        .attach()
    )
    svc = ReadService(bs)
    span = 4 * args.element_size
    ranges = [
        (int(rng.integers(0, bs.user_bytes - span)), span)
        for _ in range(args.requests)
    ]
    result = svc.submit(ranges, queue_depth=args.queue_depth)
    injector.detach()
    ok = result.payloads == [data[o : o + n] for o, n in ranges]

    out = Path(args.out)
    trace_path = out / f"trace_{args.scenario}.jsonl"
    write_trace_jsonl(tracer, trace_path)
    nspans = len(tracer.spans)
    breakdown = latency_breakdown(tracer)
    breakdown_path = out / "latency_breakdown.json"
    breakdown_path.parent.mkdir(parents=True, exist_ok=True)
    breakdown_path.write_text(json.dumps(breakdown, indent=2, sort_keys=True))

    print(
        f"{bs.placement.describe()}, scenario {args.scenario!r}, "
        f"{args.requests} requests at queue depth {args.queue_depth}"
    )
    if injector.fired:
        for op, event in injector.fired:
            print(f"  op {op:3d}: {event.kind.value} on disk {event.disk}")
    print(f"payloads byte-exact: {'OK' if ok else 'FAILED'}")
    print(f"wrote {nspans} spans to {trace_path}")
    print(f"wrote per-stage breakdown to {breakdown_path} "
          f"(coverage {breakdown['consistency']['coverage']:.2f})")
    print()
    print(render_latency_breakdown(breakdown["stages"]))
    print()
    print(service_report(svc))
    if args.prometheus:
        print()
        print(to_prometheus(svc.metrics()))
    return 0 if ok else 1


def _seeded_migration_store(
    spec: str, form: str, rows: int, element_size: int, seed: int
):
    """Deterministically (re)build the migrate demo's store and payload.

    ``start`` and ``resume`` run in different processes over an in-memory
    disk array, so the array's contents are re-derived from (spec, form,
    rows, element size, seed) — all persisted in the journal's plan
    record — and the committed moves are then re-applied from the WAL.
    """
    code = parse_code_spec(spec)
    bs = BlockStore(code, form, element_size=element_size)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=rows * bs.row_bytes, dtype=np.uint8).tobytes()
    bs.append(data)
    return bs, data, rng


def _drive_migration(mig, svc, data, requests: int, queue_depth: int, rng) -> bool:
    """Step the mover to completion with foreground reads interleaved.

    Returns False if any foreground read came back byte-incorrect.
    """
    ok = True
    store = svc.store
    while mig.step():
        if requests > 0 and store.user_bytes > store.element_size:
            span = min(4 * store.element_size, store.user_bytes)
            ranges = [
                (int(rng.integers(0, store.user_bytes - span + 1)), span)
                for _ in range(requests)
            ]
            result = svc.submit(ranges, queue_depth=queue_depth)
            ok &= result.payloads == [data[o : o + n] for o, n in ranges]
    return ok


def _print_migration_summary(mig, store, source_form: str) -> None:
    from .layout import make_placement

    stats = mig.stats_snapshot()
    print(
        f"migrated {stats['windows_done']}/{stats['windows_total']} windows "
        f"({stats['rows_moved']} rows, {stats['elements_moved']} elements, "
        f"{stats['bytes_moved']} bytes)"
    )
    print(
        f"throttle stalls {stats['throttle_stalls']}, resumes {stats['resumes']}, "
        f"cache invalidations {stats['cache_invalidations']}, "
        f"checkpoints {stats['checkpoints']} "
        f"(invariant {'OK' if stats['invariant_ok'] else 'VIOLATED'})"
    )
    src = make_placement(source_form, store.code)
    L = 2 * store.code.n
    print(
        f"max disk load for L={L} contiguous elements: "
        f"{src.max_disk_load(0, L)} ({source_form}) -> "
        f"{store.placement.max_disk_load(0, L)} ({store.placement.name})"
    )


def _cmd_migrate(args: argparse.Namespace) -> int:
    from .engine import ReadService
    from .migrate import (
        MigrationCrash,
        MigrationJournal,
        Migrator,
        resume_migration,
    )

    journal = MigrationJournal(args.journal)

    if args.action == "status":
        if not journal.exists():
            print(f"no journal at {journal.path}")
            return 2
        state = journal.load()
        ctx = state.context or {}
        print(f"journal {journal.path}: {state.records} records")
        print(
            f"  plan: {ctx.get('source')} -> {ctx.get('target')}, "
            f"{ctx.get('rows')} rows in {ctx.get('windows')} windows "
            f"of {ctx.get('unit_rows')} (code {ctx.get('code')})"
        )
        print(
            f"  committed {len(state.committed)}/{ctx.get('windows')} windows; "
            f"pending stage: "
            + (f"window {state.pending.window}" if state.pending else "none")
        )
        for cp in state.checkpoints[-3:]:
            print(
                f"  checkpoint: {cp.get('windows_done')}/{cp.get('windows_total')} "
                f"windows, invariant {'OK' if cp.get('invariant_ok') else 'VIOLATED'}"
            )
        print(f"  complete: {state.complete}")
        return 0

    if args.action == "start":
        if journal.exists():
            print(
                f"journal {journal.path} already exists; "
                "use 'migrate resume' or remove it",
                file=sys.stderr,
            )
            return 2
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        bs, data, rng = _seeded_migration_store(
            args.code, args.source, args.rows, args.element_size, args.seed
        )
        svc = ReadService(bs)
        mig = Migrator(
            bs,
            args.target,
            journal=journal,
            cache=svc.cache,
            registry=svc.registry,
            budget_per_step=args.budget,
            crash_after=args.crash_after,
            crash_at_window=args.crash_at_window,
            context_extra={"spec": args.code, "seed": args.seed},
        )
        print(
            f"migrating {bs.placement.describe()} "
            f"({mig.plan.num_windows} windows of {mig.plan.unit_rows} rows, "
            f"budget {args.budget or 'unthrottled'})"
        )
        try:
            ok = _drive_migration(
                mig, svc, data, args.requests, args.queue_depth, rng
            )
        except MigrationCrash as crash:
            print(f"CRASH: {crash}")
            print(f"journal preserved at {journal.path}; resume with:")
            print(f"  repro-ecfrm migrate resume --journal {journal.path}")
            return 0
        final_ok = bs.read(0, bs.user_bytes) == data
        _print_migration_summary(mig, bs, args.source)
        print(
            "foreground reads byte-exact during migration: "
            f"{'OK' if ok else 'FAILED'}; final stream: "
            f"{'OK' if final_ok else 'FAILED'}"
        )
        return 0 if ok and final_ok else 1

    # resume
    if not journal.exists():
        print(f"no journal at {journal.path}", file=sys.stderr)
        return 2
    state = journal.load()
    if not state.started:
        print(f"journal {journal.path} has no plan record", file=sys.stderr)
        return 2
    ctx = state.context
    bs, data, rng = _seeded_migration_store(
        ctx["spec"], ctx["source"], ctx["rows"], ctx["element_size"], ctx["seed"]
    )
    svc = ReadService(bs)
    mig = resume_migration(
        bs,
        journal,
        cache=svc.cache,
        registry=svc.registry,
        budget_per_step=args.budget,
        restage=True,
    )
    print(
        f"resumed from {journal.path}: {mig.windows_done}/{mig.plan.num_windows} "
        "windows already committed"
    )
    ok = _drive_migration(mig, svc, data, args.requests, args.queue_depth, rng)
    final_ok = bs.read(0, bs.user_bytes) == data
    _print_migration_summary(mig, bs, ctx["source"])
    print(
        "foreground reads byte-exact during migration: "
        f"{'OK' if ok else 'FAILED'}; final stream: "
        f"{'OK' if final_ok else 'FAILED'}"
    )
    return 0 if ok and final_ok else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    from . import open_cluster
    from .cache import CacheConfig
    from .workloads import ZipfReadWorkload

    cluster = open_cluster(
        args.code,
        shards=args.shards,
        map=args.map,
        element_size=args.element_size,
        map_seed=args.seed,
        cache=(
            CacheConfig(
                capacity_stripes=args.cache, admit_after=args.cache_admit
            )
            if args.cache
            else None
        ),
        topology=args.topology,
    )
    code = cluster.code
    rng = np.random.default_rng(args.seed)
    data = rng.integers(
        0, 256, size=args.stripes * cluster.stripe_bytes, dtype=np.uint8
    ).tobytes()
    cluster.append(data)
    print(
        f"{cluster.map.describe()}, {cluster.stripes_written} stripes of "
        f"{code.describe()} ({cluster.user_bytes} bytes)"
    )
    if cluster.topology is not None:
        print(f"topology: {cluster.topology.describe()}")

    if args.fail_disk is not None:
        try:
            shard_s, disk_s = args.fail_disk.split(":")
            shard, disk = int(shard_s), int(disk_s)
        except ValueError:
            print(
                f"--fail-disk wants SHARD:DISK, got {args.fail_disk!r}",
                file=sys.stderr,
            )
            return 2
        cluster.volumes[shard].store.array.fail_disk(disk)
        print(f"disk {disk} of shard {shard} failed — that shard serves degraded")

    span_elems = (2, 8)
    if args.zipf is not None:
        wl = ZipfReadWorkload(
            address_space=args.stripes * code.k,
            trials=args.requests,
            zipf_s=args.zipf,
            min_size=span_elems[0],
            max_size=span_elems[1],
            seed=args.seed,
        )
        ranges = [
            (r.start * args.element_size, r.count * args.element_size)
            for r in wl
        ]
    else:
        ranges = []
        for _ in range(args.requests):
            size = int(rng.integers(span_elems[0], span_elems[1] + 1))
            size *= args.element_size
            ranges.append((int(rng.integers(0, len(data) - size)), size))
    result = cluster.submit(ranges, queue_depth=args.queue_depth)
    ok = result.payloads == [data[o : o + n] for o, n in ranges]
    if args.cache:
        # second identical pass: hot stripes promoted by the first batch
        # now serve from the tier (a batch can't hit its own promotions)
        warm = cluster.submit(ranges, queue_depth=args.queue_depth)
        ok &= warm.payloads == [data[o : o + n] for o, n in ranges]

    rollup = cluster.metrics()
    snap = rollup["cluster"]
    print(f"\nmap load table: {cluster.map.describe()}")
    print(f"shard  stripes  sub-reads  busy s  rec-imb   failed disks")
    for sid, s in sorted(snap["per_shard"].items(), key=lambda kv: int(kv[0])):
        failed = ",".join(str(d) for d in s["failed_disks"]) or "-"
        rec = (
            f"{s['recovery_imbalance']:7.3f}"
            if s["recovery_imbalance"] > 0
            else "      -"
        )
        print(
            f"{sid:>5s}  {s['stripes']:7d}  {s['sub_reads']:9d}  "
            f"{s['busy_time_s']:6.3f} {rec}   {failed}"
        )
    tput = (
        f"{result.throughput_mib_s:8.1f} MiB/s"
        if result.throughput_mib_s is not None
        else "  (untimed fallback)"
    )
    print(
        f"\n{snap['requests']} requests ({snap['spanning_reads']} spanned "
        f"shards): {tput}, disk-load imbalance {snap['imbalance']:.3f}"
    )
    if rollup["net"].get("enabled"):
        nm = rollup["net"]
        print(
            f"net: {nm['bytes_moved']} repair bytes moved "
            f"({nm['cross_rack_bytes']} cross-rack) over "
            f"{nm['repair_sets']} repair sets across {nm['racks']} racks"
        )
    if rollup["cache"].get("enabled"):
        cm = rollup["cache"]
        print(
            f"hot tier: {cm['hits']}/{cm['lookups']} stripe lookups hit "
            f"({cm['hit_rate']:.1%}), {cm['stripes_resident']}/"
            f"{cm['capacity_stripes']} stripes resident, "
            f"{cm['promotions']} promotions, {cm['evictions']} evictions"
        )
    print(f"payloads byte-exact: {'OK' if ok else 'FAILED'}")

    if args.add_shard:
        try:
            report = cluster.add_shard()
        except ValueError as err:
            print(f"\nadd-shard refused: {err}", file=sys.stderr)
            return 2
        print(
            f"\nadded shard {report.new_shard}: moved {report.stripes_moved}/"
            f"{report.stripes_total} stripes "
            f"({report.moved_fraction:.1%}; expected ~{1 / cluster.num_shards:.1%})"
        )
        again = cluster.submit(ranges, queue_depth=args.queue_depth)
        ok &= again.payloads == [data[o : o + n] for o, n in ranges]
        print(
            "post-rebalance stripes per shard: "
            + " ".join(
                f"s{sid}:{n}" for sid, n in sorted(cluster.stripes_per_shard().items())
            )
        )
        print(f"post-rebalance reads byte-exact: {'OK' if ok else 'FAILED'}")

    if args.fail_shard is not None:
        try:
            report = cluster.fail_shard(args.fail_shard)
        except ValueError as err:
            print(f"\nfail-shard refused: {err}", file=sys.stderr)
            return 2
        spread = " ".join(
            f"s{sid}:{n}" for sid, n in sorted(report.spread.items())
        )
        print(
            f"\ndrained shard {report.failed_shard}: "
            f"{report.stripes_recovered} stripes re-hosted onto survivors "
            f"[{spread}] — spread bound {report.spread_bound}, recovery "
            f"imbalance {report.imbalance:.3f}, makespan "
            f"{report.recovery_makespan_s:.3f}s"
        )
        again = cluster.submit(ranges, queue_depth=args.queue_depth)
        ok &= again.payloads == [data[o : o + n] for o, n in ranges]
        print(f"post-recovery reads byte-exact: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from . import open_cluster
    from .cache import CacheConfig
    from .engine.pipeline import (
        AdmissionController,
        HedgeConfig,
        OpenLoopWorkload,
    )
    from .faults import StragglerDetector

    cluster = open_cluster(
        args.code,
        shards=args.shards,
        layout=args.form,
        element_size=args.element_size,
        map_seed=args.seed,
        cache=(
            CacheConfig(capacity_stripes=args.cache) if args.cache else None
        ),
    )
    rng = np.random.default_rng(args.seed)
    rows = 64
    data = rng.integers(
        0, 256, size=rows * cluster.stripe_bytes, dtype=np.uint8
    ).tobytes()
    cluster.append(data)
    if args.straggle_disk is not None:
        cluster.volumes[0].store.array[args.straggle_disk].slowdown = (
            args.straggle_factor
        )
        print(
            f"disk {args.straggle_disk} of shard 0 straggling at "
            f"x{args.straggle_factor:g} service time"
        )
    workload = OpenLoopWorkload(
        user_bytes=cluster.user_bytes,
        requests=args.requests,
        rate_rps=args.rate,
        min_bytes=max(1, args.element_size // 4),
        max_bytes=4 * args.element_size,
        zipf_s=args.zipf,
        seed=args.seed,
    )
    if args.cache:
        # warm pass: promotions land as jobs complete, so the measured
        # run below sees a hot tier (one run can't hit its own promotions)
        cluster.submit_open_loop(workload.arrivals(), materialize=True)
    result = cluster.submit_open_loop(
        workload.arrivals(),
        admission=AdmissionController(
            max_inflight=args.max_inflight, queue_limit=args.queue_limit
        ),
        hedge=HedgeConfig(
            enabled=not args.no_hedge, multiplier=args.hedge_multiplier
        ),
        detector=StragglerDetector(),
        materialize=args.materialize,
    )
    lat = result.latency.summary()
    wait = result.queue_wait.summary()
    shard_note = f", {args.shards} shards" if args.shards > 1 else ""
    print(
        f"{cluster.volumes[0].store.placement.describe()}{shard_note}: "
        f"open loop @ {args.rate:g} req/s, "
        f"hedging {'off' if args.no_hedge else 'on'}"
    )
    print(
        f"completed {result.completed}/{result.arrived}  "
        f"rejected {result.rejected}  coalesced {result.coalesced}"
    )
    print(
        f"hedges: launched {result.hedges_launched}  won {result.hedges_won}"
        f"  wasted {result.hedges_wasted}"
    )
    print(
        f"latency    p50 {lat['p50'] * 1e3:8.2f} ms   "
        f"p99 {lat['p99'] * 1e3:8.2f} ms   p999 {lat['p999'] * 1e3:8.2f} ms"
    )
    print(
        f"queue wait p50 {wait['p50'] * 1e3:8.2f} ms   "
        f"p99 {wait['p99'] * 1e3:8.2f} ms   mean {wait['mean'] * 1e3:8.2f} ms"
    )
    print(
        f"admission queue peak {result.peak_queue_depth} "
        f"(limit {args.queue_limit}), disk queue peak {result.peak_disk_depth}"
    )
    cache_ns = cluster.metrics()["cache"]
    if cache_ns.get("enabled"):
        print(
            f"hot tier: {cache_ns['hits']}/{cache_ns['lookups']} stripe "
            f"lookups hit ({cache_ns['hit_rate']:.1%}), "
            f"{cache_ns['stripes_resident']} stripes resident"
        )
    ok = True
    if args.materialize:
        arrivals = list(workload.arrivals())
        ok = all(
            result.payloads[i] == data[o : o + n]
            for i, (_, o, n) in enumerate(arrivals)
            if result.payloads[i] is not None
        )
        print(f"payloads byte-exact: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_mttdl(args: argparse.Namespace) -> int:
    from .disks.presets import SAVVIO_10K3
    from .layout import make_placement
    from .reliability import ReliabilityParams, mttdl_markov, rebuild_hours

    code = parse_code_spec(args.code)
    print(
        f"{code.describe()} — disk MTTF {args.disk_mttf_hours:.2e} h, "
        f"LSE probability {args.lse_prob}, rebuild over {args.rows} rows"
    )
    for form in ("standard", "ec-frm"):
        placement = make_placement(form, code)
        hours = rebuild_hours(placement, SAVVIO_10K3, 1024 * 1024, args.rows)
        p = ReliabilityParams(
            num_disks=code.n,
            fault_tolerance=code.fault_tolerance,
            disk_mttf_hours=args.disk_mttf_hours,
            rebuild_hours=hours,
            lse_prob=args.lse_prob,
        )
        print(
            f"  {form:9s}: rebuild {hours * 3600:6.2f}s -> "
            f"MTTDL {mttdl_markov(p):.3e} hours"
        )
    return 0


_HANDLERS = {
    "layout": _cmd_layout,
    "figures": _cmd_figures,
    "bench": _cmd_bench,
    "codes": _cmd_codes,
    "demo": _cmd_demo,
    "recover": _cmd_recover,
    "rebuild": _cmd_rebuild,
    "scrub": _cmd_scrub,
    "analyze": _cmd_analyze,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "faults": _cmd_faults,
    "trace": _cmd_trace,
    "migrate": _cmd_migrate,
    "cluster": _cmd_cluster,
    "pipeline": _cmd_pipeline,
    "mttdl": _cmd_mttdl,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
