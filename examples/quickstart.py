#!/usr/bin/env python3
"""Quickstart: encode, fail a disk, read back — in ten lines of API.

Builds a (6,2,2) EC-FRM-LRC store (the paper's headline configuration),
writes an object, kills a disk, and shows that reads keep working and how
the layout spreads the I/O.

Run:  python3 examples/quickstart.py
"""

import numpy as np

from repro.codes import make_lrc
from repro.frm import FRMCode, render_geometry
from repro.store import BlockStore, ObjectStore


def main() -> None:
    # 1. Pick a candidate code and look at its EC-FRM transformation.
    lrc = make_lrc(6, 2, 2)
    frm = FRMCode(lrc)
    print(frm.describe())
    print(render_geometry(frm.geometry))
    print()

    # 2. Build a store in EC-FRM form (10 simulated disks) and write data.
    blocks = BlockStore(lrc, "ec-frm", element_size=64 * 1024)
    store = ObjectStore(blocks)
    payload = np.random.default_rng(0).integers(0, 256, 3_000_000, dtype=np.uint8).tobytes()
    store.put("holiday-video.mp4", payload)
    print(f"stored {len(payload):,} bytes across {lrc.n} disks "
          f"(overhead {lrc.storage_overhead:.2f}x, tolerates {lrc.fault_tolerance} failures)")

    # 3. Normal read: note the even per-disk load.
    data, outcome = blocks.read_with_outcome(0, 1_000_000)
    assert data == payload[:1_000_000]
    print(f"normal read : {outcome.speed_mib_s:7.1f} MiB/s, "
          f"most-loaded disk serves {outcome.plan.max_disk_load} elements, "
          f"{outcome.plan.disks_touched} disks contribute")

    # 4. Fail a disk; reads transparently reconstruct through the LRC's
    #    local groups and stay byte-exact.
    blocks.array.fail_disk(3)
    data, outcome = blocks.read_with_outcome(0, 1_000_000)
    assert data == payload[:1_000_000]
    print(f"degraded read (disk 3 down): {outcome.speed_mib_s:7.1f} MiB/s, "
          f"read cost {outcome.plan.read_cost:.3f}x "
          f"({outcome.plan.extra_elements_read} extra element reads)")

    # 5. Rebuild the disk from survivors and verify the object end to end.
    rebuilt = blocks.rebuild_disk(3)
    assert store.get("holiday-video.mp4") == payload
    print(f"rebuilt disk 3 ({rebuilt} elements) — object checksum verified")


if __name__ == "__main__":
    main()
