#!/usr/bin/env python3
"""Wide stripes over GF(2^16): beyond the paper's parameters.

Modern archival tiers use very wide codes (tens of data elements, e.g.
RS(40,10)) that exceed GF(2^8)'s 256-symbol limit at large n.  The
library's GF(2^16) substrate makes these a drop-in, and EC-FRM composes
with them unchanged — the gain formula ceil(L/k)/ceil(L/n) just moves to
bigger k and n.
"""

import numpy as np

from repro.analysis import speed_ratio_bound
from repro.codes.reed_solomon import ReedSolomonCode
from repro.frm import FRMCode
from repro.gf import get_field
from repro.harness.experiment import ExperimentConfig, compare_normal_forms
from repro.harness.metrics import improvement_pct

GF16 = get_field(16)


def main() -> None:
    # 1. A wide archival code: 40 data + 10 parity on 50 disks.
    rs = ReedSolomonCode(40, 10, field=GF16)
    frm = FRMCode(rs)
    g = frm.geometry
    print(f"{frm.describe()}  (GF(2^16), tolerates any {frm.fault_tolerance} of 50 disks)")

    # 2. Byte-exact round trip through a 10-disk-failure event.
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, size=(g.data_elements_per_stripe, 2048), dtype=np.uint8)
    grid = frm.encode_stripe(data)
    victims = list(range(0, 50, 5))
    broken = grid.copy()
    broken[:, victims, :] = 0
    recovered = frm.decode_columns(broken, victims)
    assert np.array_equal(recovered, grid)
    print(f"recovered from {len(victims)} concurrent disk failures: OK")

    # 3. Read-speed comparison at this width (reads of 1..60 elements —
    #    wide codes serve bigger objects).
    cfg = ExperimentConfig(normal_trials=400, max_read=60, element_size=256 * 1024)
    results = compare_normal_forms(rs, forms=("standard", "ec-frm"), config=cfg)
    std = results["standard"].mean_speed
    fr = results["ec-frm"].mean_speed
    print(f"normal reads (1-60 elements): standard {std:.0f} MiB/s, "
          f"EC-FRM {fr:.0f} MiB/s ({improvement_pct(fr, std):+.1f}%)")

    # 4. The closed form says where the gain lives at this width.
    for L in (20, 40, 45, 50, 60):
        print(f"  L={L:3d}: analytic EC-FRM/standard ratio "
              f"{speed_ratio_bound(40, 50, L):.2f}")


if __name__ == "__main__":
    main()
