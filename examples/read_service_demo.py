#!/usr/bin/env python3
"""The concurrent read service end to end: plan caching + queue depth.

Builds two identical stores (standard and EC-FRM placement), serves the
same repeated random-read workload through :class:`repro.engine.ReadService`
at increasing queue depths, and prints:

* aggregate throughput per form and depth — the all-spindle EC-FRM layout
  pulls ahead of the k-disk standard funnel as the queue deepens;
* the plan-cache effect — the warm replay of the identical workload skips
  the planners entirely (watch the hit counters);
* the service's metrics report, including the per-disk load histogram.

Runs in a few seconds.  CLI equivalent: ``repro-ecfrm serve``.
"""

import numpy as np

from repro.codes import make_rs
from repro.engine import ReadService
from repro.harness import service_report
from repro.store import BlockStore

DEPTHS = (1, 4, 16)
REQUESTS = 150
ELEMENT_SIZE = 4096


def main() -> None:
    code = make_rs(6, 3)
    rng = np.random.default_rng(2015)
    services = {}
    for form in ("standard", "ec-frm"):
        store = BlockStore(code, form, element_size=ELEMENT_SIZE)
        data = rng.integers(
            0, 256, size=32 * store.row_bytes, dtype=np.uint8
        ).tobytes()
        store.append(data)
        services[form] = ReadService(store)

    span = 4 * ELEMENT_SIZE
    limit = min(s.store.user_bytes for s in services.values()) - span
    ranges = [(int(rng.integers(0, limit)), span) for _ in range(REQUESTS)]

    print("aggregate throughput (MiB/s):")
    print("form      " + "".join(f"  qd={d:<5d}" for d in DEPTHS))
    for form, svc in services.items():
        cells = []
        for depth in DEPTHS:
            result = svc.submit(ranges, queue_depth=depth)
            cells.append(f"  {result.throughput.throughput_mib_s:7.1f}")
        print(f"{form:10s}" + "".join(cells))

    svc = services["ec-frm"]
    replay = svc.submit(ranges, queue_depth=8)
    print(
        f"\nwarm replay: {replay.cache_hits} cache hits, "
        f"{replay.cache_misses} misses (planners skipped)"
    )
    print("\nEC-FRM service metrics:")
    print(service_report(svc))


if __name__ == "__main__":
    main()
