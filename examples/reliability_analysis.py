#!/usr/bin/env python3
"""Reliability analysis: from layout to MTTDL.

Walks the full chain the library provides:

1. measure per-form rebuild makespan with the rebuild planner;
2. feed it into the birth-death Markov model;
3. compare mean-time-to-data-loss across codes and layouts;
4. sanity-check the Markov numbers against Monte Carlo simulation.
"""

from repro.codes import make_lrc, make_rs
from repro.disks import SAVVIO_10K3
from repro.layout import make_placement
from repro.reliability import (
    ReliabilityParams,
    mttdl_markov,
    mttdl_monte_carlo,
    rebuild_hours,
)

MiB = 1024 * 1024
DISK_MTTF_HOURS = 1.0e6
ROWS = 120


def main() -> None:
    print(f"disk MTTF {DISK_MTTF_HOURS:.0e} h, rebuild workload {ROWS} rows of 1 MiB\n")
    print(f"{'configuration':34s} {'rebuild':>9s} {'MTTDL (hours)':>14s}")
    for code in (make_rs(6, 3), make_lrc(6, 2, 2), make_lrc(10, 2, 4)):
        for form in ("standard", "ec-frm"):
            placement = make_placement(form, code)
            hours = rebuild_hours(placement, SAVVIO_10K3, MiB, ROWS)
            p = ReliabilityParams(
                num_disks=code.n,
                fault_tolerance=code.fault_tolerance,
                disk_mttf_hours=DISK_MTTF_HOURS,
                rebuild_hours=hours,
            )
            label = f"{code.describe()} / {form}"
            print(f"{label:34s} {hours * 3600:8.2f}s {mttdl_markov(p):14.3e}")

    # cross-validate the model at accelerated parameters
    p = ReliabilityParams(10, 3, disk_mttf_hours=100.0, rebuild_hours=10.0)
    exact = mttdl_markov(p)
    mc = mttdl_monte_carlo(p, trials=600, seed=11)
    print(f"\nmodel check (accelerated params): markov {exact:.1f} h, "
          f"monte-carlo {mc:.1f} h ({abs(mc / exact - 1) * 100:.1f}% apart)")


if __name__ == "__main__":
    main()
