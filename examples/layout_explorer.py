#!/usr/bin/env python3
"""Layout explorer: regenerate the paper's Figures 1-7 and inspect any code.

Usage:
  python3 examples/layout_explorer.py             # all paper figures
  python3 examples/layout_explorer.py rs-8-4      # explore one code's layout
"""

import sys

from repro.codes import parse_code_spec
from repro.engine import ReadRequest, plan_normal_read
from repro.frm import FRMCode, render_geometry, render_group_membership
from repro.harness.paperfigs import ALL_TEXT_FIGURES
from repro.layout import FRMPlacement, StandardPlacement


def show_paper_figures() -> None:
    for name, builder in ALL_TEXT_FIGURES.items():
        print(builder())
        print("=" * 78)


def explore(spec: str) -> None:
    code = parse_code_spec(spec)
    frm = FRMCode(code)
    g = frm.geometry
    print(frm.describe())
    print()
    print(render_geometry(g, style="group"))
    print()
    print("Group membership (paper-style element names):")
    for i in range(g.num_groups):
        print(" ", render_group_membership(g, i))
    print()

    # Show how an n-element read lands under each form.
    n = code.n
    for placement in (StandardPlacement(code), FRMPlacement(code)):
        plan = plan_normal_read(placement, ReadRequest(0, n), 1)
        loads = plan.per_disk_loads()
        bar = " ".join(f"{loads.get(d, 0)}" for d in range(n))
        print(f"{placement.name:9s} {n}-element read, per-disk loads: [{bar}]  "
              f"max={plan.max_disk_load}")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        explore(sys.argv[1])
    else:
        show_paper_figures()
