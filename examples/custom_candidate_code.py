#!/usr/bin/env python3
"""Extending EC-FRM with your own candidate code.

The paper's framework accepts *any* single-row systematic code.  This
example defines a custom candidate — a compact "RAID-6 + spare parity"
matrix code — plugs it into EC-FRM, registers a spec string for it, and
runs the read-speed comparison against its standard layout.
"""

import numpy as np

from repro.codes import MatrixCode, parse_code_spec, register_code_factory
from repro.codes.registry import CODE_FACTORIES
from repro.frm import FRMCode, render_geometry
from repro.gf import GF8, extended_generator, systematic_vandermonde_coding_matrix
from repro.harness.experiment import ExperimentConfig, compare_normal_forms
from repro.harness.metrics import improvement_pct


class TripleParityCode(MatrixCode):
    """A (k, 3) systematic code built straight from the GF substrate."""

    name = "triple"

    def __init__(self, k: int) -> None:
        block = systematic_vandermonde_coding_matrix(GF8, k, 3)
        super().__init__(extended_generator(GF8, block), GF8)

    def describe(self) -> str:
        return f"Triple({self.k})"


def main() -> None:
    # 1. Build the candidate and check the properties EC-FRM will inherit.
    code = TripleParityCode(7)
    print(f"candidate: {code.describe()}  n={code.n}  "
          f"fault tolerance={code.fault_tolerance}  MDS={code.is_mds}")

    # 2. Transform it: (10, 7) candidate -> 10x10 EC-FRM stripe (gcd = 1).
    frm = FRMCode(code)
    print(frm.describe())
    print(render_geometry(frm.geometry))

    # 3. Verify the transformation on real bytes: encode a stripe, wipe
    #    three whole disks, reconstruct.
    g = frm.geometry
    rng = np.random.default_rng(11)
    data = rng.integers(0, 256, size=(g.data_elements_per_stripe, 4096), dtype=np.uint8)
    grid = frm.encode_stripe(data)
    broken = grid.copy()
    broken[:, [1, 4, 8], :] = 0
    assert np.array_equal(frm.decode_columns(broken, [1, 4, 8]), grid)
    print("triple-disk reconstruction through EC-FRM: OK")

    # 4. Register a spec string so the CLI/harness can name it.
    if "triple" not in CODE_FACTORIES:
        register_code_factory("triple", TripleParityCode, 1)
    assert parse_code_spec("triple-7").k == 7
    print("registered spec 'triple-7'")

    # 5. Same experiment the paper runs, on the custom code.
    cfg = ExperimentConfig(normal_trials=400)
    results = compare_normal_forms(code, config=cfg)
    std = results["standard"].mean_speed
    frm_speed = results["ec-frm"].mean_speed
    print(f"normal read speed: standard {std:.1f} MiB/s, "
          f"EC-FRM {frm_speed:.1f} MiB/s "
          f"({improvement_pct(frm_speed, std):+.1f}%)")


if __name__ == "__main__":
    main()
