"""Tour of the observability plane: tracing, metrics, exporters.

Opens a traced EC-FRM store through the `repro.open_store` facade, runs a
workload that crosses normal and degraded regimes, and shows every way
the run can be inspected: the namespaced metrics snapshot, the per-stage
latency breakdown, the JSONL span dump, and the Prometheus exposition.

Run:  PYTHONPATH=src python examples/observability_tour.py
"""

import numpy as np

import repro
from repro.harness import service_report
from repro.obs import latency_breakdown, render_latency_breakdown, to_prometheus


def main() -> None:
    svc = repro.open_store("rs-6-3", element_size=4096, tracing=True)
    rng = np.random.default_rng(2015)
    data = rng.integers(
        0, 256, size=24 * svc.store.row_bytes, dtype=np.uint8
    ).tobytes()
    svc.store.append(data)

    ranges = [
        (int(rng.integers(0, svc.store.user_bytes - 16384)), 16384)
        for _ in range(60)
    ]
    svc.submit(ranges, queue_depth=8)           # normal regime
    svc.store.array.fail_disk(1)
    svc.submit(ranges, queue_depth=8)           # degraded regime

    print(f"{svc.store.placement.describe()} — 120 reads, disk 1 crashed midway\n")
    print(service_report(svc))

    doc = latency_breakdown(svc.tracer)
    print("\nper-stage breakdown (both regimes together):")
    print(render_latency_breakdown(doc["stages"]))
    print(
        f"\nstage coverage of request wall time: "
        f"{doc['consistency']['coverage']:.0%} "
        f"({doc['requests']['count']} requests)"
    )

    snapshot = svc.metrics()
    decode = snapshot["service"]["latency"].get("decode")
    if decode:
        print(
            f"decode stage (degraded half only): {decode['count']} spans, "
            f"p95 {decode['p95'] * 1e6:.0f} us"
        )

    print("\nPrometheus exposition (first lines):")
    print("\n".join(to_prometheus(snapshot).splitlines()[:8]))


if __name__ == "__main__":
    main()
