#!/usr/bin/env python3
"""Mini reproduction of the paper's Figures 8 and 9 at reduced scale.

Replays the paper's workloads (random start, 1-20 element reads; random
failed disk for degraded trials) through the three forms of each Table I
code and prints the paper-style tables plus headline improvement lines.

Runs in ~20 s.  For the full-scale run use:
  pytest benchmarks/ --benchmark-only
"""

from repro.harness import ExperimentConfig, render_improvements
from repro.harness.paperfigs import figure8a, figure8b, figure9a, figure9b, figure9c, figure9d

CONFIG = ExperimentConfig(normal_trials=500, degraded_trials=800)


def main() -> None:
    for build, subject, baselines, precision in (
        (figure8a, "EC-FRM-RS", {"RS": "standard RS", "R-RS": "rotated RS"}, 1),
        (figure8b, "EC-FRM-LRC", {"LRC": "standard LRC", "R-LRC": "rotated LRC"}, 1),
        (figure9a, None, None, 4),
        (figure9b, None, None, 4),
        (figure9c, "EC-FRM-RS", {"RS": "standard RS", "R-RS": "rotated RS"}, 1),
        (figure9d, "EC-FRM-LRC", {"LRC": "standard LRC", "R-LRC": "rotated LRC"}, 1),
    ):
        table = build(CONFIG)
        print(table.render(precision=precision))
        if subject:
            print(render_improvements(table, subject, baselines))
        print()

    print("Paper reference bands:")
    print("  EC-FRM-RS  normal  : +19.2% .. +33.9% vs RS")
    print("  EC-FRM-LRC normal  : +23.5% .. +46.9% vs LRC")
    print("  EC-FRM-RS  degraded: + 9.1% .. + 9.9% vs RS")
    print("  EC-FRM-LRC degraded: + 3.3% .. +12.8% vs LRC")


if __name__ == "__main__":
    main()
