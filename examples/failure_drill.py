#!/usr/bin/env python3
"""Failure drill: a cloud-storage operations scenario on the simulator.

Exercises the fault-tolerance envelope of a (10,2,4) EC-FRM-LRC cluster —
the largest configuration in the paper's Table I:

1. ingest a directory of objects (append-only, full-stripe writes);
2. tolerate a single disk failure transparently (degraded reads);
3. survive a correlated triple failure (system-upgrade scenario from the
   paper's §II-D: >90% of data-center failures are upgrades, no data lost);
4. lose m+1 = 5 disks — the maximum any-pattern guarantee — and recover
   everything through multi-failure decode;
5. rebuild a replaced disk and return to a clean state.
"""

import numpy as np

from repro.codes import make_lrc
from repro.store import BlockStore, ObjectStore


def main() -> None:
    lrc = make_lrc(10, 2, 4)
    blocks = BlockStore(lrc, "ec-frm", element_size=32 * 1024)
    store = ObjectStore(blocks)
    rng = np.random.default_rng(42)

    print(f"cluster: {lrc.describe()} in EC-FRM form on {lrc.n} disks "
          f"(tolerates any {lrc.fault_tolerance} failures, "
          f"{lrc.storage_overhead:.2f}x overhead)")

    # 1. ingest
    objects = {}
    for i in range(12):
        name = f"shard-{i:03d}.dat"
        data = rng.integers(0, 256, size=int(rng.integers(50_000, 400_000)), dtype=np.uint8).tobytes()
        store.put(name, data)
        objects[name] = data
    total = sum(len(v) for v in objects.values())
    print(f"ingested {len(objects)} objects, {total:,} bytes")

    # 2. single failure — the paper's degraded-read experiment
    blocks.array.fail_disk(7)
    for name, data in objects.items():
        assert store.get(name) == data
    print("disk 7 down: all objects readable via local-group repair")
    blocks.array.restore_disk(7, wipe=False)

    # 3. correlated triple failure (upgrade of one rack)
    for d in (2, 3, 4):
        blocks.array.fail_disk(d)
    sample = list(objects)[0]
    got = blocks.read_degraded_multi(store.manifest(sample).offset, len(objects[sample]))
    assert got == objects[sample]
    print("disks 2,3,4 down: multi-failure decode still byte-exact")
    for d in (2, 3, 4):
        blocks.array.restore_disk(d, wipe=False)

    # 4. the any-(m+1) guarantee: 5 concurrent losses
    victims = [0, 5, 9, 12, 15]
    for d in victims:
        blocks.array.fail_disk(d)
    for name, data in objects.items():
        m = store.manifest(name)
        assert blocks.read_degraded_multi(m.offset, m.length) == data
    print(f"disks {victims} down (m+1 = {lrc.m + 1}): every object recovered")
    for d in victims[1:]:
        blocks.array.restore_disk(d, wipe=False)

    # 5. rebuild the remaining dead disk onto a replacement
    rebuilt = blocks.rebuild_disk(victims[0])
    for name, data in objects.items():
        assert store.get(name) == data
    print(f"disk {victims[0]} rebuilt ({rebuilt} elements); cluster healthy, "
          "all checksums verified")


if __name__ == "__main__":
    main()
