"""Extension bench: the open-loop request pipeline.

The paper's concurrency experiments are closed-loop: a fixed window of
requests in flight, so a slow system throttles its own offered load.
This bench drives the same store *open-loop* — arrivals at a configured
rate regardless of completion — and measures the three things the
pipeline exists for:

* **closed vs open loop**: the closed-loop driver hides queueing delay
  that the open-loop tail (p99/p999) exposes at the same offered work;
* **hedging ablation**: with one 6x straggler in the array, racing a
  parity-reconstruction plan against the laggard collapses the p999 —
  the headline acceptance criterion (hedged p999 < unhedged p999 at the
  same arrival rate and seed);
* **overload**: above saturation, admission control keeps the wait queue
  bounded and sheds the rest instead of growing an unbounded backlog.

Writes ``results/open_loop.json``.
"""

import os

import pytest

from conftest import run_once, write_results_json

from repro import open_store
from repro.engine import (
    AdmissionController,
    HedgeConfig,
    OpenLoopWorkload,
    RequestPipeline,
    simulate_concurrent,
)
from repro.faults import StragglerDetector

SCALE = float(os.environ.get("ECFRM_TRIAL_SCALE", "1.0"))
REQUESTS = max(200, int(2000 * SCALE))
SEED = int(os.environ.get("ECFRM_PIPELINE_SEED", "2015"))
RATE = 120.0
ELEMENT = 64
ROWS = 64


def make_service(straggler_factor=None):
    import numpy as np

    svc = open_store("rs-6-3", "ec-frm", element_size=ELEMENT)
    rng = np.random.default_rng(SEED)
    data = rng.integers(
        0, 256, size=ROWS * svc.store.row_bytes, dtype=np.uint8
    ).tobytes()
    svc.store.append(data)
    if straggler_factor is not None:
        svc.store.array[2].slowdown = straggler_factor
    return svc


def workload(svc, *, rate=RATE, requests=REQUESTS, zipf=1.4):
    return OpenLoopWorkload(
        svc.store.user_bytes,
        requests=requests,
        rate_rps=rate,
        min_bytes=ELEMENT // 4,
        max_bytes=4 * ELEMENT,
        zipf_s=zipf,
        seed=SEED,
    )


def open_loop_run(svc, wl, *, hedged=False, admission=None):
    pipe = RequestPipeline(
        [svc],
        hedge=HedgeConfig(enabled=hedged, multiplier=2.0),
        detector=StragglerDetector() if hedged else None,
        admission=admission,
        materialize=False,
    )
    return pipe.run(wl)


def tail_ms(result):
    return {
        q: round(result.latency.quantile(p) * 1e3, 3)
        for q, p in (("p50", 0.5), ("p99", 0.99), ("p999", 0.999))
    }


@pytest.mark.benchmark(group="open-loop")
def test_open_loop_pipeline(benchmark):
    def run():
        out = {}

        # -- closed vs open loop, same requests ------------------------
        svc = make_service()
        wl = workload(svc)
        plans = [svc.plan(off, ln) for _, off, ln in wl]
        closed = simulate_concurrent(
            plans, svc.store.array.model, queue_depth=16
        )
        open_r = open_loop_run(svc, wl)
        out["closed_vs_open"] = {
            "closed_mean_latency_ms": round(closed.mean_latency_s * 1e3, 3),
            "open": {**tail_ms(open_r), "completed": open_r.completed},
            "coalesced": open_r.coalesced,
        }

        # -- hedging ablation under a 6x straggler ---------------------
        ablation = {}
        for hedged in (False, True):
            svc = make_service(straggler_factor=6.0)
            r = open_loop_run(svc, workload(svc), hedged=hedged)
            ablation["hedged" if hedged else "unhedged"] = {
                **tail_ms(r),
                "hedges_launched": r.hedges_launched,
                "hedges_won": r.hedges_won,
                "hedges_wasted": r.hedges_wasted,
            }
        out["hedging_ablation"] = ablation

        # -- arrival-rate sweep (hedged, straggler) --------------------
        sweep = []
        for rate in (60.0, 120.0, 240.0):
            svc = make_service(straggler_factor=6.0)
            r = open_loop_run(
                svc, workload(svc, rate=rate), hedged=True
            )
            sweep.append({"rate_rps": rate, **tail_ms(r)})
        out["rate_sweep"] = sweep

        # -- overload: admission bounds the queue ----------------------
        svc = make_service()
        over = open_loop_run(
            svc,
            workload(svc, rate=2000.0),
            admission=AdmissionController(max_inflight=32, queue_limit=64),
        )
        out["overload"] = {
            "arrived": over.arrived,
            "completed": over.completed,
            "rejected": over.rejected,
            "peak_queue_depth": over.peak_queue_depth,
            "queue_limit": 64,
        }
        return out

    results = run_once(benchmark, run)

    print()
    cvo = results["closed_vs_open"]
    print(f"  closed-loop mean latency : {cvo['closed_mean_latency_ms']:8.3f} ms")
    print(
        f"  open-loop   p50/p99/p999 : {cvo['open']['p50']:8.3f} /"
        f" {cvo['open']['p99']:8.3f} / {cvo['open']['p999']:8.3f} ms"
        f"  (coalesced {cvo['coalesced']})"
    )
    ab = results["hedging_ablation"]
    for name in ("unhedged", "hedged"):
        r = ab[name]
        print(
            f"  straggler {name:8s} p999  : {r['p999']:8.3f} ms"
            f"  (hedges {r['hedges_won']}/{r['hedges_launched']} won)"
        )
    ov = results["overload"]
    print(
        f"  overload: {ov['completed']} served, {ov['rejected']} shed,"
        f" peak queue {ov['peak_queue_depth']}/{ov['queue_limit']}"
    )

    benchmark.extra_info.update(results)
    write_results_json(
        "open_loop",
        {
            "config": {
                "requests": REQUESTS,
                "rate_rps": RATE,
                "seed": SEED,
                "element_size": ELEMENT,
                "straggler_factor": 6.0,
                "zipf_s": 1.4,
            },
            **results,
        },
    )

    # acceptance: hedging improves the p999 under the straggler schedule
    # at a fixed arrival rate
    assert ab["hedged"]["p999"] < ab["unhedged"]["p999"]
    assert ab["hedged"]["hedges_won"] > 0
    # admission control bounds the queue at overload rates
    assert ov["peak_queue_depth"] <= ov["queue_limit"]
    assert ov["completed"] + ov["rejected"] == ov["arrived"]
