"""Extension bench: bottleneck-aware repair selection on degraded reads.

The paper's Figure 7(c) shows the naive repair choice creating a 3-access
hotspot on an EC-FRM degraded read.  This bench replays the paper's
degraded workload with the optimizing planner and measures how much
degraded read speed it recovers on top of EC-FRM — the natural next step
the paper's §V-A analysis points at.
"""

import pytest

from conftest import run_once

from repro.codes import make_lrc, make_rs
from repro.engine import plan_degraded_read, plan_degraded_read_optimized, simulate_plan
from repro.harness.experiment import ExperimentConfig
from repro.harness.metrics import improvement_pct, summarize
from repro.layout import FRMPlacement


def run_pair(code, trials=2000):
    cfg = ExperimentConfig(degraded_trials=trials)
    placement = FRMPlacement(code)
    workload = cfg.degraded_workload(code)
    naive_speeds, opt_speeds = [], []
    naive_max, opt_max = [], []
    for trial in workload:
        a = plan_degraded_read(placement, trial.request, trial.failed_disk, cfg.element_size)
        b = plan_degraded_read_optimized(
            placement, trial.request, trial.failed_disk, cfg.element_size
        )
        naive_speeds.append(simulate_plan(a, cfg.disk_model).speed_mib_s)
        opt_speeds.append(simulate_plan(b, cfg.disk_model).speed_mib_s)
        naive_max.append(a.max_disk_load)
        opt_max.append(b.max_disk_load)
    return (
        summarize(naive_speeds),
        summarize(opt_speeds),
        summarize([float(v) for v in naive_max]),
        summarize([float(v) for v in opt_max]),
    )


@pytest.mark.benchmark(group="optimizing-planner")
@pytest.mark.parametrize(
    "code", [make_rs(6, 3), make_lrc(6, 2, 2)], ids=lambda c: c.describe()
)
def test_optimized_degraded_reads(benchmark, code):
    naive_speed, opt_speed, naive_max, opt_max = run_once(benchmark, run_pair, code)
    gain = improvement_pct(opt_speed.mean, naive_speed.mean)
    print(
        f"\n{code.describe()} EC-FRM degraded reads: naive {naive_speed.mean:.1f} "
        f"-> optimized {opt_speed.mean:.1f} MiB/s ({gain:+.1f}%), "
        f"mean bottleneck {naive_max.mean:.3f} -> {opt_max.mean:.3f}"
    )
    benchmark.extra_info["gain_pct"] = round(gain, 2)

    # the optimizer never hurts and visibly flattens the bottleneck
    assert opt_speed.mean >= naive_speed.mean
    assert opt_max.mean <= naive_max.mean
    assert gain > 1.0  # a real, measurable improvement
