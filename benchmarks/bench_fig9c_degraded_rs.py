"""Figure 9(c): degraded read speed — RS family.

Paper result: EC-FRM-RS gains 9.1%-9.9% over standard RS; against rotated
RS it is within a few percent either way (-2.9% at k=6 ... +4.7% at k=10).
"""

import pytest

from conftest import attach_series, run_once

from repro.harness.metrics import improvement_pct
from repro.harness.paperfigs import figure9c
from repro.harness.report import render_improvements


@pytest.mark.benchmark(group="figure9-speed")
def test_fig9c_degraded_speed_rs(benchmark, config):
    table = run_once(benchmark, figure9c, config)
    print()
    print(table.render())
    print(render_improvements(table, "EC-FRM-RS", {"RS": "standard RS", "R-RS": "rotated RS"}))
    attach_series(benchmark, table)

    for x in table.x_labels:
        frm = table.value("EC-FRM-RS", x)
        std = table.value("RS", x)
        gain = improvement_pct(frm, std)
        # paper band 9.1-9.9%; allow the simulator a wider margin
        assert 4.0 <= gain <= 20.0, (x, gain)
        # degraded gains are much smaller than normal-read gains — the
        # paper's "the improved range will be less than that on normal
        # reads" (§V-A)
        assert gain < 25.0
