"""Cross-validation: exact analytic model vs Monte Carlo simulator.

Two independent implementations of the Figure 8/9 quantities — a
phase-enumeration expectation and the sampled experiment harness — must
agree within sampling noise.  Disagreement would indicate a bug in
either; agreement certifies both.
"""

import pytest

from conftest import run_once

from repro.analysis import predict_degraded_cost, predict_normal_speed, speed_ratio_bound
from repro.codes import make_lrc, make_rs
from repro.harness.experiment import (
    ExperimentConfig,
    run_degraded_read_experiment,
    run_normal_read_experiment,
)
from repro.layout import FRMPlacement, RotatedPlacement, StandardPlacement


@pytest.mark.benchmark(group="analytic")
@pytest.mark.parametrize(
    "placement_cls", [StandardPlacement, RotatedPlacement, FRMPlacement],
    ids=["standard", "rotated", "ec-frm"],
)
def test_normal_speed_agreement(benchmark, placement_cls):
    code = make_lrc(6, 2, 2)
    placement = placement_cls(code)
    cfg = ExperimentConfig(normal_trials=3000, address_space_rows=1500)

    def run():
        sim = run_normal_read_experiment(placement, cfg)
        exact = predict_normal_speed(placement, cfg.disk_model, cfg.element_size)
        return sim, exact

    sim, exact = run_once(benchmark, run)
    err = abs(sim.mean_speed - exact.mean_speed_mib_s) / exact.mean_speed_mib_s
    print(
        f"\n{placement.name}: simulated {sim.mean_speed:.1f} vs exact "
        f"{exact.mean_speed_mib_s:.1f} MiB/s ({err * 100:.2f}% apart)"
    )
    benchmark.extra_info["simulated"] = round(sim.mean_speed, 2)
    benchmark.extra_info["exact"] = round(exact.mean_speed_mib_s, 2)
    assert err < 0.03


@pytest.mark.benchmark(group="analytic")
def test_degraded_cost_agreement(benchmark):
    code = make_rs(6, 3)
    placement = StandardPlacement(code)
    cfg = ExperimentConfig(degraded_trials=5000, address_space_rows=1500)

    def run():
        sim = run_degraded_read_experiment(placement, cfg)
        return sim, predict_degraded_cost(placement)

    sim, exact = run_once(benchmark, run)
    print(f"\nsimulated cost {sim.read_cost.mean:.4f} vs exact {exact:.4f}")
    assert sim.read_cost.mean == pytest.approx(exact, rel=0.02)


@pytest.mark.benchmark(group="analytic")
def test_closed_form_explains_figure8(benchmark):
    """ceil(L/k)/ceil(L/n), averaged over the workload sizes, predicts the
    measured EC-FRM/standard speed ratio to within a few percent."""
    code = make_lrc(6, 2, 2)
    cfg = ExperimentConfig(normal_trials=3000)

    def run():
        std = run_normal_read_experiment(StandardPlacement(code), cfg).mean_speed
        frm = run_normal_read_experiment(FRMPlacement(code), cfg).mean_speed
        return frm / std

    measured_ratio = run_once(benchmark, run)
    # closed form: average over L of the per-size speed ratio is NOT the
    # ratio of averages, so compare against the per-size harmonic pattern:
    sizes = range(1, 21)
    predicted = sum(speed_ratio_bound(6, 10, L) for L in sizes) / len(list(sizes))
    print(f"\nmeasured ratio {measured_ratio:.3f}, closed-form mean {predicted:.3f}")
    # the two averages differ structurally; same ballpark is the claim
    assert abs(measured_ratio - predicted) / predicted < 0.15
