"""Extension bench: vertical codes through the full read path.

Quantifies the paper's §III trade-off argument end to end.  X-Code runs
through the same planners and disk model as the paper's codes:

* normal reads — X-Code matches EC-FRM's all-disk spread (that was the
  vertical codes' selling point the paper wants to inherit);
* degraded reads — X-Code's long diagonal chains (p-2 helpers per lost
  element) cost more than LRC's short local groups, and its rigid prime-p
  geometry and RAID-6-only tolerance are the §II-B limitations that keep
  vertical codes out of cloud deployments.
"""

import pytest

from conftest import run_once

from repro.codes import make_lrc, make_xcode
from repro.engine import (
    plan_degraded_read_multi,
    plan_normal_read,
    simulate_plan,
)
from repro.harness.experiment import ExperimentConfig
from repro.harness.metrics import summarize
from repro.layout import FRMPlacement, GridPlacement
from repro.workloads import RandomDegradedWorkload, RandomReadWorkload


def run_form(placement, element_size, trials=800):
    normal = RandomReadWorkload(address_space=600 * placement.code.k, trials=trials, seed=7)
    degraded = RandomDegradedWorkload(
        address_space=600 * placement.code.k,
        num_disks=placement.num_disks,
        trials=trials,
        seed=8,
    )
    cfg = ExperimentConfig()
    n_speeds = []
    for request in normal:
        plan = plan_normal_read(placement, request, element_size)
        n_speeds.append(simulate_plan(plan, cfg.disk_model).speed_mib_s)
    d_speeds, d_costs = [], []
    for trial in degraded:
        plan = plan_degraded_read_multi(
            placement, trial.request, [trial.failed_disk], element_size
        )
        d_speeds.append(simulate_plan(plan, cfg.disk_model).speed_mib_s)
        d_costs.append(plan.read_cost)
    return (
        summarize(n_speeds).mean,
        summarize(d_speeds).mean,
        summarize(d_costs).mean,
    )


@pytest.mark.benchmark(group="vertical-read-path")
def test_xcode_vs_ecfrm_full_path(benchmark):
    MiB = 1024 * 1024

    def run():
        xcode = GridPlacement(make_xcode(5))
        ecfrm = FRMPlacement(make_lrc(6, 2, 2))
        return {
            "x-code(5 disks)": run_form(xcode, MiB),
            "ec-frm-lrc(10 disks)": run_form(ecfrm, MiB),
        }

    results = run_once(benchmark, run)
    print()
    for name, (n, d, c) in results.items():
        print(f"  {name:22s}: normal {n:6.1f} MiB/s  degraded {d:6.1f} MiB/s  cost {c:.3f}")
    benchmark.extra_info["results"] = {
        k: [round(v, 3) for v in vals] for k, vals in results.items()
    }

    xn, xd, xc = results["x-code(5 disks)"]
    fn, fd, fc = results["ec-frm-lrc(10 disks)"]
    # X-Code's degraded cost exceeds LRC-based EC-FRM's: diagonal chains
    # read p-2 helpers where LRC reads its local group and amortizes
    # against the request.
    assert xc > fc
    # the per-disk normal-read spread is equivalent (ceil(L/n) both), so
    # speed differences track the disk counts (10 vs 5 spindles)
    assert fn > xn


@pytest.mark.benchmark(group="vertical-read-path")
def test_xcode_normal_spread_equals_frm_bound(benchmark):
    """Per-request bottleneck loads: X-Code == ceil(L/5), the same law
    EC-FRM obeys on its 10 disks."""
    import math

    def run():
        p = GridPlacement(make_xcode(5))
        out = {}
        for L in (1, 4, 5, 8, 10, 15, 20):
            plan = plan_normal_read(p, ReadRequest(0, L), 1)
            out[L] = plan.max_disk_load
        return out

    from repro.engine import ReadRequest

    loads = run_once(benchmark, run)
    for L, got in loads.items():
        assert got == math.ceil(L / 5), L
