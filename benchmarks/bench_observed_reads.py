"""Benchmark: tracing overhead and the per-stage latency breakdown.

Runs the same random-read workload three times on geometrically identical
stores:

* **baseline** — plain store, no tracer, no registry (pre-observability
  construction path);
* **disabled** — tracer object present but disabled (the production
  default): must cost ~nothing and produce byte-identical payloads *and*
  identical ``DiskStats`` to the baseline;
* **enabled**  — full span recording: must stay within a small overhead
  envelope while yielding the per-stage breakdown.

A fourth traced run under a degraded array (one disk crashed) quantifies
*where* degraded reads spend their extra time — the decode/heal stages
that simply do not exist on the normal path.  Results are printed,
attached to ``benchmark.extra_info`` and exported to
``results/latency_breakdown.json``.

Overhead acceptance: enabled < 5% on the batch wall-clock, disabled ~0%.
Single-run wall-clock deltas on a sub-second workload are noisy, so the
assertion uses the best of several repeats (standard micro-benchmark
practice) with a generous CI-safe envelope; the printed numbers are what
EXPERIMENTS.md reports.
"""

import time

import numpy as np
import pytest

from conftest import run_once, write_results_json

from repro.codes import make_rs
from repro.engine import ReadService
from repro.obs import MetricsRegistry, Tracer, latency_breakdown
from repro.store import BlockStore

ELEMENT_SIZE = 4096
ROWS = 48
REQUESTS = 150
SPAN = 4 * ELEMENT_SIZE
QUEUE_DEPTH = 8
SEED = 2015
REPEATS = 5


def _build(tracer=None, registry=None):
    code = make_rs(6, 3)
    store = BlockStore(
        code, "ec-frm", element_size=ELEMENT_SIZE,
        tracer=tracer, registry=registry,
    )
    rng = np.random.default_rng(SEED)
    data = rng.integers(0, 256, size=ROWS * store.row_bytes, dtype=np.uint8).tobytes()
    store.append(data)
    svc = ReadService(store, cache_capacity=2 * REQUESTS)
    return svc, data


def _workload(store):
    rng = np.random.default_rng(42)
    return [
        (int(rng.integers(0, store.user_bytes - SPAN)), SPAN)
        for _ in range(REQUESTS)
    ]


def _disk_stats(store):
    return [
        (d.stats.accesses, d.stats.bytes_read, d.stats.busy_time_s, d.failed)
        for d in store.array.disks
    ]


def _timed_run(tracer=None, registry=None, fail_disk=None):
    """Best-of-REPEATS wall-clock of the batch, plus last run's artifacts."""
    best = float("inf")
    svc = payloads = None
    for _ in range(REPEATS):
        svc, data = _build(tracer=tracer, registry=registry)
        if fail_disk is not None:
            svc.store.array.fail_disk(fail_disk)
        ranges = _workload(svc.store)
        if tracer is not None:
            tracer.reset()
        t0 = time.perf_counter()
        result = svc.submit(ranges, queue_depth=QUEUE_DEPTH)
        best = min(best, time.perf_counter() - t0)
        expect = [data[o : o + n] for o, n in ranges]
        if fail_disk is None:
            assert result.payloads == expect, "payloads diverged"
        payloads = result.payloads
    return best, svc, payloads


def sweep():
    base_s, base_svc, base_payloads = _timed_run()
    off_s, off_svc, off_payloads = _timed_run(
        tracer=Tracer(enabled=False), registry=MetricsRegistry()
    )
    on_tracer = Tracer(enabled=True)
    on_s, on_svc, on_payloads = _timed_run(
        tracer=on_tracer, registry=MetricsRegistry()
    )

    # the observability plane must not change what the system *does*
    assert off_payloads == base_payloads == on_payloads
    assert _disk_stats(off_svc.store) == _disk_stats(base_svc.store)
    assert _disk_stats(on_svc.store) == _disk_stats(base_svc.store)

    normal = latency_breakdown(on_tracer)

    deg_tracer = Tracer(enabled=True)
    _, deg_svc, _ = _timed_run(
        tracer=deg_tracer, registry=MetricsRegistry(), fail_disk=1
    )
    degraded = latency_breakdown(deg_tracer)

    return {
        "wall_s": {"baseline": base_s, "disabled": off_s, "enabled": on_s},
        "overhead_pct": {
            "disabled": (off_s / base_s - 1.0) * 100.0,
            "enabled": (on_s / base_s - 1.0) * 100.0,
        },
        "normal": normal,
        "degraded": degraded,
    }


@pytest.mark.benchmark(group="observability")
def test_tracing_overhead(benchmark):
    results = run_once(benchmark, sweep)
    oh = results["overhead_pct"]
    print()
    print(
        f"batch wall-clock: baseline {results['wall_s']['baseline'] * 1e3:.1f} ms, "
        f"tracer disabled {oh['disabled']:+.2f}%, enabled {oh['enabled']:+.2f}%"
    )
    for name in ("normal", "degraded"):
        b = results[name]
        stages = ", ".join(
            f"{k}={v['total'] * 1e3:.2f}ms" for k, v in sorted(
                b["stages"].items(), key=lambda kv: -kv[1]["total"]
            ) if v["clock"] == "wall"
        )
        print(
            f"{name:9s}: {b['requests']['count']} requests, "
            f"coverage {b['consistency']['coverage']:.2f} | {stages}"
        )
    benchmark.extra_info.update(
        {"wall_s": results["wall_s"], "overhead_pct": oh}
    )
    write_results_json("latency_breakdown", results)

    # stage sums must stay within the batch wall-clock (consistency)
    for name in ("normal", "degraded"):
        c = results[name]["consistency"]
        assert 0.0 < c["stage_wall_total_s"] <= c["request_wall_total_s"] * 1.001
    # degraded reads pay reconstruction stages normal reads never enter
    assert "decode" in results["degraded"]["stages"]
    assert "decode" not in results["normal"]["stages"]
    # overhead envelope: single-process CI boxes jitter by a few percent,
    # so the hard gate is loose; the target (<5% / ~0%) is what the
    # printed best-of numbers demonstrate on a quiet machine.
    assert oh["disabled"] < 10.0
    assert oh["enabled"] < 25.0
