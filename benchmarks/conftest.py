"""Shared configuration for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper at the paper's
own trial counts (2000 normal reads, 5000 degraded reads), prints the
paper-style series table plus the headline improvement lines, attaches the
series to ``benchmark.extra_info``, and asserts the *shape* acceptance
criteria from DESIGN.md §6.

Set ``ECFRM_TRIAL_SCALE`` (e.g. ``0.1``) to scale trial counts down for a
quick pass.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.harness import ExperimentConfig


def paper_config() -> ExperimentConfig:
    """The paper's experiment configuration, optionally scaled by env."""
    scale = float(os.environ.get("ECFRM_TRIAL_SCALE", "1.0"))
    if not 0.0 < scale <= 10.0:
        raise ValueError(f"ECFRM_TRIAL_SCALE out of range: {scale}")
    return ExperimentConfig(
        normal_trials=max(50, int(2000 * scale)),
        degraded_trials=max(50, int(5000 * scale)),
    )


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return paper_config()


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)


def attach_series(benchmark, table):
    """Record the reproduced series in the benchmark's JSON metadata."""
    benchmark.extra_info["title"] = table.title
    benchmark.extra_info["x_labels"] = list(table.x_labels)
    benchmark.extra_info["series"] = {k: list(v) for k, v in table.series.items()}


def write_results_json(name: str, payload: dict) -> Path:
    """Persist a benchmark's result payload as ``results/<name>.json``.

    Same output directory the ``sweep`` CLI command uses, so ad-hoc bench
    output and the figure exports live side by side.  Override the
    directory with ``ECFRM_RESULTS_DIR``.  Every file is stamped with the
    obs snapshot ``schema_version`` so result files are self-describing,
    like the metrics snapshot.  A ``schema_version`` already present in
    ``payload`` must match :data:`repro.SCHEMA_VERSION` — a mismatch means
    the payload embeds a snapshot from a different schema generation, and
    silently re-stamping it would hide the drift from result consumers, so
    it is rejected instead.
    """
    from repro.obs import SCHEMA_VERSION

    declared = payload.get("schema_version", SCHEMA_VERSION)
    if declared != SCHEMA_VERSION:
        raise ValueError(
            f"results/{name}.json declares schema_version {declared!r} but "
            f"repro.SCHEMA_VERSION is {SCHEMA_VERSION!r}; regenerate the "
            "payload against the current snapshot schema"
        )
    out_dir = Path(os.environ.get("ECFRM_RESULTS_DIR", "results"))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.json"
    stamped = {"schema_version": SCHEMA_VERSION, **payload}
    path.write_text(json.dumps(stamped, indent=2, sort_keys=True) + "\n")
    return path
