"""Extension bench: stragglers — a slow disk in the array.

The paper assumes homogeneous disks; real fleets always carry a straggler
(aging spindle, background scrub, noisy neighbour).  This bench puts one
2x-slower disk in the array and measures both sides of the trade-off:

* EC-FRM touches *more* disks per read (that is the whole point), so it
  meets the straggler more often;
* but it puts only ceil(L/n) accesses on it, while the standard layout —
  when the straggler is a data disk — hammers it with ceil(L/k).

Net effect: EC-FRM still wins, by a smaller margin; with the straggler
parked on a parity disk, the standard form never meets it at all on
normal reads — the one scenario where standard narrows the gap.
"""

import pytest

from conftest import run_once

from repro.codes import make_lrc
from repro.disks import SAVVIO_10K3, DiskModel
from repro.engine import plan_normal_read, simulate_plan
from repro.harness.experiment import ExperimentConfig
from repro.harness.metrics import improvement_pct, summarize
from repro.layout import FRMPlacement, StandardPlacement

MiB = 1024 * 1024
SLOW = DiskModel(
    seek_time_s=SAVVIO_10K3.seek_time_s * 2,
    rotational_latency_s=SAVVIO_10K3.rotational_latency_s * 2,
    transfer_rate_bps=SAVVIO_10K3.transfer_rate_bps / 2,
    sequential_free=False,
)


def mean_speed(placement, straggler_disk):
    models = {d: SAVVIO_10K3 for d in range(placement.num_disks)}
    if straggler_disk is not None:
        models[straggler_disk] = SLOW
    cfg = ExperimentConfig(normal_trials=800)
    speeds = [
        simulate_plan(
            plan_normal_read(placement, r, cfg.element_size), models
        ).speed_mib_s
        for r in cfg.normal_workload(placement.code)
    ]
    return summarize(speeds).mean


@pytest.mark.benchmark(group="straggler")
def test_straggler_impact(benchmark):
    code = make_lrc(6, 2, 2)

    def run():
        std, frm = StandardPlacement(code), FRMPlacement(code)
        return {
            "healthy": (mean_speed(std, None), mean_speed(frm, None)),
            "straggler on data disk 0": (mean_speed(std, 0), mean_speed(frm, 0)),
            "straggler on parity disk 9": (mean_speed(std, 9), mean_speed(frm, 9)),
        }

    results = run_once(benchmark, run)
    print()
    for scenario, (s, f) in results.items():
        print(
            f"  {scenario:28s}: std {s:6.1f}  ec-frm {f:6.1f} MiB/s "
            f"({improvement_pct(f, s):+5.1f}%)"
        )
    benchmark.extra_info["speeds"] = {
        k: [round(x, 1) for x in v] for k, v in results.items()
    }

    # EC-FRM wins in every scenario...
    for s, f in results.values():
        assert f > s
    # ...and a data-disk straggler hurts the standard layout more than
    # EC-FRM (ceil(L/k) vs ceil(L/n) accesses land on it)
    std_drop = results["healthy"][0] / results["straggler on data disk 0"][0]
    frm_drop = results["healthy"][1] / results["straggler on data disk 0"][1]
    assert std_drop > frm_drop
    # a parity-disk straggler is invisible to standard normal reads but
    # not to EC-FRM: the one case where the gap narrows
    gap_healthy = improvement_pct(results["healthy"][1], results["healthy"][0])
    gap_parity = improvement_pct(
        results["straggler on parity disk 9"][1],
        results["straggler on parity disk 9"][0],
    )
    assert gap_parity < gap_healthy
