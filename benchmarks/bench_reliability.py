"""Extension bench: reliability (MTTDL) from measured rebuild times.

Ties the performance story back to the paper's opening sentence: erasure
coding is about reliability.  Rebuild times come from the actual rebuild
planner per form; the Markov model turns them into MTTDL.  EC-FRM's
faster (load-aware) rebuild shortens the re-protection window and buys
measurable reliability at identical storage overhead.
"""

import pytest

from conftest import run_once

from repro.codes import make_lrc, make_rs
from repro.disks import SAVVIO_10K3
from repro.layout import make_placement
from repro.reliability import ReliabilityParams, mttdl_markov, mttdl_monte_carlo, rebuild_hours

MiB = 1024 * 1024
DISK_MTTF_HOURS = 1.0e6  # ~114 years, a datacenter-class spindle
ROWS = 200               # rebuild workload size per disk


@pytest.mark.benchmark(group="reliability")
@pytest.mark.parametrize("code", [make_rs(6, 3), make_lrc(6, 2, 2)], ids=lambda c: c.describe())
def test_mttdl_by_form(benchmark, code):
    def run():
        out = {}
        for form in ("standard", "ec-frm"):
            placement = make_placement(form, code)
            hours = rebuild_hours(placement, SAVVIO_10K3, MiB, ROWS)
            p = ReliabilityParams(
                num_disks=code.n,
                fault_tolerance=code.fault_tolerance,
                disk_mttf_hours=DISK_MTTF_HOURS,
                rebuild_hours=hours,
            )
            out[form] = (hours * 3600.0, mttdl_markov(p))
        return out

    results = run_once(benchmark, run)
    print()
    for form, (rebuild_s, mttdl) in results.items():
        print(f"  {form:9s}: rebuild {rebuild_s:6.2f}s -> MTTDL {mttdl:.3e} hours")
    benchmark.extra_info["mttdl_hours"] = {k: v[1] for k, v in results.items()}

    assert results["ec-frm"][0] <= results["standard"][0] * 1.01
    assert results["ec-frm"][1] >= results["standard"][1] * 0.99


@pytest.mark.benchmark(group="reliability")
def test_markov_vs_monte_carlo(benchmark):
    """The two MTTDL implementations agree (accelerated parameters)."""
    p = ReliabilityParams(10, 3, disk_mttf_hours=100.0, rebuild_hours=10.0)

    def run():
        return mttdl_markov(p), mttdl_monte_carlo(p, trials=800, seed=7)

    exact, mc = run_once(benchmark, run)
    print(f"\nmarkov {exact:.1f} h vs monte-carlo {mc:.1f} h")
    assert mc == pytest.approx(exact, rel=0.15)
