"""Figure 8(a): normal read speed — RS vs R-RS vs EC-FRM-RS.

Paper result: EC-FRM-RS gains 19.2%-33.9% over standard RS and
17.7%-18.1% over rotated RS, across (6,3), (8,4), (10,5).

Reproduced shape (asserted): EC-FRM-RS wins clearly over both baselines
at every parameter, with gains over standard in the paper's tens-of-
percent band.  Known divergence: in our serial chunk-store disk model the
rotated form lands slightly *below* standard (the paper measured it
slightly above); see EXPERIMENTS.md for the analysis.
"""

import pytest

from conftest import attach_series, run_once

from repro.harness.metrics import improvement_pct
from repro.harness.paperfigs import figure8a
from repro.harness.report import render_improvements


@pytest.mark.benchmark(group="figure8")
def test_fig8a_normal_read_speed_rs(benchmark, config):
    table = run_once(benchmark, figure8a, config)
    print()
    print(table.render())
    print(render_improvements(table, "EC-FRM-RS", {"RS": "standard RS", "R-RS": "rotated RS"}))
    attach_series(benchmark, table)

    for x in table.x_labels:
        frm = table.value("EC-FRM-RS", x)
        std = table.value("RS", x)
        rot = table.value("R-RS", x)
        # EC-FRM wins over both baselines at every parameter.
        assert frm > std and frm > rot, x
        # gains over standard in the paper's band (±10 pct-points slack).
        gain = improvement_pct(frm, std)
        assert 10.0 <= gain <= 45.0, (x, gain)
