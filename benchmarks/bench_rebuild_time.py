"""Extension bench: whole-disk rebuild time across placement forms.

The paper's §II-D second metric (single-failure recovery), measured on
the simulator: rebuild a failed disk holding 120 rows of 1 MiB elements.
EC-FRM's group structure spreads helper reads over all survivors; with
load-aware helper selection (``optimize=True``) its RS rebuild reaches
the balanced-optimum bottleneck and beats the standard form by ~1.3x.
"""

import pytest

from conftest import run_once, write_results_json

from repro.codes import make_lrc, make_rs
from repro.disks import SAVVIO_10K3
from repro.engine import plan_disk_rebuild, rebuild_time_s
from repro.layout import make_placement

MiB = 1024 * 1024
ROWS = 120

# accumulated across parametrized invocations; every test rewrites the
# file with what has been gathered so far, so the final write carries all
_RESULTS = {"config": {"rows": ROWS, "element_bytes": MiB, "disk": "SAVVIO_10K3"}}


def sweep(code):
    out = {}
    for form in ("standard", "rotated", "ec-frm"):
        p = make_placement(form, code)
        times = []
        for failed in range(code.n):
            plan = plan_disk_rebuild(p, failed, ROWS, optimize=True)
            times.append(rebuild_time_s(plan, SAVVIO_10K3, MiB))
        out[form] = sum(times) / len(times)
    return out


@pytest.mark.benchmark(group="rebuild")
@pytest.mark.parametrize("code", [make_rs(6, 3), make_lrc(6, 2, 2)], ids=lambda c: c.describe())
def test_rebuild_time_by_form(benchmark, code):
    times = run_once(benchmark, sweep, code)
    print()
    for form, t in times.items():
        print(f"  {form:9s}: mean rebuild {t:.2f} s over {ROWS} rows")
    benchmark.extra_info["mean_rebuild_s"] = {k: round(v, 3) for k, v in times.items()}
    _RESULTS.setdefault("mean_rebuild_s", {})[code.describe()] = {
        k: round(v, 3) for k, v in times.items()
    }
    write_results_json("rebuild_time", _RESULTS)
    # EC-FRM (optimized) rebuilds at least as fast as the standard form
    assert times["ec-frm"] <= times["standard"] * 1.02


@pytest.mark.benchmark(group="rebuild")
def test_optimized_vs_naive_rebuild(benchmark):
    code = make_rs(6, 3)
    p = make_placement("ec-frm", code)

    def run():
        naive = plan_disk_rebuild(p, 0, ROWS)
        opt = plan_disk_rebuild(p, 0, ROWS, optimize=True)
        return (
            rebuild_time_s(naive, SAVVIO_10K3, MiB),
            rebuild_time_s(opt, SAVVIO_10K3, MiB),
            naive.max_disk_load,
            opt.max_disk_load,
        )

    t_naive, t_opt, load_naive, load_opt = run_once(benchmark, run)
    print(
        f"\nEC-FRM-RS rebuild: naive {t_naive:.2f}s (bottleneck {load_naive}) "
        f"-> optimized {t_opt:.2f}s (bottleneck {load_opt})"
    )
    _RESULTS["optimized_vs_naive"] = {
        "naive_s": round(t_naive, 3),
        "optimized_s": round(t_opt, 3),
        "naive_bottleneck": load_naive,
        "optimized_bottleneck": load_opt,
    }
    write_results_json("rebuild_time", _RESULTS)
    assert t_opt < t_naive
    assert load_opt < load_naive
