"""Ablation: sensitivity of the EC-FRM gain to element size and disk model.

Two regimes bracket the paper's setup:

* small elements -> positioning-dominated service: per-element cost is
  ~constant, so speed tracks 1/max_load and EC-FRM's gain is largest;
* large elements -> transfer-dominated: per-element cost scales with
  bytes; max_load still decides, so the gain persists but the absolute
  speeds converge to the spindle streaming rate times the parallelism.

Also contrasts the chunk-store model (every access random — the paper
default) with a streaming store (adjacent slots free), showing the gain
compresses when the standard layout gets perfect sequential runs.
"""

import pytest

from conftest import run_once

from repro.codes import make_rs
from repro.disks import SAVVIO_10K3, SAVVIO_10K3_STREAMING
from repro.harness.experiment import ExperimentConfig, run_normal_read_experiment
from repro.harness.metrics import improvement_pct
from repro.layout import FRMPlacement, StandardPlacement

KiB = 1024
SIZES = [64 * KiB, 256 * KiB, 1024 * KiB, 4096 * KiB]


def element_size_sweep():
    code = make_rs(6, 3)
    std, frm = StandardPlacement(code), FRMPlacement(code)
    out = {}
    for size in SIZES:
        cfg = ExperimentConfig(normal_trials=400, element_size=size)
        s = run_normal_read_experiment(std, cfg)
        f = run_normal_read_experiment(frm, cfg)
        out[size] = (s.mean_speed, f.mean_speed, improvement_pct(f.mean_speed, s.mean_speed))
    return out


@pytest.mark.benchmark(group="ablation")
def test_gain_vs_element_size(benchmark):
    sweep = run_once(benchmark, element_size_sweep)
    print()
    for size, (s, f, gain) in sweep.items():
        print(f"element {size // KiB:5d} KiB: std {s:7.1f}  ec-frm {f:7.1f} MiB/s  gain {gain:+5.1f}%")
    benchmark.extra_info["sweep"] = {str(k): v for k, v in sweep.items()}

    gains = [v[2] for v in sweep.values()]
    # EC-FRM wins at every element size
    assert all(g > 10.0 for g in gains)
    # positioning-dominated small elements show the largest gain
    assert gains[0] >= gains[-1] - 5.0
    # absolute speeds grow with element size (less positioning per byte)
    speeds = [v[1] for v in sweep.values()]
    assert speeds == sorted(speeds)


def model_sweep():
    code = make_rs(6, 3)
    std, frm = StandardPlacement(code), FRMPlacement(code)
    out = {}
    for name, model in (("chunk", SAVVIO_10K3), ("streaming", SAVVIO_10K3_STREAMING)):
        cfg = ExperimentConfig(normal_trials=400, disk_model=model)
        s = run_normal_read_experiment(std, cfg).mean_speed
        f = run_normal_read_experiment(frm, cfg).mean_speed
        out[name] = improvement_pct(f, s)
    return out


@pytest.mark.benchmark(group="ablation")
def test_gain_vs_store_model(benchmark):
    gains = run_once(benchmark, model_sweep)
    print()
    for name, gain in gains.items():
        print(f"{name:10s} store: EC-FRM normal-read gain {gain:+5.1f}%")
    benchmark.extra_info["gains_pct"] = gains
    # the chunk-store assumption is what reproduces the paper's band;
    # perfect streaming compresses (but does not erase) the gain
    assert gains["chunk"] > gains["streaming"] > 0.0
