"""Figure 9(a): degraded read cost — RS family.

Paper result: the three RS forms differ by less than 0.9% in degraded
read cost (the layout moves accesses around but cannot change how many
helpers an MDS repair needs).
"""

import pytest

from conftest import attach_series, run_once

from repro.harness.paperfigs import figure9a


@pytest.mark.benchmark(group="figure9-cost")
def test_fig9a_degraded_cost_rs(benchmark, config):
    table = run_once(benchmark, figure9a, config)
    print()
    print(table.render(precision=4))
    attach_series(benchmark, table)

    for x in table.x_labels:
        values = [table.value(s, x) for s in ("RS", "R-RS", "EC-FRM-RS")]
        assert all(v >= 1.0 for v in values)
        spread = (max(values) - min(values)) / min(values)
        # paper: <0.9%; allow 3% for workload-sampling noise
        assert spread < 0.03, (x, spread)

    # cost grows with read amplification risk: larger k -> relatively less
    # amplification per request (helpers amortize over bigger reads)
    rs_costs = table.series["RS"]
    assert all(1.0 < v < 1.6 for v in rs_costs)
