"""Extension bench: single-disk recovery I/O (the paper's other metric).

§II-D of the paper names single-failure recovery as the second crucial
metric and cites Xiang et al. (SIGMETRICS'10): hybrid row/diagonal
recovery of an RDP data disk reads ~25% fewer blocks than conventional
all-row recovery.  This bench reproduces the exact numbers for the XOR
array codes in the library.
"""

import pytest

from conftest import run_once, write_results_json

from repro.codes import make_evenodd, make_rdp, make_xcode
from repro.recovery import conventional_recovery_plan, optimal_recovery_plan

# accumulated across parametrized invocations; every test rewrites the
# file with what has been gathered so far, so the final write carries all
_RESULTS = {}


@pytest.mark.benchmark(group="recovery")
@pytest.mark.parametrize("p", [5, 7, 11])
def test_rdp_hybrid_recovery(benchmark, p):
    code = make_rdp(p)

    def run():
        return conventional_recovery_plan(code, 0), optimal_recovery_plan(code, 0)

    conv, opt = run_once(benchmark, run)
    reduction = (1 - opt.io_count / conv.io_count) * 100
    print(
        f"\nRDP(p={p}) data-disk rebuild: conventional {conv.io_count} reads, "
        f"hybrid {opt.io_count} reads ({reduction:.1f}% saved)"
    )
    benchmark.extra_info["conventional"] = conv.io_count
    benchmark.extra_info["optimal"] = opt.io_count
    _RESULTS.setdefault("rdp_hybrid", {})[f"p={p}"] = {
        "conventional_reads": conv.io_count,
        "optimal_reads": opt.io_count,
        "reduction_pct": round(reduction, 1),
    }
    write_results_json("recovery_io", _RESULTS)
    # Xiang et al.'s headline: ~25% reduction
    assert conv.io_count == (p - 1) ** 2
    assert 23.0 <= reduction <= 27.0


@pytest.mark.benchmark(group="recovery")
@pytest.mark.parametrize(
    "code", [make_evenodd(5), make_xcode(5), make_xcode(7)], ids=lambda c: c.describe()
)
def test_other_codes_recovery(benchmark, code):
    def run():
        out = {}
        for failed in range(code.disks):
            conv = conventional_recovery_plan(code, failed)
            opt = optimal_recovery_plan(code, failed)
            out[failed] = (conv.io_count, opt.io_count)
        return out

    results = run_once(benchmark, run)
    print()
    for failed, (c, o) in results.items():
        print(f"  disk {failed}: {c} -> {o} reads")
    _RESULTS.setdefault("other_codes", {})[code.describe()] = {
        str(failed): {"conventional_reads": c, "optimal_reads": o}
        for failed, (c, o) in results.items()
    }
    write_results_json("recovery_io", _RESULTS)
    # optimization never hurts and helps on at least one disk
    assert all(o <= c for c, o in results.values())
    assert any(o < c for c, o in results.values())


@pytest.mark.benchmark(group="recovery")
def test_recovery_load_balance(benchmark):
    """Beyond raw I/O count: the hybrid plan also flattens per-disk load,
    which gates rebuild time the same way max load gates read speed."""
    code = make_rdp(7)

    def run():
        conv = conventional_recovery_plan(code, 0)
        opt = optimal_recovery_plan(code, 0)
        return max(conv.per_disk_loads(code).values()), max(
            opt.per_disk_loads(code).values()
        )

    conv_max, opt_max = run_once(benchmark, run)
    print(f"\nRDP(p=7) rebuild bottleneck: conventional {conv_max}, hybrid {opt_max}")
    _RESULTS["load_balance"] = {
        "code": "rdp(p=7)",
        "conventional_max_load": conv_max,
        "optimal_max_load": opt_max,
    }
    write_results_json("recovery_io", _RESULTS)
    assert opt_max <= conv_max
