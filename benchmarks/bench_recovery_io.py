"""Extension bench: single-disk recovery I/O (the paper's other metric).

§II-D of the paper names single-failure recovery as the second crucial
metric and cites Xiang et al. (SIGMETRICS'10): hybrid row/diagonal
recovery of an RDP data disk reads ~25% fewer blocks than conventional
all-row recovery.  This bench reproduces the exact numbers for the XOR
array codes in the library, then extends the metric to *network* repair
traffic: bytes moved and cross-rack bytes under the rack topology model
(:mod:`repro.net`), comparing the topology-aware minimum-transfer
planner against the conventional k-element plan and the piggybacked RS
variant against plain RS.
"""

import pytest

from conftest import run_once, write_results_json

from repro.codes import make_evenodd, make_rdp, make_xcode
from repro.codes.base import MatrixCode
from repro.codes.registry import parse_code_spec
from repro.net import Topology, score_reads
from repro.recovery import conventional_recovery_plan, optimal_recovery_plan
from repro.store import BlockStore

ELEMENT_SIZE = 4096


@pytest.fixture(scope="module")
def results():
    """Accumulates every test's payload; written exactly once at teardown.

    (Replaces the old module-global accumulate-and-rewrite pattern, which
    rewrote ``results/recovery_io.json`` after every parametrized case.)
    """
    out = {}
    yield out
    write_results_json("recovery_io", out)


@pytest.mark.benchmark(group="recovery")
@pytest.mark.parametrize("p", [5, 7, 11])
def test_rdp_hybrid_recovery(benchmark, results, p):
    code = make_rdp(p)

    def run():
        return conventional_recovery_plan(code, 0), optimal_recovery_plan(code, 0)

    conv, opt = run_once(benchmark, run)
    reduction = (1 - opt.io_count / conv.io_count) * 100
    print(
        f"\nRDP(p={p}) data-disk rebuild: conventional {conv.io_count} reads, "
        f"hybrid {opt.io_count} reads ({reduction:.1f}% saved)"
    )
    benchmark.extra_info["conventional"] = conv.io_count
    benchmark.extra_info["optimal"] = opt.io_count
    results.setdefault("rdp_hybrid", {})[f"p={p}"] = {
        "conventional_reads": conv.io_count,
        "optimal_reads": opt.io_count,
        "reduction_pct": round(reduction, 1),
    }
    # Xiang et al.'s headline: ~25% reduction
    assert conv.io_count == (p - 1) ** 2
    assert 23.0 <= reduction <= 27.0


@pytest.mark.benchmark(group="recovery")
@pytest.mark.parametrize(
    "code", [make_evenodd(5), make_xcode(5), make_xcode(7)], ids=lambda c: c.describe()
)
def test_other_codes_recovery(benchmark, results, code):
    def run():
        out = {}
        for failed in range(code.disks):
            conv = conventional_recovery_plan(code, failed)
            opt = optimal_recovery_plan(code, failed)
            out[failed] = (conv.io_count, opt.io_count)
        return out

    plans = run_once(benchmark, run)
    print()
    for failed, (c, o) in plans.items():
        print(f"  disk {failed}: {c} -> {o} reads")
    results.setdefault("other_codes", {})[code.describe()] = {
        str(failed): {"conventional_reads": c, "optimal_reads": o}
        for failed, (c, o) in plans.items()
    }
    # optimization never hurts and helps on at least one disk
    assert all(o <= c for c, o in plans.values())
    assert any(o < c for c, o in plans.values())


@pytest.mark.benchmark(group="recovery")
def test_recovery_load_balance(benchmark, results):
    """Beyond raw I/O count: the hybrid plan also flattens per-disk load,
    which gates rebuild time the same way max load gates read speed."""
    code = make_rdp(7)

    def run():
        conv = conventional_recovery_plan(code, 0)
        opt = optimal_recovery_plan(code, 0)
        return max(conv.per_disk_loads(code).values()), max(
            opt.per_disk_loads(code).values()
        )

    conv_max, opt_max = run_once(benchmark, run)
    print(f"\nRDP(p=7) rebuild bottleneck: conventional {conv_max}, hybrid {opt_max}")
    results["load_balance"] = {
        "code": "rdp(p=7)",
        "conventional_max_load": conv_max,
        "optimal_max_load": opt_max,
    }
    assert opt_max <= conv_max


def _seeded_store(spec: str, form: str, topology: Topology) -> tuple[BlockStore, bytes]:
    code = parse_code_spec(spec)
    store = BlockStore(code, form, element_size=ELEMENT_SIZE, topology=topology)
    data = bytes((7 * i + 13) % 256 for i in range(code.k * ELEMENT_SIZE * 4))
    store.append(data)
    store.flush()
    return store, data


@pytest.mark.benchmark(group="recovery-net")
def test_topology_aware_lrc_beats_global_set(benchmark, results):
    """Repairing one LRC data element through the topology-aware planner
    moves strictly fewer cross-rack bytes than the conventional global
    k-element set (the local group is rack-aligned, so its repair stays
    inside the failed disk's rack)."""
    # standard form: element e of every row lives on disk e, so the rack
    # map aligns local group A (data 0,1,2 + local parity 6) into rack 0.
    topo = Topology([0, 0, 0, 1, 1, 1, 0, 1, 2, 2])
    store, data = _seeded_store("lrc-6-2-2", "standard", topo)
    code = store.code
    store.array.fail_disk(0)

    def run():
        return store.read(0, ELEMENT_SIZE)  # element 0: lost, repaired

    payload = run_once(benchmark, run)
    assert payload == data[:ELEMENT_SIZE]

    aware = store.net.snapshot()
    global_set = MatrixCode.repair_plan(code, 0)
    global_moved, global_cross = score_reads(
        [(h, 1.0) for h in sorted(global_set)],
        element_rack=lambda h: topo.rack_of(h),
        site_rack=topo.rack_of(0),
        element_size=ELEMENT_SIZE,
    )
    print(
        f"\nlrc-6-2-2 repair of data element 0: topology-aware "
        f"{aware['bytes_moved']} bytes ({aware['cross_rack_bytes']} "
        f"cross-rack) vs global set {global_moved} bytes "
        f"({global_cross} cross-rack)"
    )
    results["topology_lrc"] = {
        "topology": topo.describe(),
        "aware_bytes_moved": aware["bytes_moved"],
        "aware_cross_rack_bytes": aware["cross_rack_bytes"],
        "global_bytes_moved": global_moved,
        "global_cross_rack_bytes": global_cross,
    }
    benchmark.extra_info.update(results["topology_lrc"])
    # the headline acceptance criterion: strictly fewer cross-rack bytes
    assert aware["cross_rack_bytes"] < global_cross
    assert aware["bytes_moved"] <= global_moved


@pytest.mark.benchmark(group="recovery-net")
def test_piggyback_rs_reads_fewer_bytes(benchmark, results):
    """pb-rs-6-3 repairs a lost data element shipping measurably fewer
    bytes than rs-6-3: the piggyback candidate reads (k + |S_t|)/2
    element-equivalents instead of k whole elements."""
    topo = Topology.uniform(9, 3)
    rows = {}
    for spec in ("rs-6-3", "pb-rs-6-3"):
        store, data = _seeded_store(spec, "standard", topo)
        store.array.fail_disk(0)

        def run(s=store):
            return s.read(0, ELEMENT_SIZE)

        payload = run_once(benchmark, run) if spec == "rs-6-3" else run()
        assert payload == data[:ELEMENT_SIZE]
        rows[spec] = store.net.snapshot()
        print(
            f"\n{spec} repair of data element 0: {rows[spec]['bytes_moved']} "
            f"bytes moved ({rows[spec]['cross_rack_bytes']} cross-rack)"
        )

    results["piggyback_vs_rs"] = {
        "topology": topo.describe(),
        "rs_bytes_moved": rows["rs-6-3"]["bytes_moved"],
        "pb_bytes_moved": rows["pb-rs-6-3"]["bytes_moved"],
        "savings_pct": round(
            (1 - rows["pb-rs-6-3"]["bytes_moved"] / rows["rs-6-3"]["bytes_moved"])
            * 100,
            1,
        ),
    }
    benchmark.extra_info.update(results["piggyback_vs_rs"])
    # the headline acceptance criterion: measurably fewer repair bytes
    assert rows["pb-rs-6-3"]["bytes_moved"] < rows["rs-6-3"]["bytes_moved"]
