"""Figure 9(b): degraded read cost — LRC family.

Paper result: the three LRC forms differ by less than 0.7% in cost, and
LRC cost sits well below RS cost (local repair reads k/l helpers, not k).
"""

import pytest

from conftest import attach_series, run_once

from repro.harness.paperfigs import figure9a, figure9b


@pytest.mark.benchmark(group="figure9-cost")
def test_fig9b_degraded_cost_lrc(benchmark, config):
    table = run_once(benchmark, figure9b, config)
    print()
    print(table.render(precision=4))
    attach_series(benchmark, table)

    for x in table.x_labels:
        values = [table.value(s, x) for s in ("LRC", "R-LRC", "EC-FRM-LRC")]
        assert all(v >= 1.0 for v in values)
        spread = (max(values) - min(values)) / min(values)
        assert spread < 0.03, (x, spread)


@pytest.mark.benchmark(group="figure9-cost")
def test_fig9ab_lrc_cost_below_rs(benchmark, config):
    """The cross-figure claim: LRC degraded cost << RS degraded cost."""

    def both():
        return figure9a(config), figure9b(config)

    rs_table, lrc_table = benchmark.pedantic(both, rounds=1, iterations=1)
    pairs = list(zip(rs_table.series["RS"], lrc_table.series["LRC"]))
    print()
    for (rs_cost, lrc_cost), k in zip(pairs, (6, 8, 10)):
        print(f"k={k}: RS cost {rs_cost:.4f}  LRC cost {lrc_cost:.4f}")
        assert lrc_cost < rs_cost
