"""Figures 1-7: the paper's layout and construction illustrations.

Regenerates each text figure from the live library objects and asserts
the worked examples printed in the paper appear verbatim.
"""

import pytest

from conftest import run_once

from repro.harness.paperfigs import ALL_TEXT_FIGURES


EXPECTED_CONTENT = {
    "fig1": ["p0,2", "any 3 disk failures"],
    "fig2": ["XOR of {d0,0, d0,1, d0,2}"],
    "fig3": ["most loaded disk serves 2"],
    "fig4": ["G1 = {d0,6, d0,7, d0,8, d0,9, d1,0, d1,1, p3,2, p3,3, p4,4, p4,5}"],
    "fig5": ["p3,2 = d0,6 + d0,7 + d0,8"],
    "fig6": ["byte-exact recovery: OK"],
    "fig7": ["max load 1", "max load 3"],
}


@pytest.mark.benchmark(group="layout-figures")
@pytest.mark.parametrize("fig", sorted(ALL_TEXT_FIGURES))
def test_layout_figure(benchmark, fig):
    text = run_once(benchmark, ALL_TEXT_FIGURES[fig])
    print()
    print(text)
    for needle in EXPECTED_CONTENT[fig]:
        assert needle in text, (fig, needle)
