"""Galois-field and encode throughput.

Supports the paper's §II-D premise: with table-driven (GF-Complete-style)
arithmetic, coding computation is fast relative to disk I/O, so read
performance is decided by the I/O layout, not the field math.  We assert
the premise quantitatively: encoding a 1 MiB element costs far less time
than one simulated disk access to it.
"""

import numpy as np
import pytest

from repro.codes import make_lrc, make_rs
from repro.disks import SAVVIO_10K3
from repro.frm import FRMCode
from repro.gf import GF8

MiB = 1024 * 1024


@pytest.mark.benchmark(group="gf-kernels")
def test_gf8_bulk_multiply(benchmark):
    rng = np.random.default_rng(1)
    a = rng.integers(0, 256, size=MiB, dtype=np.uint8)
    b = rng.integers(0, 256, size=MiB, dtype=np.uint8)
    out = benchmark(GF8.mul_vec, a, b)
    assert out.shape == a.shape
    benchmark.extra_info["MB_per_s"] = round(
        1.0 / benchmark.stats["mean"], 1
    )


@pytest.mark.benchmark(group="gf-kernels")
def test_gf8_axpy(benchmark):
    rng = np.random.default_rng(2)
    acc = rng.integers(0, 256, size=MiB, dtype=np.uint8)
    x = rng.integers(0, 256, size=MiB, dtype=np.uint8)

    def run():
        GF8.axpy(acc, 0x1D, x)

    benchmark(run)


@pytest.mark.benchmark(group="encode")
@pytest.mark.parametrize(
    "code",
    [make_rs(6, 3), make_rs(10, 5), make_lrc(6, 2, 2), make_lrc(10, 2, 4)],
    ids=lambda c: c.describe(),
)
def test_row_encode_throughput(benchmark, code):
    rng = np.random.default_rng(3)
    element = 256 * 1024
    data = rng.integers(0, 256, size=(code.k, element), dtype=np.uint8)
    parity = benchmark(code.encode, data)
    assert parity.shape == (code.num_parity, element)
    data_mb = code.k * element / MiB
    benchmark.extra_info["encode_MB_per_s"] = round(data_mb / benchmark.stats["mean"], 1)


@pytest.mark.benchmark(group="encode")
def test_frm_stripe_encode(benchmark):
    frm = FRMCode(make_lrc(6, 2, 2))
    g = frm.geometry
    rng = np.random.default_rng(4)
    data = rng.integers(
        0, 256, size=(g.data_elements_per_stripe, 64 * 1024), dtype=np.uint8
    )
    grid = benchmark(frm.encode_stripe, data)
    assert grid.shape == (g.rows, g.n, 64 * 1024)


@pytest.mark.benchmark(group="encode")
def test_compute_is_not_the_bottleneck(benchmark):
    """§II-D quantified: encoding one row of 1 MiB elements must be much
    cheaper than a single random disk access to one element (~15 ms)."""
    code = make_rs(6, 3)
    rng = np.random.default_rng(5)
    data = rng.integers(0, 256, size=(code.k, MiB), dtype=np.uint8)
    benchmark(code.encode, data)
    encode_time = benchmark.stats["min"]  # min is robust to machine load
    one_access = SAVVIO_10K3.access_time_s(MiB)
    print(f"\nrow encode: {encode_time*1e3:.1f} ms vs one disk access: {one_access*1e3:.1f} ms")
    # A (6,3) row read+written costs 9 element I/Os (~135 ms); the pure-
    # Python encoder must stay within that I/O budget.  (The paper's C
    # libraries are ~100x faster still, making compute truly negligible.)
    assert encode_time < 9 * one_access
