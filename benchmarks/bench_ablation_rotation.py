"""Ablation: rotation step of the rotated form.

The paper's rotated baseline shifts the logical-to-physical mapping by one
disk per stripe.  Other steps change how contiguous reads interleave with
parity holes; step = k makes data placement a perfect round-robin over all
n disks (normal reads become EC-FRM-like), which shows exactly why
rotation alone cannot beat EC-FRM: parity still sits inside the rotation
pattern for degraded reads, and real systems pick step=1.
"""

import pytest

from conftest import run_once

from repro.codes import make_lrc
from repro.harness.experiment import ExperimentConfig, run_normal_read_experiment
from repro.layout import FRMPlacement, RotatedPlacement, StandardPlacement


def rotation_sweep():
    code = make_lrc(6, 2, 2)
    cfg = ExperimentConfig(normal_trials=400)
    speeds = {"standard": run_normal_read_experiment(StandardPlacement(code), cfg).mean_speed}
    for step in (1, 2, 3, code.k):
        placement = RotatedPlacement(code, step=step)
        speeds[f"rotated(step={step})"] = run_normal_read_experiment(placement, cfg).mean_speed
    speeds["ec-frm"] = run_normal_read_experiment(FRMPlacement(code), cfg).mean_speed
    return speeds


@pytest.mark.benchmark(group="ablation")
def test_rotation_step_sweep(benchmark):
    speeds = run_once(benchmark, rotation_sweep)
    print()
    for name, v in speeds.items():
        print(f"{name:18s}: {v:7.1f} MiB/s")
    benchmark.extra_info["speeds"] = speeds

    # step = k round-robins data over all disks: normal-read speed
    # approaches EC-FRM's (within 5%)
    assert speeds["rotated(step=6)"] > 0.95 * speeds["ec-frm"]
    # step = 1 (the literal rotated baseline) stays well below EC-FRM
    assert speeds["ec-frm"] > 1.15 * speeds["rotated(step=1)"]
    # EC-FRM is at least as good as every rotation variant
    best_rotation = max(v for k, v in speeds.items() if k.startswith("rotated"))
    assert speeds["ec-frm"] >= 0.95 * best_rotation
