"""Extension bench: the hot-tier replica cache over the EC cluster.

The HFR-code line of work argues replication budget should be spent
*fractionally* — exactly on the read-hot set — and the warehouse traces
EC-FRM targets are heavily Zipf-skewed.  This bench pins the three
properties the tier is built for, all through the public
:func:`repro.open_cluster` facade:

* **hit rate follows skew**: with a fixed fractional-replication budget
  (tier capacity = 1/8 of the stripe space), steady-state hit rate rises
  monotonically across Zipf ``s`` in {0.8, 1.2, 1.5} — a near-uniform
  workload earns little, a hot-set workload is mostly absorbed (the
  built-in loadgen requires s > 1, so popularity is drawn from an
  explicit finite Zipf law);
* **hits bypass the disks**: at s = 1.2, re-reading every resident
  stripe issues exactly zero additional ``DiskStats`` accesses across
  every disk of every shard — the tier serves from replica memory, not
  a faster disk path;
* **degraded tail relief**: under a failed disk at equal offered load,
  the open-loop p99 with the tier on improves >= 2x over the cache-off
  baseline — hot reads no longer pay the reconstruction queue.

Writes ``results/hot_tier.json``.
"""

import os

import numpy as np
import pytest

from conftest import run_once, write_results_json

from repro import open_cluster
from repro.cache import CacheConfig

SCALE = float(os.environ.get("ECFRM_TRIAL_SCALE", "1.0"))
SEED = 2015
CODE = "rs-6-3"
ELEMENT = 64
STRIPES = 96
CAPACITY = STRIPES // 8
ZIPF_SWEEP = (0.8, 1.2, 1.5)
REQUESTS = max(300, int(2000 * SCALE))
BATCH = 25
RATE_RPS = 300.0


def _popularity(s: float) -> np.ndarray:
    """Finite Zipf(s) law over the stripe space, hot ranks scattered."""
    weights = np.arange(1, STRIPES + 1, dtype=float) ** -s
    weights /= weights.sum()
    perm = np.random.default_rng(42).permutation(STRIPES)
    law = np.zeros(STRIPES)
    law[perm] = weights
    return law


def _ranges(s: float, n: int, sb: int, seed: int) -> list[tuple[int, int]]:
    """n single-stripe sub-reads with Zipf(s)-popular stripes."""
    rng = np.random.default_rng(seed)
    stripes = rng.choice(STRIPES, size=n, p=_popularity(s))
    out = []
    for g in stripes:
        u = int(rng.integers(0, sb // 2))
        ln = int(rng.integers(1, sb - u + 1))
        out.append((int(g) * sb + u, ln))
    return out


def _build(cache: CacheConfig | None, *, shards: int = 2):
    cluster = open_cluster(
        CODE, shards=shards, element_size=ELEMENT, cache=cache, vnodes=192,
    )
    data = np.random.default_rng(SEED).integers(
        0, 256, size=STRIPES * cluster.stripe_bytes, dtype=np.uint8
    ).tobytes()
    cluster.append(data)
    return cluster, data


def _disk_accesses(cluster) -> int:
    return sum(
        d.stats.accesses
        for vol in cluster.volumes
        for d in vol.store.array.disks
    )


def _hit_rate_point(s: float) -> tuple[dict, object, bytes]:
    """Steady-state hit rate at one skew (batched: a batch can only hit
    promotions from *earlier* batches, as in any real request stream)."""
    cluster, data = _build(CacheConfig(capacity_stripes=CAPACITY, admit_after=2))
    sb = cluster.stripe_bytes
    ranges = _ranges(s, REQUESTS, sb, SEED)
    for i in range(0, len(ranges), BATCH):
        batch = ranges[i : i + BATCH]
        got = cluster.submit(batch, queue_depth=8)
        assert got.payloads == [data[o : o + n] for o, n in batch]
    snap = cluster.metrics()["cache"]
    point = {
        "zipf_s": s,
        "hit_rate": round(snap["hit_rate"], 4),
        "hits": snap["hits"],
        "lookups": snap["lookups"],
        "promotions": snap["promotions"],
        "evictions": snap["evictions"],
        "admission_rejects": snap["admission_rejects"],
        "stripes_resident": snap["stripes_resident"],
    }
    return point, cluster, data


def _zero_access_proof(cluster, data) -> dict:
    """Re-read every resident stripe; the disks must not move at all."""
    sb = cluster.stripe_bytes
    resident = cluster.hot_tier.resident_stripes()
    assert resident, "steady state left an empty tier?"
    ranges = [(g * sb, sb) for g in resident]
    hits_before = cluster.hot_tier.counters.hits
    accesses_before = _disk_accesses(cluster)
    got = cluster.submit(ranges, queue_depth=8)
    assert got.payloads == [data[o : o + n] for o, n in ranges]
    return {
        "resident_stripes": len(resident),
        "disk_accesses_delta": _disk_accesses(cluster) - accesses_before,
        "tier_hits_delta": cluster.hot_tier.counters.hits - hits_before,
    }


def _degraded_arrivals(sb: int) -> list[tuple[float, int, int]]:
    """Poisson arrivals at the shared offered load, s = 1.2 popularity."""
    rng = np.random.default_rng(SEED + 1)
    gaps = rng.exponential(1.0 / RATE_RPS, size=REQUESTS)
    times = np.cumsum(gaps)
    ranges = _ranges(1.2, REQUESTS, sb, SEED + 1)
    return [(float(t), o, n) for t, (o, n) in zip(times, ranges)]


def _degraded_p99(cache: CacheConfig | None) -> dict:
    """Open-loop run against a failed disk; warm pass for both sides so
    plan caches (and, when on, the tier) reach steady state first."""
    cluster, data = _build(cache, shards=1)
    cluster.volumes[0].store.array.fail_disk(0)
    arrivals = _degraded_arrivals(cluster.stripe_bytes)
    cluster.submit_open_loop(arrivals, materialize=True)  # warm
    result = cluster.submit_open_loop(arrivals, materialize=False)
    snap = cluster.metrics()["cache"]
    return {
        "cache": "on" if cache else "off",
        "p50_ms": round(result.latency.quantile(0.5) * 1e3, 3),
        "p99_ms": round(result.latency.quantile(0.99) * 1e3, 3),
        "completed": result.completed,
        "hit_rate": round(snap["hit_rate"], 4) if snap["enabled"] else None,
    }


@pytest.mark.benchmark(group="hot-tier")
def test_hot_tier(benchmark):
    def run():
        out = {"config": {
            "code": CODE, "element_size": ELEMENT, "stripes": STRIPES,
            "capacity_stripes": CAPACITY, "requests": REQUESTS,
            "batch": BATCH, "zipf_sweep": list(ZIPF_SWEEP),
            "rate_rps": RATE_RPS, "seed": SEED,
        }}
        curve = []
        for s in ZIPF_SWEEP:
            point, cluster, data = _hit_rate_point(s)
            if s == 1.2:
                out["zero_disk_access_proof"] = _zero_access_proof(
                    cluster, data
                )
            curve.append(point)
        out["hit_rate_curve"] = curve
        out["degraded_p99"] = {
            "off": _degraded_p99(None),
            "on": _degraded_p99(
                CacheConfig(capacity_stripes=CAPACITY, admit_after=2)
            ),
        }
        return out

    results = run_once(benchmark, run)

    print()
    print("  zipf s   hit rate   promotions  evictions  resident")
    for row in results["hit_rate_curve"]:
        print(f"  {row['zipf_s']:6.1f}   {row['hit_rate']:8.3f}"
              f"   {row['promotions']:10d}  {row['evictions']:9d}"
              f"  {row['stripes_resident']:8d}")
    proof = results["zero_disk_access_proof"]
    print(f"  s=1.2 resident re-read : {proof['tier_hits_delta']} hits,"
          f" {proof['disk_accesses_delta']} disk accesses")
    deg = results["degraded_p99"]
    print(f"  degraded p99 off/on    : {deg['off']['p99_ms']:.3f} /"
          f" {deg['on']['p99_ms']:.3f} ms"
          f"  (hit rate {deg['on']['hit_rate']})")

    benchmark.extra_info.update(results)
    write_results_json("hot_tier", results)

    # hit rate must rise with skew: fractional replication pays where
    # the workload is actually hot
    rates = [row["hit_rate"] for row in results["hit_rate_curve"]]
    assert rates == sorted(rates), f"hit rate not monotone in s: {rates}"
    assert rates[-1] > rates[0] + 0.1

    # hits provably bypass the disk simulator entirely
    assert proof["disk_accesses_delta"] == 0
    assert proof["tier_hits_delta"] == proof["resident_stripes"]

    # the tier buys >= 2x on the degraded open-loop tail at equal load
    assert deg["off"]["p99_ms"] >= 2.0 * deg["on"]["p99_ms"], (
        f"degraded p99 {deg['off']['p99_ms']} -> {deg['on']['p99_ms']} ms: "
        "less than the required 2x"
    )
