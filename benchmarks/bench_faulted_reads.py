"""Benchmark: read service under fault injection, standard vs EC-FRM.

Runs the same random-read workload through :class:`repro.engine.ReadService`
on real stores while a seeded :class:`repro.faults.FaultInjector` drives a
fault schedule against the array, measuring:

* aggregate throughput per form under each schedule (clean baseline, one
  mid-batch disk crash, one straggler disk, scattered bit rot) — EC-FRM's
  degraded-read cost advantage should show up as a smaller crash penalty;
* the self-healing counters: batch retries, degraded serves, corruptions
  detected/repaired.

Every scenario asserts the payloads are byte-identical to the written
data — faults must never change what the reader sees.  Results are
printed, attached to ``benchmark.extra_info``, and exported to
``results/faulted_reads.json`` via the shared conftest helper.
"""

import numpy as np
import pytest

from conftest import run_once, write_results_json

from repro.codes import make_rs
from repro.engine import ReadService
from repro.faults import FaultEvent, FaultKind, FaultSchedule
from repro.store import BlockStore

ELEMENT_SIZE = 4096
ROWS = 48
REQUESTS = 200
SPAN = 4 * ELEMENT_SIZE
QUEUE_DEPTH = 8
SEED = 2015


def _build_store(form: str) -> tuple[BlockStore, bytes]:
    code = make_rs(6, 3)
    store = BlockStore(code, form, element_size=ELEMENT_SIZE)
    rng = np.random.default_rng(SEED)
    data = rng.integers(0, 256, size=ROWS * store.row_bytes, dtype=np.uint8).tobytes()
    store.append(data)
    return store, data


def _workload(store: BlockStore) -> list[tuple[int, int]]:
    rng = np.random.default_rng(42)
    return [
        (int(rng.integers(0, store.user_bytes - SPAN)), SPAN)
        for _ in range(REQUESTS)
    ]


def _schedules() -> dict[str, FaultSchedule]:
    return {
        "clean": FaultSchedule.scripted([]),
        "crash": FaultSchedule.scripted(
            [FaultEvent(at_op=10, kind=FaultKind.CRASH, disk=1)]
        ),
        "straggler": FaultSchedule.scripted(
            [FaultEvent(at_op=2, kind=FaultKind.STRAGGLER, disk=1, factor=4.0)]
        ),
        "bitrot": FaultSchedule.scripted(
            [
                FaultEvent(at_op=5, kind=FaultKind.BIT_ROT, disk=d)
                for d in (0, 2, 4, 5)
            ]
        ),
    }


def sweep():
    from repro.faults import FaultInjector
    from repro.store import Scrubber

    out: dict = {}
    for scenario, schedule in _schedules().items():
        per_form: dict = {}
        for form in ("standard", "ec-frm"):
            store, data = _build_store(form)
            svc = ReadService(store, cache_capacity=2 * REQUESTS)
            ranges = _workload(store)
            injector = FaultInjector(store.array, schedule, seed=SEED).attach()
            result = svc.submit(ranges, queue_depth=QUEUE_DEPTH)
            injector.detach()
            assert result.payloads == [
                data[o : o + n] for o, n in ranges
            ], f"{scenario}/{form}: payloads diverged under faults"
            m = svc.metrics()
            scrub_repairs = 0
            if scenario == "bitrot":
                # rot the workload never touched (e.g. on parity elements)
                # is the scrubber's job; together they catch every event
                _, repairs = Scrubber(store).scrub_and_repair()
                scrub_repairs = len(repairs)
            per_form[form] = {
                "throughput_mib_s": (
                    result.throughput.throughput_mib_s
                    if result.throughput is not None
                    else None
                ),
                "retries": m["service"]["retries"],
                "degraded_serves": m["service"]["degraded_serves"],
                "plan_invalidations": m["cache"]["invalidations"],
                "corruptions_repaired": m["health"]["corruptions_repaired"],
                "self_heal_writes": m["health"]["self_heal_writes"],
                "scrub_repairs": scrub_repairs,
                "events_fired": len(injector.fired),
            }
        out[scenario] = per_form
    return out


@pytest.mark.benchmark(group="faults")
def test_faulted_read_sweep(benchmark):
    results = run_once(benchmark, sweep)
    print()
    for scenario, per_form in results.items():
        for form, r in per_form.items():
            tput = r["throughput_mib_s"]
            tput_s = f"{tput:8.1f} MiB/s" if tput is not None else "  (multi) "
            print(
                f"{scenario:10s} {form:10s} {tput_s}  "
                f"retries={r['retries']} degraded={r['degraded_serves']} "
                f"healed={r['self_heal_writes']}"
            )
    benchmark.extra_info.update(results)
    write_results_json("faulted_reads", results)

    for scenario, per_form in results.items():
        for form, r in per_form.items():
            if scenario == "clean":
                assert r["retries"] == 0 and r["degraded_serves"] == 0
            if scenario == "crash":
                # the mid-batch crash forces a replan-and-retry
                assert r["retries"] >= 1
                assert r["degraded_serves"] > 0
                assert r["plan_invalidations"] > 0
            if scenario == "bitrot":
                # reads heal what they touch; the scrub catches the rest
                assert (
                    r["corruptions_repaired"] + r["scrub_repairs"]
                    == r["events_fired"]
                )
        # a straggler disk must cost throughput vs the clean run
        if scenario == "straggler":
            for form in per_form:
                assert (
                    per_form[form]["throughput_mib_s"]
                    < results["clean"][form]["throughput_mib_s"]
                )
