"""Figure 9(d): degraded read speed — LRC family.

Paper result: EC-FRM-LRC gains 3.3%-12.8% over standard LRC and
2.6%-5.7% over rotated LRC.
"""

import pytest

from conftest import attach_series, run_once

from repro.harness.metrics import improvement_pct
from repro.harness.paperfigs import figure8b, figure9d
from repro.harness.report import render_improvements


@pytest.mark.benchmark(group="figure9-speed")
def test_fig9d_degraded_speed_lrc(benchmark, config):
    table = run_once(benchmark, figure9d, config)
    print()
    print(table.render())
    print(
        render_improvements(
            table, "EC-FRM-LRC", {"LRC": "standard LRC", "R-LRC": "rotated LRC"}
        )
    )
    attach_series(benchmark, table)

    for x in table.x_labels:
        frm = table.value("EC-FRM-LRC", x)
        std = table.value("LRC", x)
        rot = table.value("R-LRC", x)
        gain = improvement_pct(frm, std)
        assert 2.0 <= gain <= 25.0, (x, gain)
        assert frm > rot, x


@pytest.mark.benchmark(group="figure9-speed")
def test_fig9d_degraded_gain_below_normal_gain(benchmark, config):
    """Paper §V-A: degraded-read improvement < normal-read improvement."""

    def both():
        return figure8b(config), figure9d(config)

    normal, degraded = benchmark.pedantic(both, rounds=1, iterations=1)
    print()
    for x in normal.x_labels:
        n_gain = improvement_pct(normal.value("EC-FRM-LRC", x), normal.value("LRC", x))
        d_gain = improvement_pct(degraded.value("EC-FRM-LRC", x), degraded.value("LRC", x))
        print(f"{x}: normal gain {n_gain:+.1f}%  degraded gain {d_gain:+.1f}%")
        assert d_gain < n_gain, x
