"""Extension bench: in-place updates vs append-only writes.

Measures the §II-D write argument on the real store: delta-updating one
element in place reads and rewrites every dependent parity (1+m elements
for RS, 2+m for LRC), while append-only full-stripe writes stream n/k
element writes per logical element with no reads at all.
"""

import numpy as np
import pytest

from conftest import run_once

from repro.analysis import mean_update_penalty
from repro.codes import make_lrc, make_rs
from repro.store import BlockStore, Scrubber, update_element


@pytest.mark.benchmark(group="updates")
@pytest.mark.parametrize("code", [make_rs(6, 3), make_lrc(6, 2, 2)], ids=lambda c: c.describe())
def test_update_vs_append_io(benchmark, code):
    element = 4096
    rng = np.random.default_rng(0)

    def run():
        bs = BlockStore(code, "ec-frm", element_size=element)
        bs.append(rng.integers(0, 256, size=20 * bs.row_bytes, dtype=np.uint8).tobytes())
        total_io = 0
        total_time = 0.0
        updates = 40
        for i in range(updates):
            res = update_element(
                bs, (i * 7) % (20 * code.k),
                rng.integers(0, 256, size=element, dtype=np.uint8).tobytes(),
            )
            total_io += res.io_count
            total_time += res.completion_time_s
        assert Scrubber(bs).scrub().clean  # parity consistent after updates
        return total_io / updates, total_time / updates

    io_per_update, time_per_update = run_once(benchmark, run)
    append_io = code.n / code.k
    print(
        f"\n{code.describe()}: in-place update {io_per_update:.1f} element I/Os "
        f"({time_per_update * 1e3:.1f} ms) vs append {append_io:.2f} writes/element"
    )
    benchmark.extra_info["update_io"] = io_per_update
    # measured I/O equals the analytical penalty (reads + writes)
    assert io_per_update == pytest.approx(2 * mean_update_penalty(code))
    # and decisively exceeds the append-path cost: the paper's argument
    assert io_per_update > 2 * append_io
