"""Extension bench: read performance as failures stack up.

The paper stops at one failed disk; upgrade windows in real fleets take
several disks of a rack away at once (its own §II-D: >90% of data-center
"failures" are upgrades).  This sweep measures degraded read speed and
cost at 0..f concurrent failures for the (6,2,2) LRC and (6,3) RS codes
in standard vs EC-FRM form.
"""

import pytest

from conftest import run_once

from repro.codes import make_lrc, make_rs
from repro.engine import plan_degraded_read_multi, simulate_plan
from repro.harness.experiment import ExperimentConfig
from repro.harness.metrics import summarize
from repro.layout import make_placement


def sweep(code, form, max_failures, trials=600):
    cfg = ExperimentConfig(normal_trials=trials)
    placement = make_placement(form, code)
    out = {}
    for nf in range(max_failures + 1):
        failed = list(range(nf))
        speeds, costs = [], []
        for request in cfg.normal_workload(code):
            plan = plan_degraded_read_multi(placement, request, failed, cfg.element_size)
            outcome = simulate_plan(plan, cfg.disk_model)
            speeds.append(outcome.speed_mib_s)
            costs.append(plan.read_cost)
        out[nf] = (summarize(speeds).mean, summarize(costs).mean)
    return out


@pytest.mark.benchmark(group="multi-failure")
@pytest.mark.parametrize("code", [make_rs(6, 3), make_lrc(6, 2, 2)], ids=lambda c: c.describe())
def test_failure_count_sweep(benchmark, code):
    def run():
        return {
            form: sweep(code, form, code.fault_tolerance)
            for form in ("standard", "ec-frm")
        }

    results = run_once(benchmark, run)
    print()
    for form, series in results.items():
        line = "  ".join(
            f"f={nf}: {speed:6.1f} MiB/s (cost {cost:.3f})"
            for nf, (speed, cost) in series.items()
        )
        print(f"  {form:9s} {line}")
    benchmark.extra_info["series"] = {
        form: {str(nf): [round(v, 3) for v in pair] for nf, pair in series.items()}
        for form, series in results.items()
    }

    for form, series in results.items():
        speeds = [speed for speed, _ in series.values()]
        costs = [cost for _, cost in series.values()]
        # speed decays (weakly) and cost grows (weakly) with failures
        assert all(a >= b * 0.999 for a, b in zip(speeds, speeds[1:]))
        assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))
    # EC-FRM stays ahead of standard at every failure count
    for nf in results["standard"]:
        assert results["ec-frm"][nf][0] > results["standard"][nf][0] * 0.99
