"""Extension bench: XOR-cost of Cauchy bitmatrix schedules.

The paper's premise that "encoding/decoding computation performance
between various codes are not much different" (§II-D) rests on two
decades of XOR-schedule engineering.  This bench quantifies the knob the
library exposes: Jerasure-style "good" Cauchy matrices (row/column
rescaling) cut the XOR count of the default Cauchy construction by
~30-50% while remaining MDS.
"""

import pytest

from conftest import run_once

from repro.codes import CauchyReedSolomonCode


@pytest.mark.benchmark(group="xor-schedules")
@pytest.mark.parametrize("k,m", [(4, 2), (6, 3), (8, 4), (10, 4)], ids=str)
def test_good_cauchy_xor_savings(benchmark, k, m):
    def run():
        base = CauchyReedSolomonCode(k, m)
        good = CauchyReedSolomonCode.optimized(k, m)
        return base.xor_count(), good.xor_count()

    base_xors, good_xors = run_once(benchmark, run)
    saved = (1 - good_xors / base_xors) * 100
    print(f"\nCRS({k},{m}): {base_xors} -> {good_xors} XORs per coded word ({saved:.1f}% saved)")
    benchmark.extra_info["base"] = base_xors
    benchmark.extra_info["good"] = good_xors
    assert good_xors < base_xors
    assert saved > 15.0


@pytest.mark.benchmark(group="xor-schedules")
def test_xor_count_lower_bound(benchmark):
    """Sanity floor: any MDS (k,m) bitmatrix needs at least (k-1) XORs per
    parity bit row, i.e. m*w*(k-1) total."""

    def run():
        good = CauchyReedSolomonCode.optimized(6, 3)
        return good.xor_count()

    xors = run_once(benchmark, run)
    w = 8
    assert xors >= 3 * w * (6 - 1)
