"""Ablation: queue depth and the rotated-baseline divergence.

Our serial simulator puts the rotated forms slightly below standard on
normal reads, while the paper measured them slightly above.  The most
plausible mechanism is inter-request concurrency: with several requests
in flight, the standard layout funnels every read through the k data
disks while rotation (and EC-FRM) recruit all n spindles.  This bench
sweeps queue depth and shows the flip — rotated overtakes standard as
depth grows, and EC-FRM stays on top throughout.
"""

import pytest

from conftest import run_once

from repro.codes import make_rs
from repro.disks import SAVVIO_10K3
from repro.engine import plan_normal_read, simulate_concurrent
from repro.harness.experiment import ExperimentConfig
from repro.layout import FRMPlacement, RotatedPlacement, StandardPlacement

MiB = 1024 * 1024
DEPTHS = (1, 2, 4, 8)


def sweep():
    code = make_rs(6, 3)
    cfg = ExperimentConfig(normal_trials=500)
    workload = list(cfg.normal_workload(code))
    out = {}
    for placement in (StandardPlacement(code), RotatedPlacement(code), FRMPlacement(code)):
        plans = [plan_normal_read(placement, r, cfg.element_size) for r in workload]
        out[placement.name] = {
            depth: simulate_concurrent(plans, SAVVIO_10K3, depth).throughput_mib_s
            for depth in DEPTHS
        }
    return out


@pytest.mark.benchmark(group="ablation")
def test_queue_depth_sweep(benchmark):
    results = run_once(benchmark, sweep)
    print()
    header = "form      " + "".join(f"  qd={d:<6d}" for d in DEPTHS)
    print(header)
    for name, by_depth in results.items():
        print(f"{name:10s}" + "".join(f"  {v:8.1f}" for v in by_depth.values()))
    benchmark.extra_info["throughput_mib_s"] = results

    # serial: standard >= rotated (the divergence our serial model shows)
    assert results["standard"][1] >= results["rotated"][1] * 0.98
    # concurrent: rotated overtakes standard (the paper's measured order)
    assert results["rotated"][8] > results["standard"][8]
    # EC-FRM leads at every depth
    for depth in DEPTHS:
        assert results["ec-frm"][depth] >= results["rotated"][depth] * 0.99
        assert results["ec-frm"][depth] > results["standard"][depth] * 0.99
    # everyone gains from concurrency
    for series in results.values():
        assert series[8] > series[1]
