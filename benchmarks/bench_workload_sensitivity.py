"""Extension bench: is the EC-FRM gain an artifact of the paper workload?

The paper samples uniform starts with sizes U[1,20].  This bench replays
three structurally different workloads through the same stack — a skewed
(Zipf) object popularity, a log-normal whole-file size distribution (the
paper's §III-A MP3 motivation), and a full sequential scan — and checks
the EC-FRM normal-read gain survives all of them.
"""

import pytest

from conftest import run_once

from repro.codes import make_lrc
from repro.engine import plan_normal_read, simulate_plan
from repro.disks import SAVVIO_10K3
from repro.harness.metrics import improvement_pct, summarize
from repro.layout import FRMPlacement, StandardPlacement
from repro.workloads import (
    FileSizeWorkload,
    RandomReadWorkload,
    SequentialScanWorkload,
    ZipfReadWorkload,
)

MiB = 1024 * 1024


def mean_speed(placement, workload):
    speeds = [
        simulate_plan(plan_normal_read(placement, r, MiB), SAVVIO_10K3).speed_mib_s
        for r in workload
    ]
    return summarize(speeds).mean


@pytest.mark.benchmark(group="workload-sensitivity")
def test_gain_across_workloads(benchmark):
    code = make_lrc(6, 2, 2)
    space = 6000

    workloads = {
        "paper-uniform": RandomReadWorkload(address_space=space, trials=800, seed=1),
        "zipf-hot": ZipfReadWorkload(address_space=space, trials=800, seed=2),
        "file-sizes": FileSizeWorkload(address_space=space, trials=800, seed=3),
        "scan-10": SequentialScanWorkload(address_space=space, request_size=10),
        "scan-12": SequentialScanWorkload(address_space=space, request_size=12),
    }

    def run():
        std, frm = StandardPlacement(code), FRMPlacement(code)
        return {
            name: improvement_pct(mean_speed(frm, wl), mean_speed(std, wl))
            for name, wl in workloads.items()
        }

    gains = run_once(benchmark, run)
    print()
    for name, gain in gains.items():
        print(f"  {name:14s}: EC-FRM gain {gain:+6.1f}%")
    benchmark.extra_info["gains_pct"] = {k: round(v, 2) for k, v in gains.items()}

    # the gain survives every randomized workload shape
    for name in ("paper-uniform", "zipf-hot", "file-sizes"):
        assert gains[name] > 10.0, name
    # fixed-size scans expose the closed form exactly: at L=10,
    # ceil(10/6)/ceil(10/10) = 2 -> big win; at L=12,
    # ceil(12/6) == ceil(12/10) == 2 -> no win at all.  EC-FRM's gain is
    # a ceiling effect, not magic — this is the honest null case.
    assert gains["scan-10"] > 60.0
    assert abs(gains["scan-12"]) < 2.0
