"""Figure 8(b): normal read speed — LRC vs R-LRC vs EC-FRM-LRC.

Paper result: EC-FRM-LRC gains 23.5%-46.9% over standard LRC and
19.6%-29.3% over rotated LRC, across (6,2,2), (8,2,3), (10,2,4).
"""

import pytest

from conftest import attach_series, run_once

from repro.harness.metrics import improvement_pct
from repro.harness.paperfigs import figure8b
from repro.harness.report import render_improvements


@pytest.mark.benchmark(group="figure8")
def test_fig8b_normal_read_speed_lrc(benchmark, config):
    table = run_once(benchmark, figure8b, config)
    print()
    print(table.render())
    print(
        render_improvements(
            table, "EC-FRM-LRC", {"LRC": "standard LRC", "R-LRC": "rotated LRC"}
        )
    )
    attach_series(benchmark, table)

    for x in table.x_labels:
        frm = table.value("EC-FRM-LRC", x)
        std = table.value("LRC", x)
        rot = table.value("R-LRC", x)
        assert frm > std and frm > rot, x
        gain = improvement_pct(frm, std)
        # paper band 23.5-46.9, with slack for the simulator substitution
        assert 15.0 <= gain <= 60.0, (x, gain)

    # LRC family gains exceed the RS family's at matching k (the paper's
    # observation: LRC has more idle parity disks for EC-FRM to recruit).
    assert improvement_pct(
        table.value("EC-FRM-LRC", "(6,2,2)"), table.value("LRC", "(6,2,2)")
    ) > 20.0
