"""Ablation: EC-FRM normal-read gain as a function of read size.

The paper argues (§III-A) that reads of more than ``k`` elements are where
horizontal layouts bottleneck, and that multi-element reads are common.
This sweep quantifies the claim: for reads of L <= n elements EC-FRM's
most-loaded disk serves 1 element while standard serves ceil(L/k); the
gain appears as soon as L > k and peaks near L = n.
"""

import pytest

from conftest import run_once

from repro.codes import make_lrc
from repro.harness.experiment import ExperimentConfig, run_normal_read_experiment
from repro.harness.metrics import improvement_pct
from repro.layout import FRMPlacement, StandardPlacement

SIZES = [1, 3, 6, 8, 10, 14, 20, 26]


def sweep():
    code = make_lrc(6, 2, 2)
    std, frm = StandardPlacement(code), FRMPlacement(code)
    gains = {}
    for size in SIZES:
        cfg = ExperimentConfig(
            normal_trials=300, min_read=size, max_read=size, address_space_rows=300
        )
        s = run_normal_read_experiment(std, cfg).mean_speed
        f = run_normal_read_experiment(frm, cfg).mean_speed
        gains[size] = improvement_pct(f, s)
    return gains


@pytest.mark.benchmark(group="ablation")
def test_gain_vs_read_size(benchmark):
    gains = run_once(benchmark, sweep)
    print()
    for size, gain in gains.items():
        print(f"read size {size:2d} elements: EC-FRM gain {gain:+6.1f}%")
    benchmark.extra_info["gains_pct"] = gains

    # single-element reads: both layouts serve from one disk -> no gain
    assert abs(gains[1]) < 2.0
    # reads of k..n elements: the crossover region where EC-FRM starts
    # winning (standard needs 2 accesses on some disk, EC-FRM still 1)
    assert gains[8] > 30.0
    assert gains[10] > 30.0
    # very large reads: both layouts near their steady ceil ratio n/k
    assert gains[26] > 10.0
    # gain at L=6 (exactly k) is smaller than at L=10 (exactly n)
    assert gains[6] < gains[10]
