"""Table I: the tested erasure codes and parameters.

Constructs every code of Table I, verifies the properties the paper
relies on (fault tolerance, storage overhead, EC-FRM transformability),
and benchmarks construction cost (dominated by the LRC fault-tolerance
verification search).
"""

import pytest

from conftest import run_once

from repro.codes import LocalReconstructionCode, ReedSolomonCode
from repro.frm import FRMCode
from repro.harness.experiment import PAPER_LRC_PARAMS, PAPER_RS_PARAMS


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("k,m", PAPER_RS_PARAMS, ids=lambda v: str(v))
def test_table1_rs_construction(benchmark, k, m):
    def build():
        code = ReedSolomonCode(k, m)
        return code, FRMCode(code)

    code, frm = run_once(benchmark, build)
    assert code.fault_tolerance == m          # MDS
    assert code.storage_overhead == (k + m) / k
    assert frm.fault_tolerance == m           # preserved by EC-FRM
    assert frm.geometry.n == k + m
    benchmark.extra_info["describe"] = frm.describe()


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("k,l,m", PAPER_LRC_PARAMS, ids=lambda v: str(v))
def test_table1_lrc_construction(benchmark, k, l, m):
    def build():
        code = LocalReconstructionCode(k, l, m)
        ft = code.fault_tolerance  # force the exhaustive verification
        return code, FRMCode(code), ft

    code, frm, ft = run_once(benchmark, build)
    assert ft == m + 1                        # any m+1 failures decodable
    assert code.storage_overhead == (k + l + m) / k
    assert frm.fault_tolerance == m + 1       # preserved by EC-FRM
    # degraded-read selling point: local repair reads k/l elements
    assert code.repair_io_count(0) == k // l
    benchmark.extra_info["describe"] = frm.describe()
